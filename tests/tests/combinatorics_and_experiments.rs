//! Integration of the combinatorial substrate with the protocols
//! (Proposition 22's correspondence between distinguishers and the weak
//! nontrivial-move problem) and smoke tests of the experiment harness.

use ring_combinat::{Distinguisher, IdSet};
use ring_experiments::report::aggregate;
use ring_experiments::tables::table1;
use ring_experiments::{lower_bounds, SweepSpec};
use ring_protocols::coordination::probe::probe_nonzero;
use ring_protocols::{IdAssignment, Network};
use ring_sim::{LocalDirection, Model, RingConfig};

/// Proposition 22, executed: running an explicitly verified
/// `(N, n/2)`-distinguisher as a sequence of rounds on a perfectly balanced
/// ring produces a weakly nontrivial move within the family.
#[test]
fn an_explicit_distinguisher_breaks_a_balanced_ring() {
    let n = 8usize;
    let universe = 24u64;
    let distinguisher = Distinguisher::random(universe, n / 2, 77);
    // Exhaustive verification is too expensive at this size; sampling must
    // find no counterexample.
    assert_eq!(distinguisher.verify_sampled(n / 2, 300, 5), 0);

    let config = RingConfig::builder(n)
        .random_positions(3)
        .alternating_chirality()
        .build()
        .unwrap();
    let ids = IdAssignment::random(n, universe, 11);
    let mut net = Network::new(&config, ids.clone(), Model::Basic).unwrap();

    let mut broke_symmetry = false;
    for set in distinguisher.sets() {
        let dirs: Vec<LocalDirection> = (0..n)
            .map(|agent| LocalDirection::from_bit(set.contains(ids.id(agent).value())))
            .collect();
        if probe_nonzero(&mut net, &dirs).unwrap() {
            broke_symmetry = true;
            break;
        }
    }
    assert!(
        broke_symmetry,
        "a distinguisher must produce some weakly nontrivial round (Prop 22)"
    );
}

/// The set algebra used throughout the leader elections: the bit buckets of
/// the identifier universe partition it, and the emptiness-testing prefix
/// sets nest.
#[test]
fn id_set_bit_buckets_partition_the_universe() {
    let universe = 50u64;
    for bit in 0..6 {
        let ones = IdSet::with_bit(universe, bit, true);
        let zeros = IdSet::with_bit(universe, bit, false);
        assert!(ones.is_disjoint(&zeros));
        assert_eq!(ones.len() + zeros.len(), universe as usize);
    }
}

/// The Table I harness produces verified measurements on a tiny sweep and
/// marks exactly the basic/even location-discovery cells unsolvable.
#[test]
fn table1_harness_smoke_test() {
    let spec = SweepSpec {
        sizes: vec![7, 8],
        universe_factors: vec![4],
        repetitions: 1,
        seed: 1,
        structure_seeds: None,
        faults: None,
    };
    let measurements = table1(&spec);
    assert!(measurements.iter().all(|m| m.verified));
    let unsolvable: Vec<_> = measurements.iter().filter(|m| m.value.is_none()).collect();
    assert_eq!(unsolvable.len(), 1);
    assert_eq!(unsolvable[0].quantity, "location discovery");
    // Aggregation keeps one row per cell.
    let agg = aggregate(&measurements);
    assert!(agg.len() <= measurements.len());
}

/// The Lemma 5 parity audit holds on a larger sample than the unit tests use.
#[test]
fn lemma5_holds_on_a_large_sample() {
    let m = lower_bounds::lemma5_parity_audit(32, 1024, 3000, 9);
    assert!(m.verified);
}
