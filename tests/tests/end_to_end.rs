//! End-to-end integration tests: the full protocol pipelines of the paper,
//! run against the exact substrate and verified against the hidden ground
//! truth, across models, parities, chirality patterns and identifier
//! densities.

use proptest::prelude::*;
use ring_protocols::coordination::diragr::frames_are_coherent;
use ring_protocols::locate::{discover_locations, verify_location_discovery, LocationMethod};
use ring_protocols::pipeline::{run_pipeline, Problem};
use ring_protocols::prelude::*;
use ring_sim::prelude::*;

fn deployment(n: usize, universe: u64, seed: u64) -> (RingConfig, IdAssignment) {
    let config = RingConfig::builder(n)
        .random_positions(seed + 1)
        .random_chirality(seed + 2)
        .build()
        .unwrap();
    let ids = IdAssignment::random(n, universe, seed + 3);
    (config, ids)
}

#[test]
fn location_discovery_is_exact_in_every_solvable_setting() {
    for &(n, seed) in &[(7usize, 1u64), (10, 2), (13, 3), (16, 4)] {
        for model in [Model::Basic, Model::Lazy, Model::Perceptive] {
            let (config, ids) = deployment(n, 16 * n as u64, seed);
            let mut net = Network::new(&config, ids, model).unwrap();
            match discover_locations(&mut net) {
                Ok(discovery) => {
                    assert!(
                        verify_location_discovery(&net, &discovery),
                        "model {model}, n {n}"
                    );
                    assert!(frames_are_coherent(&net, discovery.frames()));
                }
                Err(ProtocolError::Unsolvable { .. }) => {
                    assert_eq!(model, Model::Basic);
                    assert_eq!(n % 2, 0, "only the basic/even case is unsolvable");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
}

#[test]
fn perceptive_location_discovery_approaches_the_n_over_2_floor() {
    // For even n the measurement phase itself is n/2 + O(1) rounds; the
    // coordination overhead is sublinear, so the total should sit well below
    // the lazy-model cost for large n and above the n/2 floor always.
    let n = 32;
    let (config, ids) = deployment(n, 4 * n as u64, 9);
    let mut net = Network::new(&config, ids.clone(), Model::Perceptive).unwrap();
    let perceptive = discover_locations(&mut net).unwrap();
    assert_eq!(perceptive.method(), LocationMethod::PerceptiveConvolution);
    assert!(perceptive.rounds() >= (n / 2) as u64);

    let mut net = Network::new(&config, ids, Model::Lazy).unwrap();
    let lazy = discover_locations(&mut net).unwrap();
    assert_eq!(lazy.method(), LocationMethod::Lazy);
    assert!(lazy.rounds() >= (n - 1) as u64);
}

#[test]
fn pipeline_reports_are_internally_consistent() {
    let (config, ids) = deployment(11, 128, 21);
    for model in [Model::Basic, Model::Lazy, Model::Perceptive] {
        let report = run_pipeline(&config, &ids, model).unwrap();
        assert_eq!(report.n, 11);
        assert_eq!(report.universe, 128);
        for problem in Problem::ALL {
            let cost = report.cost(problem).unwrap();
            assert!(cost.verified, "{model} {problem}");
            assert!(cost.solvable);
        }
    }
}

#[test]
fn the_event_engine_validates_a_full_protocol_run() {
    // Run an entire leader election with the event-driven reference engine
    // instead of the analytic one: the outcome must be identical.
    let (config, ids) = deployment(8, 64, 33);
    let mut analytic = Network::new(&config, ids.clone(), Model::Basic).unwrap();
    let mut event = Network::new(&config, ids, Model::Basic)
        .unwrap()
        .with_engine(EngineKind::Event);
    let a = elect_leader(&mut analytic).unwrap();
    let b = elect_leader(&mut event).unwrap();
    assert_eq!(a.leader_flags(), b.leader_flags());
    assert_eq!(a.rounds(), b.rounds());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Leader election elects exactly one leader and direction agreement is
    /// coherent for arbitrary deployments, in every model.
    #[test]
    fn coordination_is_correct_on_random_deployments(
        n in 5usize..14,
        seed in 0u64..10_000,
        dense in proptest::bool::ANY,
        model_idx in 0usize..3,
    ) {
        let universe = if dense { n as u64 } else { 64 * n as u64 };
        let model = [Model::Basic, Model::Lazy, Model::Perceptive][model_idx];
        let (config, ids) = deployment(n, universe, seed);
        let mut net = Network::new(&config, ids, model).unwrap();
        let election = elect_leader(&mut net).unwrap();
        prop_assert_eq!(election.leaders().count(), 1);
        prop_assert!(frames_are_coherent(&net, election.frames()));
    }

    /// Location discovery is exact on random deployments in the lazy model
    /// (the model where it is always solvable).
    #[test]
    fn lazy_location_discovery_is_exact_on_random_deployments(
        n in 5usize..12,
        seed in 0u64..10_000,
    ) {
        let (config, ids) = deployment(n, 8 * n as u64, seed);
        let mut net = Network::new(&config, ids, Model::Lazy).unwrap();
        let discovery = discover_locations(&mut net).unwrap();
        prop_assert!(verify_location_discovery(&net, &discovery));
        // Lemma 6 floor.
        prop_assert!(discovery.rounds() >= (n - 1) as u64);
    }
}
