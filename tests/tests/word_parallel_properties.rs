//! Property tests for the word-parallel performance core: the fast
//! constructions must still produce *valid* combinatorial families (checked
//! with the same verifiers as the element-wise reference implementations),
//! and the batched round execution must agree with the event-driven
//! reference engine on whole random schedules.

use proptest::prelude::*;
use ring_combinat::{reference, Distinguisher, IdSet, SelectiveFamily};
use ring_sim::prelude::*;

/// Strategy: ring size, position/chirality seed and a short schedule of
/// all-moving direction rounds.
fn schedule() -> impl Strategy<Value = (usize, u64, Vec<Vec<LocalDirection>>)> {
    (5usize..14, any::<u64>()).prop_flat_map(|(n, seed)| {
        let dir = prop_oneof![Just(LocalDirection::Right), Just(LocalDirection::Left)].boxed();
        (
            Just(n),
            Just(seed),
            proptest::collection::vec(proptest::collection::vec(dir, n), 6),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The word-parallel `Distinguisher::random` (one `u64` per 64
    /// identifiers) still passes the sampling verifier for every parameter
    /// combination, like the per-identifier loop it replaced.
    #[test]
    fn word_parallel_distinguishers_verify(
        universe_exp in 6u32..10,
        n_exp in 1u32..4,
        seed in 0u64..1_000,
    ) {
        let universe = 1u64 << universe_exp;
        let n = 1usize << n_exp;
        prop_assert!(2 * n as u64 <= universe);
        let d = Distinguisher::random(universe, n, seed);
        prop_assert_eq!(d.verify_sampled(n, 150, seed ^ 0xa5), 0);
        // Same family size as the reference construction.
        prop_assert_eq!(
            d.len(),
            reference::distinguisher_random_reference(universe, n, seed).len()
        );
    }

    /// The word-parallel `SelectiveFamily::random` (`p = 2^-j` as an AND of
    /// `j` uniform words) still passes the sampling verifier.
    #[test]
    fn word_parallel_selective_families_verify(
        universe_exp in 5u32..9,
        n_exp in 1u32..4,
        seed in 0u64..1_000,
    ) {
        let universe = 1u64 << universe_exp;
        let n = 1usize << n_exp;
        prop_assert!(n as u64 <= universe);
        let f = SelectiveFamily::random(universe, n, seed);
        prop_assert_eq!(f.verify_sampled(n, 150, seed ^ 0x5a), 0);
    }

    /// Word-parallel bit buckets match the scalar membership rule at
    /// arbitrary universe sizes (word-boundary cases included via the raw
    /// size parameter).
    #[test]
    fn word_parallel_bit_buckets_match(universe in 1u64..600, bit in 0u32..10) {
        let hi = IdSet::with_bit(universe, bit, true);
        let lo = IdSet::with_bit(universe, bit, false);
        prop_assert!(hi.is_disjoint(&lo));
        prop_assert_eq!(hi.len() + lo.len(), universe as usize);
        for id in 1..=universe {
            prop_assert_eq!(hi.contains(id), (id >> bit) & 1 == 1);
        }
    }

    /// The analytic and event-driven engines agree on the `RoundOutcome` of
    /// whole random schedules executed through the batched
    /// `execute_round_into` path: exact agreement on rotation, observations
    /// and slots, collision distances within f64 rounding of the event
    /// engine (≤ 2 ticks).
    #[test]
    fn engines_agree_on_round_outcomes_for_random_schedules(
        (n, seed, rounds) in schedule(),
    ) {
        let config = RingConfig::builder(n)
            .random_positions(seed)
            .random_chirality(seed ^ 0xdead)
            .build()
            .unwrap();
        let mut analytic = RingState::new(&config);
        let mut event = RingState::new(&config);
        let mut analytic_bufs = RoundBuffers::new();
        let mut event_bufs = RoundBuffers::new();
        for dirs in &rounds {
            let rot_a = analytic
                .execute_round_into(dirs, EngineKind::Analytic, &mut analytic_bufs)
                .unwrap();
            let rot_e = event
                .execute_round_into(dirs, EngineKind::Event, &mut event_bufs)
                .unwrap();
            prop_assert_eq!(rot_a, rot_e);
            prop_assert_eq!(analytic.slots(), event.slots());
            for (a, e) in analytic_bufs.observations.iter().zip(&event_bufs.observations) {
                prop_assert_eq!(a.dist, e.dist);
                match (a.coll, e.coll) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        let delta = x.ticks().abs_diff(y.ticks());
                        prop_assert!(delta <= 2, "collision mismatch: {x:?} vs {y:?}");
                    }
                    (x, y) => prop_assert!(false, "collision presence mismatch: {x:?} vs {y:?}"),
                }
            }
        }
    }
}
