//! Integration-test crate: the actual tests live in the `tests/` directory
//! of this package and exercise the public APIs of every workspace crate
//! together.
