//! `(N, n)`-distinguishers (Definitions 20 and 21 of the paper).
//!
//! A family `S = {S_1, …, S_k}` of subsets of `[N]` is an
//! `(N, n)`-distinguisher if for every pair of **disjoint** `n`-element
//! subsets `X_1, X_2 ⊆ [N]` some member `S_i` satisfies
//! `|S_i ∩ X_1| ≠ |S_i ∩ X_2|`.
//!
//! The paper shows (Proposition 22) that executing a distinguisher as a
//! sequence of rounds — agents with IDs in `S_i` move right in round `i`,
//! all others move left — solves the weak nontrivial-move problem in the
//! basic model with even `n`, and that conversely any such protocol yields a
//! distinguisher. The smallest distinguisher has size
//! `Θ(n·log(N/n)/log n)` (Lemma 23, Corollary 29); the upper bound is by the
//! probabilistic method (Theorem 27), which is exactly how
//! [`Distinguisher::random`] constructs one.

use crate::bounds::{distinguisher_size_lower_bound, nontrivial_move_round_bound};
use crate::idset::IdSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A finite family of ID sets intended to be an `(N, n)`-distinguisher.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Distinguisher {
    universe: u64,
    target_n: usize,
    sets: Vec<IdSet>,
}

impl Distinguisher {
    /// Builds a distinguisher for disjoint sets of size `n` over `[1, N]`
    /// using the probabilistic method of Theorem 27: every identifier joins
    /// every set independently with probability 1/2, and the number of sets
    /// is a constant factor above the `n·log(N/n)/log n` lower bound.
    ///
    /// Membership with probability 1/2 is one `u64` of entropy per 64
    /// identifiers, so each set costs O(N/64) RNG calls instead of O(N).
    ///
    /// The construction is deterministic given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `2 * n > N as usize`.
    pub fn random(universe: u64, n: usize, seed: u64) -> Self {
        assert!(n > 0, "distinguishers for empty sets are vacuous");
        assert!(
            2 * n as u64 <= universe,
            "two disjoint sets of size {n} do not fit in a universe of {universe}"
        );
        let size = recommended_size(universe, n);
        let mut rng = StdRng::seed_from_u64(seed);
        let sets = (0..size).map(|_| random_set(universe, &mut rng)).collect();
        Distinguisher {
            universe,
            target_n: n,
            sets,
        }
    }

    /// Wraps an explicit family of sets.
    ///
    /// # Panics
    ///
    /// Panics if the sets do not all share the universe `universe`.
    pub fn from_sets(universe: u64, target_n: usize, sets: Vec<IdSet>) -> Self {
        assert!(sets.iter().all(|s| s.universe() == universe));
        Distinguisher {
            universe,
            target_n,
            sets,
        }
    }

    /// The identifier universe size `N`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The set size `n` this family is meant to distinguish.
    pub fn target_n(&self) -> usize {
        self.target_n
    }

    /// Number of sets in the family (the number of rounds of the induced
    /// nontrivial-move protocol).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The sets of the family, in execution order.
    pub fn sets(&self) -> &[IdSet] {
        &self.sets
    }

    /// The `i`-th set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&self, i: usize) -> &IdSet {
        &self.sets[i]
    }

    /// Whether some member of the family separates `x1` and `x2`
    /// (`|S_i ∩ x1| ≠ |S_i ∩ x2|`). Both counts come from one fused pass
    /// over each set's words ([`IdSet::intersection_count_pair`]), so the
    /// set is streamed through the cache once rather than twice.
    pub fn distinguishes(&self, x1: &IdSet, x2: &IdSet) -> bool {
        self.sets.iter().any(|s| {
            let (c1, c2) = s.intersection_count_pair(x1, x2);
            c1 != c2
        })
    }

    /// Exhaustively verifies the distinguisher property for disjoint pairs
    /// of `n`-element subsets. Only feasible for small universes (the number
    /// of pairs grows as `C(N, n)²`); intended for tests.
    pub fn verify_exhaustive(&self, n: usize) -> bool {
        let ids: Vec<u64> = (1..=self.universe).collect();
        let mut x1_sets = Vec::new();
        subsets_of_size(&ids, n, &mut Vec::new(), 0, &mut x1_sets);
        for x1_ids in &x1_sets {
            let x1 = IdSet::from_ids(self.universe, x1_ids.iter().copied());
            let remaining: Vec<u64> = ids.iter().copied().filter(|id| !x1.contains(*id)).collect();
            let mut x2_sets = Vec::new();
            subsets_of_size(&remaining, n, &mut Vec::new(), 0, &mut x2_sets);
            for x2_ids in &x2_sets {
                let x2 = IdSet::from_ids(self.universe, x2_ids.iter().copied());
                if !self.distinguishes(&x1, &x2) {
                    return false;
                }
            }
        }
        true
    }

    /// Spot-checks the distinguisher property on `samples` random disjoint
    /// pairs of `n`-element subsets; returns the number of failures.
    ///
    /// Sampling reuses one permutation buffer and two set buffers across
    /// all samples (a Fisher–Yates prefix draws each pair), so the check
    /// costs O(n) mutation per sample instead of O(N) shuffling and
    /// allocation — which keeps harness-scale verification off the sweep's
    /// critical path.
    pub fn verify_sampled(&self, n: usize, samples: usize, seed: u64) -> usize {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<u64> = (1..=self.universe).collect();
        let mut x1 = IdSet::empty(self.universe);
        let mut x2 = IdSet::empty(self.universe);
        let mut failures = 0;
        for _ in 0..samples {
            partial_shuffle(&mut ids, 2 * n, &mut rng);
            for &id in &ids[..n] {
                x1.insert(id);
            }
            for &id in &ids[n..2 * n] {
                x2.insert(id);
            }
            if !self.distinguishes(&x1, &x2) {
                failures += 1;
            }
            for &id in &ids[..n] {
                x1.remove(id);
            }
            for &id in &ids[n..2 * n] {
                x2.remove(id);
            }
        }
        failures
    }

    /// The paper's lower bound on the size of any `(N, n)`-distinguisher,
    /// for comparison against [`Distinguisher::len`].
    pub fn size_lower_bound(&self) -> f64 {
        distinguisher_size_lower_bound(self.universe, self.target_n)
    }
}

/// A *strong* distinguisher (Definition 21): an unbounded sequence of sets
/// whose prefix of length `f(N, n)` is an `(N, n)`-distinguisher for every
/// `n`. Used when the ring size is unknown to the agents.
///
/// Sets are generated lazily (and reproducibly) from a seed; the same object
/// can therefore serve every network size.
#[derive(Clone, Debug)]
pub struct StrongDistinguisher {
    universe: u64,
    seed: u64,
    cache: Vec<IdSet>,
}

impl StrongDistinguisher {
    /// Creates a strong distinguisher over `[1, universe]`.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0`.
    pub fn new(universe: u64, seed: u64) -> Self {
        assert!(universe > 0);
        StrongDistinguisher {
            universe,
            seed,
            cache: Vec::new(),
        }
    }

    /// The identifier universe size `N`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The `i`-th set of the sequence (0-indexed), generating it on demand.
    pub fn set(&mut self, i: usize) -> &IdSet {
        while self.cache.len() <= i {
            let idx = self.cache.len();
            self.cache.push(strong_set(self.universe, self.seed, idx));
        }
        &self.cache[i]
    }

    /// Length of the prefix that is expected to distinguish disjoint sets of
    /// size `n` (the function `f(N, n)` of Definition 21, with the
    /// probabilistic-method constants used by this crate).
    ///
    /// Definition 21 requires `f` to be nondecreasing in `n`, while the raw
    /// expression `n·log(N/n)/log n` is unimodal, so the running maximum
    /// over smaller set sizes is taken.
    pub fn prefix_size_for(&self, n: usize) -> usize {
        strong_prefix_size_for(self.universe, n)
    }

    /// Materialises the prefix for a given `n` as a plain [`Distinguisher`].
    pub fn prefix(&mut self, n: usize) -> Distinguisher {
        let k = self.prefix_size_for(n);
        let sets: Vec<IdSet> = (0..k).map(|i| self.set(i).clone()).collect();
        Distinguisher::from_sets(self.universe, n, sets)
    }
}

/// Salt of the per-universe **universal** strong sequence. There is exactly
/// one such sequence per universe; seeds select windows into it (see
/// [`crate::shared::strong_offset`]), so every seed's sequence shares one
/// underlying set stream — and one stored blob in the content-addressed
/// structure store.
const UNIVERSAL_STRONG_SALT: u64 = 0x5eed_0000_0000_0001;

/// The `j`-th set of the universal strong sequence over `[1, universe]`.
/// Each index is seeded independently, so sets can be generated lazily, out
/// of order and concurrently (see [`crate::shared::StrongBase`]) and the
/// sequence is a pure function of `(universe, index)` alone.
pub(crate) fn universal_strong_set(universe: u64, index: usize) -> IdSet {
    let idx = index as u64;
    let mut rng =
        StdRng::seed_from_u64(UNIVERSAL_STRONG_SALT ^ idx.wrapping_mul(0x9e3779b97f4a7c15));
    random_set(universe, &mut rng)
}

/// The `i`-th set of a seeded strong-distinguisher sequence: the universal
/// sequence shifted by the seed's window offset. Any window of a stream of
/// i.i.d. uniform random sets is itself such a stream, so every window is an
/// equally valid strong distinguisher; different seeds execute genuinely
/// different sets at every round index while sharing one underlying
/// sequence (and therefore one stored blob per universe).
pub(crate) fn strong_set(universe: u64, seed: u64, index: usize) -> IdSet {
    universal_strong_set(universe, crate::shared::strong_offset(seed) + index)
}

/// The prefix length `f(N, n)` of Definition 21 shared by the sequential
/// and thread-shared strong distinguishers: the running maximum of the
/// recommended size over set sizes up to `n` (the raw expression is
/// unimodal, Definition 21 requires a nondecreasing `f`).
pub(crate) fn strong_prefix_size_for(universe: u64, n: usize) -> usize {
    let mut best = 0usize;
    let mut m = 1usize;
    loop {
        best = best.max(recommended_size(universe, m.min(n)));
        if m >= n {
            break;
        }
        m *= 2;
    }
    best
}

/// Number of random sets used by the probabilistic construction for
/// parameters `(N, n)`: a constant factor above the
/// `Θ(n·log(N/n)/log n)` bound plus an additive `O(log N)` term covering
/// very small sets.
fn recommended_size(universe: u64, n: usize) -> usize {
    let bound = nontrivial_move_round_bound(universe, 2 * n);
    let log_n = ((universe as f64).log2()).max(1.0);
    (8.0 * bound + 8.0 * log_n + 32.0).ceil() as usize
}

/// Draws a uniform random subset (membership probability 1/2) with one
/// random word per 64 identifiers — the word-parallel version of the
/// per-identifier coin-flip loop (kept as
/// [`crate::reference::random_set_reference`] for cross-validation).
fn random_set(universe: u64, rng: &mut StdRng) -> IdSet {
    let mut s = IdSet::empty(universe);
    s.fill_with_words(|_| rng.gen::<u64>());
    s
}

/// Uniformly permutes the first `k` entries of `ids` (a Fisher–Yates
/// prefix): every `k`-element sample of the slice is equally likely, but
/// only O(k) entries are touched instead of shuffling the whole universe.
pub(crate) fn partial_shuffle(ids: &mut [u64], k: usize, rng: &mut StdRng) {
    let len = ids.len();
    for i in 0..k.min(len) {
        let j = rng.gen_range(i..len);
        ids.swap(i, j);
    }
}

fn subsets_of_size(
    ids: &[u64],
    k: usize,
    current: &mut Vec<u64>,
    start: usize,
    out: &mut Vec<Vec<u64>>,
) {
    if current.len() == k {
        out.push(current.clone());
        return;
    }
    for i in start..ids.len() {
        current.push(ids[i]);
        subsets_of_size(ids, k, current, i + 1, out);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_distinguisher_verifies_exhaustively_on_small_universe() {
        let d = Distinguisher::random(10, 2, 12345);
        assert!(d.verify_exhaustive(2));
        assert!(d.len() >= d.size_lower_bound() as usize);
    }

    #[test]
    fn random_distinguisher_passes_sampling_on_larger_universe() {
        let d = Distinguisher::random(128, 8, 99);
        assert_eq!(d.verify_sampled(8, 500, 7), 0);
    }

    #[test]
    fn distinguishes_is_symmetric_in_failure() {
        // A family consisting of the full universe only cannot distinguish
        // equal-size sets (it always intersects both in n elements).
        let full = IdSet::full(12);
        let d = Distinguisher::from_sets(12, 3, vec![full]);
        let x1 = IdSet::from_ids(12, [1, 2, 3]);
        let x2 = IdSet::from_ids(12, [4, 5, 6]);
        assert!(!d.distinguishes(&x1, &x2));
        assert!(!d.verify_exhaustive(3));
    }

    #[test]
    fn singleton_sets_distinguish() {
        // The family of all singletons trivially distinguishes any two
        // different sets.
        let sets: Vec<IdSet> = (1..=8).map(|i| IdSet::from_ids(8, [i])).collect();
        let d = Distinguisher::from_sets(8, 3, sets);
        assert!(d.verify_exhaustive(3));
    }

    #[test]
    fn strong_distinguisher_prefixes_grow_with_n() {
        let mut s = StrongDistinguisher::new(1 << 16, 5);
        let small = s.prefix_size_for(2);
        let large = s.prefix_size_for(16);
        assert!(large > small);
        let p = s.prefix(2);
        assert_eq!(p.len(), small);
        assert_eq!(p.universe(), 1 << 16);
        // Prefix sizes are nondecreasing even when IDs get dense.
        let dense = StrongDistinguisher::new(64, 5);
        assert!(dense.prefix_size_for(16) >= dense.prefix_size_for(2));
        // Deterministic regeneration.
        let mut s2 = StrongDistinguisher::new(1 << 16, 5);
        assert_eq!(s2.set(3), s.set(3));
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn oversized_target_panics() {
        let _ = Distinguisher::random(10, 6, 0);
    }
}
