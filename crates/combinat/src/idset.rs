//! Compact sets of agent identifiers.
//!
//! Identifiers are natural numbers in `[1, N]` (the paper's ID universe).
//! [`IdSet`] stores membership as a bitset and remembers the universe size,
//! so set operations can validate that both operands talk about the same
//! universe.
//!
//! Everything on the hot paths is word-parallel: bulk constructors fill
//! whole 64-bit words ([`IdSet::full`], [`IdSet::with_bit`],
//! [`IdSet::fill_with_words`]), iteration walks set bits with
//! `trailing_zeros`, intersections are popcounts, and the `*_with` methods
//! update a set in place without reallocating. Identifier `id` lives at bit
//! `id % 64` of word `id / 64`; bit 0 of word 0 (the nonexistent
//! identifier 0) and the bits above `universe` in the last word are kept
//! zero — the *canonical form* that the word-parallel operations rely on
//! and debug builds assert.
//!
//! The set-algebra and popcount kernels process [`CHUNK`] words per
//! iteration through `chunks_exact`, which the optimiser turns into SIMD
//! on stable Rust (the chunk bodies are straight-line, branch-free and
//! alias-free); the remainder loop covers the final partial chunk. The
//! element-wise oracles in [`crate::reference`] pin the kernels'
//! semantics, and `tests/idset_chunk_props.rs` checks them bit-exactly
//! across word and chunk boundaries.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Words per inner-loop iteration of the chunked kernels: four 64-bit
/// lanes (256 bits of universe per step) — wide enough for the
/// autovectoriser, small enough that the remainder loop stays cheap for
/// the `N / 64 + 1`-word sets of small universes.
const CHUNK: usize = 4;

/// Fused popcount of one chunk (a single reduction the optimiser keeps in
/// registers instead of four independent accumulator updates).
#[inline]
fn chunk_count(c: &[u64]) -> usize {
    (c[0].count_ones() + c[1].count_ones() + c[2].count_ones() + c[3].count_ones()) as usize
}

/// A subset of the identifier universe `[1, N]`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IdSet {
    universe: u64,
    words: Vec<u64>,
}

impl IdSet {
    /// Creates an empty set over the universe `[1, universe]`.
    ///
    /// The backing store is sized exactly: identifier `N` lives at bit
    /// `N % 64` of word `N / 64`, so `N / 64 + 1` words suffice.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is zero.
    pub fn empty(universe: u64) -> Self {
        assert!(universe > 0, "the identifier universe must be nonempty");
        let words = vec![0u64; universe as usize / 64 + 1];
        IdSet { universe, words }
    }

    /// Creates the full set `[1, universe]` by whole-word fills.
    pub fn full(universe: u64) -> Self {
        let mut s = Self::empty(universe);
        s.words.fill(!0u64);
        s.canonicalize();
        s.debug_assert_canonical();
        s
    }

    /// Creates a set from an iterator of identifiers.
    ///
    /// # Panics
    ///
    /// Panics if any identifier lies outside `[1, universe]`.
    pub fn from_ids<I>(universe: u64, ids: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let mut s = Self::empty(universe);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Creates the set of identifiers in `[1, universe]` whose `bit`-th bit
    /// (0-indexed, least significant first) equals `value` — the bit-bucket
    /// sets driving the binary-search leader elections (Algorithm 2,
    /// Lemma 13).
    ///
    /// Runs in O(N/64): for `bit < 6` the membership pattern repeats with a
    /// period dividing 64, so one precomputed pattern word fills the whole
    /// set; for `bit ≥ 6` every word is uniformly all-members or
    /// all-excluded.
    pub fn with_bit(universe: u64, bit: u32, value: bool) -> Self {
        let mut s = Self::empty(universe);
        if bit < 6 {
            // (w·64 + j) >> bit has the same low bit as j >> bit because 64
            // is a multiple of 2^(bit+1); the per-word pattern is universal.
            let mut pattern = 0u64;
            for j in 0..64u64 {
                if ((j >> bit) & 1 == 1) == value {
                    pattern |= 1 << j;
                }
            }
            s.words.fill(pattern);
        } else {
            // Bits ≥ 6 are constant across a word.
            for (w, word) in s.words.iter_mut().enumerate() {
                let base = (w as u64) << 6;
                if ((base >> bit) & 1 == 1) == value {
                    *word = !0u64;
                }
            }
        }
        s.canonicalize();
        s.debug_assert_canonical();
        s
    }

    /// Fills the set by assigning every backing word from `f` (word index →
    /// word value) and re-canonicalizing. This is the word-parallel entry
    /// point used by the probabilistic constructions: a membership
    /// probability of `2^-j` for every identifier is the AND of `j` random
    /// words, with zero per-identifier work.
    pub fn fill_with_words<F>(&mut self, mut f: F)
    where
        F: FnMut(usize) -> u64,
    {
        for (w, word) in self.words.iter_mut().enumerate() {
            *word = f(w);
        }
        self.canonicalize();
        self.debug_assert_canonical();
    }

    /// The universe size `N`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The backing words in canonical form (bit `id % 64` of word `id / 64`
    /// holds identifier `id`). This is the word-exact representation the
    /// `structure-store/v1` codec serializes verbatim.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a set from its backing words, validating the canonical
    /// form exactly: the word count must be `universe / 64 + 1`, bit 0 of
    /// word 0 (the nonexistent identifier 0) must be clear, and no bit above
    /// `universe` may be set. Returns `None` on any violation — a decoder
    /// must never canonicalize corrupt input into a plausible set.
    pub fn try_from_words(universe: u64, words: Vec<u64>) -> Option<Self> {
        if universe == 0 || words.len() != universe as usize / 64 + 1 {
            return None;
        }
        if words[0] & 1 != 0 {
            return None;
        }
        let r = universe % 64;
        if r != 63 && words[words.len() - 1] & !((1u64 << (r + 1)) - 1) != 0 {
            return None;
        }
        Some(IdSet { universe, words })
    }

    /// Inserts an identifier; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` lies outside `[1, universe]`.
    pub fn insert(&mut self, id: u64) -> bool {
        self.check(id);
        let (w, b) = (id as usize / 64, id as usize % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes an identifier; returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `id` lies outside `[1, universe]`.
    pub fn remove(&mut self, id: u64) -> bool {
        self.check(id);
        let (w, b) = (id as usize / 64, id as usize % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] &= !(1 << b);
        had
    }

    /// Whether the set contains `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` lies outside `[1, universe]`.
    pub fn contains(&self, id: u64) -> bool {
        self.check(id);
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words[w] >> b & 1 == 1
    }

    /// Number of identifiers in the set — a fused multi-word popcount:
    /// [`CHUNK`] `count_ones` per iteration folded into one accumulator,
    /// which keeps the reduction in registers and lets the backend emit
    /// vector popcount sequences where the target has them.
    pub fn len(&self) -> usize {
        let mut chunks = self.words.chunks_exact(CHUNK);
        let mut total = 0usize;
        for c in &mut chunks {
            total += chunk_count(c);
        }
        total
            + chunks
                .remainder()
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// Whether the set is empty — an OR-reduce per chunk, so the common
    /// nonempty case exits after one wide load instead of a per-word scan.
    pub fn is_empty(&self) -> bool {
        let mut chunks = self.words.chunks_exact(CHUNK);
        for c in &mut chunks {
            if c[0] | c[1] | c[2] | c[3] != 0 {
                return false;
            }
        }
        chunks.remainder().iter().all(|&w| w == 0)
    }

    /// Iterates over the identifiers in increasing order, skipping from set
    /// bit to set bit with `trailing_zeros` — O(words + members), not
    /// O(universe).
    pub fn iter(&self) -> SetBitIter<'_> {
        SetBitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Size of the intersection with `other` — a fused popcount without
    /// materialising the intersection, [`CHUNK`] words at a time.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection_count(&self, other: &IdSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut a = self.words.chunks_exact(CHUNK);
        let mut b = other.words.chunks_exact(CHUNK);
        let mut total = 0usize;
        for (ca, cb) in (&mut a).zip(&mut b) {
            total += ((ca[0] & cb[0]).count_ones()
                + (ca[1] & cb[1]).count_ones()
                + (ca[2] & cb[2]).count_ones()
                + (ca[3] & cb[3]).count_ones()) as usize;
        }
        total
            + a.remainder()
                .iter()
                .zip(b.remainder())
                .map(|(x, y)| (x & y).count_ones() as usize)
                .sum::<usize>()
    }

    /// Intersection sizes `(|self ∩ a|, |self ∩ b|)` in one pass over the
    /// three word arrays — `self` is loaded once per chunk and ANDed
    /// against both operands, halving memory traffic for the distinguisher
    /// test `|S ∩ X₁| ≠ |S ∩ X₂|`, which always needs both counts of the
    /// same set.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection_count_pair(&self, a: &IdSet, b: &IdSet) -> (usize, usize) {
        assert_eq!(self.universe, a.universe, "universe mismatch");
        assert_eq!(self.universe, b.universe, "universe mismatch");
        let mut s = self.words.chunks_exact(CHUNK);
        let mut ca = a.words.chunks_exact(CHUNK);
        let mut cb = b.words.chunks_exact(CHUNK);
        let (mut na, mut nb) = (0usize, 0usize);
        for ((cs, xa), xb) in (&mut s).zip(&mut ca).zip(&mut cb) {
            na += ((cs[0] & xa[0]).count_ones()
                + (cs[1] & xa[1]).count_ones()
                + (cs[2] & xa[2]).count_ones()
                + (cs[3] & xa[3]).count_ones()) as usize;
            nb += ((cs[0] & xb[0]).count_ones()
                + (cs[1] & xb[1]).count_ones()
                + (cs[2] & xb[2]).count_ones()
                + (cs[3] & xb[3]).count_ones()) as usize;
        }
        for ((ws, wa), wb) in s.remainder().iter().zip(ca.remainder()).zip(cb.remainder()) {
            na += (ws & wa).count_ones() as usize;
            nb += (ws & wb).count_ones() as usize;
        }
        (na, nb)
    }

    /// Whether the two sets are disjoint.
    pub fn is_disjoint(&self, other: &IdSet) -> bool {
        self.intersection_count(other) == 0
    }

    /// The complement within the universe.
    pub fn complement(&self) -> IdSet {
        let mut out = self.clone();
        out.complement_in_place();
        out
    }

    /// Complements the set in place (no reallocation), negating [`CHUNK`]
    /// words per iteration.
    pub fn complement_in_place(&mut self) {
        let mut chunks = self.words.chunks_exact_mut(CHUNK);
        for c in &mut chunks {
            c[0] = !c[0];
            c[1] = !c[1];
            c[2] = !c[2];
            c[3] = !c[3];
        }
        for word in chunks.into_remainder() {
            *word = !*word;
        }
        self.canonicalize();
        self.debug_assert_canonical();
    }

    /// Set difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference(&self, other: &IdSet) -> IdSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// In-place set difference `self \= other` (no reallocation), [`CHUNK`]
    /// words per iteration. Clearing bits cannot violate canonical form, so
    /// no re-canonicalization is needed.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference_with(&mut self, other: &IdSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut dst = self.words.chunks_exact_mut(CHUNK);
        let mut src = other.words.chunks_exact(CHUNK);
        for (o, s) in (&mut dst).zip(&mut src) {
            o[0] &= !s[0];
            o[1] &= !s[1];
            o[2] &= !s[2];
            o[3] &= !s[3];
        }
        for (o, s) in dst.into_remainder().iter_mut().zip(src.remainder()) {
            *o &= !s;
        }
        self.debug_assert_canonical();
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &IdSet) -> IdSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// In-place set intersection `self &= other` (no reallocation),
    /// [`CHUNK`] words per iteration.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &IdSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut dst = self.words.chunks_exact_mut(CHUNK);
        let mut src = other.words.chunks_exact(CHUNK);
        for (o, s) in (&mut dst).zip(&mut src) {
            o[0] &= s[0];
            o[1] &= s[1];
            o[2] &= s[2];
            o[3] &= s[3];
        }
        for (o, s) in dst.into_remainder().iter_mut().zip(src.remainder()) {
            *o &= s;
        }
        self.debug_assert_canonical();
    }

    /// Set union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &IdSet) -> IdSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place set union `self |= other` (no reallocation), [`CHUNK`]
    /// words per iteration. The union of two canonical sets is canonical.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &IdSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut dst = self.words.chunks_exact_mut(CHUNK);
        let mut src = other.words.chunks_exact(CHUNK);
        for (o, s) in (&mut dst).zip(&mut src) {
            o[0] |= s[0];
            o[1] |= s[1];
            o[2] |= s[2];
            o[3] |= s[3];
        }
        for (o, s) in dst.into_remainder().iter_mut().zip(src.remainder()) {
            *o |= s;
        }
        self.debug_assert_canonical();
    }

    /// Clears the always-zero positions: bit 0 of word 0 (identifier 0 does
    /// not exist) and the bits above `universe` in the last word.
    fn canonicalize(&mut self) {
        self.words[0] &= !1u64;
        let last = self.words.len() - 1;
        let r = self.universe % 64;
        if r != 63 {
            self.words[last] &= (1u64 << (r + 1)) - 1;
        }
    }

    /// Debug-build check that the canonical form holds (trailing bits and
    /// the identifier-0 bit stay zero).
    #[inline]
    fn debug_assert_canonical(&self) {
        debug_assert_eq!(self.words.len(), self.universe as usize / 64 + 1);
        debug_assert_eq!(self.words[0] & 1, 0, "bit for nonexistent id 0 is set");
        let r = self.universe % 64;
        if r != 63 {
            debug_assert_eq!(
                self.words[self.words.len() - 1] & !((1u64 << (r + 1)) - 1),
                0,
                "bits beyond the universe are set"
            );
        }
    }

    fn check(&self, id: u64) {
        assert!(
            id >= 1 && id <= self.universe,
            "identifier {id} outside the universe [1, {}]",
            self.universe
        );
    }
}

/// Iterator over the members of an [`IdSet`], in increasing order.
pub struct SetBitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBitIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.current == 0 {
            self.word_idx += 1;
            // Leap over all-zero chunks with one OR-reduce per CHUNK words
            // instead of a per-word test — sparse sets (the common case for
            // sampled subsets of a large universe) iterate in
            // O(members + words/CHUNK).
            while let Some(c) = self.words.get(self.word_idx..self.word_idx + CHUNK) {
                if c[0] | c[1] | c[2] | c[3] != 0 {
                    break;
                }
                self.word_idx += CHUNK;
            }
            match self.words.get(self.word_idx) {
                Some(&word) => self.current = word,
                None => return None,
            }
        }
        let bit = self.current.trailing_zeros() as u64;
        self.current &= self.current - 1;
        Some((self.word_idx as u64) * 64 + bit)
    }
}

impl fmt::Debug for IdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IdSet[1..={}]{{", self.universe)?;
        let mut first = true;
        for id in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u64> for IdSet {
    /// Collects identifiers into a set whose universe is the maximum
    /// identifier seen (or 1 for an empty iterator).
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let ids: Vec<u64> = iter.into_iter().collect();
        let universe = ids.iter().copied().max().unwrap_or(1).max(1);
        IdSet::from_ids(universe, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = IdSet::empty(100);
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert_eq!(s.len(), 1);
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn out_of_universe_ids_panic() {
        let mut s = IdSet::empty(10);
        s.insert(11);
    }

    #[test]
    fn word_count_is_exact() {
        // Identifier N lives at bit N % 64 of word N / 64.
        for (universe, words) in [(1u64, 1usize), (63, 1), (64, 2), (127, 2), (128, 3)] {
            let s = IdSet::empty(universe);
            assert_eq!(s.words.len(), words, "universe {universe}");
            let f = IdSet::full(universe);
            assert_eq!(f.words.len(), words, "universe {universe}");
            assert_eq!(f.len() as u64, universe, "universe {universe}");
        }
    }

    #[test]
    fn set_algebra() {
        let a = IdSet::from_ids(16, [1, 2, 3, 8]);
        let b = IdSet::from_ids(16, [3, 8, 9]);
        assert_eq!(a.intersection_count(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![3, 8]);
        assert_eq!(a.union(&b).iter().collect::<Vec<_>>(), vec![1, 2, 3, 8, 9]);
        assert_eq!(a.complement().len(), 16 - 4);
        assert_eq!(IdSet::full(16).len(), 16);
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let a = IdSet::from_ids(200, (1..=200).filter(|i| i % 3 == 0));
        let b = IdSet::from_ids(200, (1..=200).filter(|i| i % 5 == 0));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, a.union(&b));
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, a.intersection(&b));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d, a.difference(&b));
        let mut c = a.clone();
        c.complement_in_place();
        assert_eq!(c, a.complement());
        assert_eq!(c.intersection_count(&a), 0);
        assert_eq!(c.len() + a.len(), 200);
    }

    #[test]
    fn bit_bucket_sets() {
        // Bit 0 = 1 picks the odd identifiers.
        let odd = IdSet::with_bit(10, 0, true);
        assert_eq!(odd.iter().collect::<Vec<_>>(), vec![1, 3, 5, 7, 9]);
        let low = IdSet::with_bit(10, 3, false);
        assert!(low.contains(7));
        assert!(!low.contains(8));
        // The two buckets of a bit partition the universe.
        let hi = IdSet::with_bit(10, 2, true);
        let lo = IdSet::with_bit(10, 2, false);
        assert!(hi.is_disjoint(&lo));
        assert_eq!(hi.len() + lo.len(), 10);
    }

    #[test]
    fn word_filled_bit_buckets_match_the_scalar_rule() {
        // Cross-check the word-parallel fill against the per-identifier
        // definition, across word boundaries and for low and high bits.
        for universe in [63u64, 64, 65, 130, 700] {
            for bit in [0u32, 1, 5, 6, 7, 9] {
                for value in [false, true] {
                    let s = IdSet::with_bit(universe, bit, value);
                    for id in 1..=universe {
                        assert_eq!(
                            s.contains(id),
                            ((id >> bit) & 1 == 1) == value,
                            "universe {universe}, bit {bit}, value {value}, id {id}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fill_with_words_masks_the_tail() {
        let mut s = IdSet::empty(70);
        s.fill_with_words(|_| !0u64);
        assert_eq!(s.len(), 70);
        assert!(!s.iter().any(|id| id == 0 || id > 70));
        assert_eq!(s, IdSet::full(70));
    }

    #[test]
    fn iterator_matches_scan_on_sparse_and_dense_sets() {
        let sparse = IdSet::from_ids(1000, [1, 64, 65, 127, 128, 999, 1000]);
        assert_eq!(
            sparse.iter().collect::<Vec<_>>(),
            vec![1, 64, 65, 127, 128, 999, 1000]
        );
        let dense = IdSet::full(129);
        assert_eq!(
            dense.iter().collect::<Vec<_>>(),
            (1..=129).collect::<Vec<_>>()
        );
        assert_eq!(IdSet::empty(500).iter().count(), 0);
    }

    #[test]
    fn from_iterator_uses_max_as_universe() {
        let s: IdSet = [4u64, 9, 2].into_iter().collect();
        assert_eq!(s.universe(), 9);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn debug_rendering_is_nonempty() {
        let s = IdSet::from_ids(8, [1, 5]);
        assert_eq!(format!("{s:?}"), "IdSet[1..=8]{1, 5}");
    }
}
