//! Compact sets of agent identifiers.
//!
//! Identifiers are natural numbers in `[1, N]` (the paper's ID universe).
//! [`IdSet`] stores membership as a bitset and remembers the universe size,
//! so set operations can validate that both operands talk about the same
//! universe.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A subset of the identifier universe `[1, N]`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IdSet {
    universe: u64,
    words: Vec<u64>,
}

impl IdSet {
    /// Creates an empty set over the universe `[1, universe]`.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is zero.
    pub fn empty(universe: u64) -> Self {
        assert!(universe > 0, "the identifier universe must be nonempty");
        let words = vec![0u64; (universe as usize + 64) / 64 + 1];
        IdSet { universe, words }
    }

    /// Creates the full set `[1, universe]`.
    pub fn full(universe: u64) -> Self {
        let mut s = Self::empty(universe);
        for id in 1..=universe {
            s.insert(id);
        }
        s
    }

    /// Creates a set from an iterator of identifiers.
    ///
    /// # Panics
    ///
    /// Panics if any identifier lies outside `[1, universe]`.
    pub fn from_ids<I>(universe: u64, ids: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        let mut s = Self::empty(universe);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Creates the set of identifiers in `[1, universe]` whose `bit`-th bit
    /// (0-indexed, least significant first) equals `value` — the bit-bucket
    /// sets driving the binary-search leader elections (Algorithm 2,
    /// Lemma 13).
    pub fn with_bit(universe: u64, bit: u32, value: bool) -> Self {
        let mut s = Self::empty(universe);
        for id in 1..=universe {
            if ((id >> bit) & 1 == 1) == value {
                s.insert(id);
            }
        }
        s
    }

    /// The universe size `N`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Inserts an identifier; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` lies outside `[1, universe]`.
    pub fn insert(&mut self, id: u64) -> bool {
        self.check(id);
        let (w, b) = (id as usize / 64, id as usize % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes an identifier; returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `id` lies outside `[1, universe]`.
    pub fn remove(&mut self, id: u64) -> bool {
        self.check(id);
        let (w, b) = (id as usize / 64, id as usize % 64);
        let had = self.words[w] >> b & 1 == 1;
        self.words[w] &= !(1 << b);
        had
    }

    /// Whether the set contains `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` lies outside `[1, universe]`.
    pub fn contains(&self, id: u64) -> bool {
        self.check(id);
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words[w] >> b & 1 == 1
    }

    /// Number of identifiers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the identifiers in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (1..=self.universe).filter(move |&id| self.contains(id))
    }

    /// Size of the intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection_len(&self, other: &IdSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether the two sets are disjoint.
    pub fn is_disjoint(&self, other: &IdSet) -> bool {
        self.intersection_len(other) == 0
    }

    /// The complement within the universe.
    pub fn complement(&self) -> IdSet {
        let mut out = Self::full(self.universe);
        for (o, s) in out.words.iter_mut().zip(&self.words) {
            *o &= !s;
        }
        out
    }

    /// Set difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference(&self, other: &IdSet) -> IdSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut out = self.clone();
        for (o, s) in out.words.iter_mut().zip(&other.words) {
            *o &= !s;
        }
        out
    }

    /// Set intersection.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &IdSet) -> IdSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut out = self.clone();
        for (o, s) in out.words.iter_mut().zip(&other.words) {
            *o &= s;
        }
        out
    }

    /// Set union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &IdSet) -> IdSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut out = self.clone();
        for (o, s) in out.words.iter_mut().zip(&other.words) {
            *o |= s;
        }
        out
    }

    fn check(&self, id: u64) {
        assert!(
            id >= 1 && id <= self.universe,
            "identifier {id} outside the universe [1, {}]",
            self.universe
        );
    }
}

impl fmt::Debug for IdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IdSet[1..={}]{{", self.universe)?;
        let mut first = true;
        for id in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<u64> for IdSet {
    /// Collects identifiers into a set whose universe is the maximum
    /// identifier seen (or 1 for an empty iterator).
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let ids: Vec<u64> = iter.into_iter().collect();
        let universe = ids.iter().copied().max().unwrap_or(1).max(1);
        IdSet::from_ids(universe, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = IdSet::empty(100);
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert_eq!(s.len(), 1);
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside the universe")]
    fn out_of_universe_ids_panic() {
        let mut s = IdSet::empty(10);
        s.insert(11);
    }

    #[test]
    fn set_algebra() {
        let a = IdSet::from_ids(16, [1, 2, 3, 8]);
        let b = IdSet::from_ids(16, [3, 8, 9]);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![3, 8]);
        assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            vec![1, 2, 3, 8, 9]
        );
        assert_eq!(a.complement().len(), 16 - 4);
        assert_eq!(IdSet::full(16).len(), 16);
    }

    #[test]
    fn bit_bucket_sets() {
        // Bit 0 = 1 picks the odd identifiers.
        let odd = IdSet::with_bit(10, 0, true);
        assert_eq!(odd.iter().collect::<Vec<_>>(), vec![1, 3, 5, 7, 9]);
        let low = IdSet::with_bit(10, 3, false);
        assert!(low.contains(7));
        assert!(!low.contains(8));
        // The two buckets of a bit partition the universe.
        let hi = IdSet::with_bit(10, 2, true);
        let lo = IdSet::with_bit(10, 2, false);
        assert!(hi.is_disjoint(&lo));
        assert_eq!(hi.len() + lo.len(), 10);
    }

    #[test]
    fn from_iterator_uses_max_as_universe() {
        let s: IdSet = [4u64, 9, 2].into_iter().collect();
        assert_eq!(s.universe(), 9);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn debug_rendering_is_nonempty() {
        let s = IdSet::from_ids(8, [1, 5]);
        assert_eq!(format!("{s:?}"), "IdSet[1..=8]{1, 5}");
    }
}
