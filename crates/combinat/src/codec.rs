//! The `structure-store/v1` binary codec.
//!
//! Serializes the expensive combinatorial structures of this crate — lists
//! of [`IdSet`]s keyed by a [`StructureKey`] — into a self-validating byte
//! stream, so one process can construct a structure and every other thread,
//! process or machine can load it instead of reconstructing. The format is
//! **word-exact**: the payload is the sets' canonical backing words
//! verbatim, so a decoded structure is bit-identical to the encoded one and
//! therefore (because every construction is a pure function of its key)
//! bit-identical to a fresh construction. Protocol outcomes can never
//! depend on whether a structure was loaded or built.
//!
//! Layout — the whole file is a stream of little-endian `u64` words:
//!
//! ```text
//! magic    8 bytes  b"ringstor" (one word)
//! version  u64      1
//! kind     u64      StructureKind::code()
//! universe u64      N
//! n        u64      target set size (0 for strong distinguishers)
//! seed     u64      construction seed
//! count    u64      number of sets
//! payload  count × (N/64 + 1) × u64   canonical IdSet words
//! checksum u64      FNV-1a-64 folded over every preceding word
//! ```
//!
//! The trailer applies the FNV-1a-64 step (`xor`, then multiply by the FNV
//! prime) once per preceding **64-bit word** rather than once per byte:
//! structure files are tens to hundreds of megabytes of word payload, and
//! word folding checksums them at memory bandwidth (8× fewer multiplies)
//! while keeping the per-step bijectivity that makes any single corrupted
//! byte change the digest. (Shard JSONL files in `ring-distrib` are byte
//! streams and keep the classic byte-wise digest; both granularities are
//! served by the one [`Fnv1a64`] implementation below.)
//!
//! [`decode`] refuses anything it cannot prove exact: wrong magic or
//! version, unknown kind, a byte length that does not match the header, a
//! checksum mismatch, or a payload word outside canonical form. A corrupt
//! file yields an error — never a plausible-but-wrong structure.
//!
//! The FNV-1a-64 hasher lives here (rather than in `ring-distrib`, which
//! re-exports it) so the lowest layer of the workspace owns the one
//! implementation that pins both shard files and structure files.

use crate::idset::IdSet;
use crate::shared::{StructureKey, StructureKind};
use std::borrow::Borrow;
use std::fmt;

/// The on-disk schema identifier of the v1 (keyed one-file-per-key) codec.
pub const STORE_SCHEMA: &str = "structure-store/v1";

/// The on-disk schema identifier of the v2 (content-addressed) layout:
/// payload blobs named by their own digest plus a small per-key index (see
/// [`encode_blob`] / [`IndexEntry`]).
pub const STORE_SCHEMA_V2: &str = "structure-store/v2";

/// The 8-byte file magic of v1 keyed files.
pub const MAGIC: [u8; 8] = *b"ringstor";

/// The v1 format version.
pub const VERSION: u64 = 1;

/// The 8-byte file magic of v2 content-addressed blobs.
pub const BLOB_MAGIC: [u8; 8] = *b"ringblob";

/// The v2 blob format version.
pub const BLOB_VERSION: u64 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a-64 hasher — the digest pinning shard JSONL files
/// (via `ring-distrib`) and `structure-store/v1` payloads.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a64(u64);

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64(FNV_OFFSET)
    }
}

impl Fnv1a64 {
    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `bytes` into the digest, one FNV-1a step per byte (the shard
    /// JSONL granularity).
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one 64-bit word into the digest with a single FNV-1a step —
    /// the `structure-store/v1` granularity, which checksums word payloads
    /// at memory bandwidth. Not equivalent to [`Fnv1a64::update`] on the
    /// word's bytes; a format picks one granularity and sticks to it.
    pub fn update_word(&mut self, word: u64) {
        self.0 ^= word;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// The digest of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// The digest formatted as the manifest-style checksum string.
    pub fn format(&self) -> String {
        format_checksum(self.0)
    }
}

/// Formats a digest as the `fnv1a64:<16 hex digits>` string carried by run
/// manifests and the worker protocol.
pub fn format_checksum(digest: u64) -> String {
    format!("fnv1a64:{digest:016x}")
}

/// Why a byte stream was rejected by [`decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The stream is shorter than the fixed header + trailer.
    TooShort {
        /// Bytes present.
        len: usize,
    },
    /// The magic bytes are not [`MAGIC`].
    BadMagic,
    /// The version field is not [`VERSION`].
    UnsupportedVersion(u64),
    /// The kind code maps to no [`StructureKind`].
    UnknownKind(u64),
    /// The universe field is zero.
    EmptyUniverse,
    /// The byte length disagrees with the header's set count.
    LengthMismatch {
        /// Bytes the header implies.
        expected: usize,
        /// Bytes present.
        actual: usize,
    },
    /// The trailing checksum does not match the preceding bytes.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        stored: u64,
        /// Checksum of the bytes actually present.
        computed: u64,
    },
    /// A payload set violates the canonical word form.
    NotCanonical {
        /// Index of the offending set.
        set: usize,
    },
    /// The decoded key differs from the key the caller asked for.
    KeyMismatch {
        /// The key in the file.
        found: StructureKey,
        /// The key requested.
        requested: StructureKey,
    },
    /// The blob's identity digest differs from what the caller expected (a
    /// mis-named blob file, or a stale index entry).
    DigestMismatch {
        /// The digest the caller expected (file name / index entry).
        expected: u64,
        /// The digest of the bytes actually present.
        computed: u64,
    },
    /// The blob's universe or set count differs from what the caller's
    /// index entry promised (an internally valid blob that is not the
    /// structure the entry described).
    BlobShapeMismatch {
        /// Universe the caller's entry promised.
        expected_universe: u64,
        /// Universe the blob declares.
        found_universe: u64,
        /// Set count the caller's entry promised.
        expected_count: usize,
        /// Set count the blob declares.
        found_count: usize,
    },
    /// A v2 index-entry line could not be parsed.
    BadIndexEntry(String),
    /// The underlying reader failed mid-stream (streaming decode only).
    Io(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::TooShort { len } => {
                write!(f, "{len} bytes is shorter than a {STORE_SCHEMA} header")
            }
            CodecError::BadMagic => write!(f, "bad magic (not a {STORE_SCHEMA} file)"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported {STORE_SCHEMA} version {v}")
            }
            CodecError::UnknownKind(code) => write!(f, "unknown structure kind code {code}"),
            CodecError::EmptyUniverse => write!(f, "structure file declares an empty universe"),
            CodecError::LengthMismatch { expected, actual } => write!(
                f,
                "structure file holds {actual} bytes where its header implies {expected}"
            ),
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "structure checksum {} does not match content {}",
                format_checksum(*stored),
                format_checksum(*computed)
            ),
            CodecError::NotCanonical { set } => {
                write!(f, "payload set {set} violates the canonical word form")
            }
            CodecError::KeyMismatch { found, requested } => write!(
                f,
                "structure file holds {found:?} where {requested:?} was requested"
            ),
            CodecError::DigestMismatch { expected, computed } => write!(
                f,
                "blob digest {} does not match expected identity {}",
                format_checksum(*computed),
                format_checksum(*expected)
            ),
            CodecError::BlobShapeMismatch {
                expected_universe,
                found_universe,
                expected_count,
                found_count,
            } => write!(
                f,
                "blob holds {found_count} set(s) over universe {found_universe} where the \
index entry promised {expected_count} over {expected_universe}"
            ),
            CodecError::BadIndexEntry(reason) => {
                write!(f, "malformed {STORE_SCHEMA_V2} index entry: {reason}")
            }
            CodecError::Io(e) => write!(f, "structure stream read failed: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Header + trailer size in bytes (magic, version, kind, universe, n, seed,
/// count, checksum).
const FRAME_BYTES: usize = 8 * 8;

/// Words per serialized set for a universe (identifier `N` lives at bit
/// `N % 64` of word `N / 64`).
fn words_per_set(universe: u64) -> usize {
    universe as usize / 64 + 1
}

/// The exact encoded size of `count` sets over `universe`.
pub fn encoded_len(universe: u64, count: usize) -> usize {
    FRAME_BYTES + count * words_per_set(universe) * 8
}

/// Encodes a keyed list of sets as one self-validating `structure-store/v1`
/// byte stream. Every set must live over `key.universe`.
///
/// # Panics
///
/// Panics if a set's universe differs from the key's.
pub fn encode<S: Borrow<IdSet>>(key: &StructureKey, sets: &[S]) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(key.universe, sets.len()));
    let mut hasher = Fnv1a64::new();
    let mut push = |out: &mut Vec<u8>, word: u64| {
        out.extend_from_slice(&word.to_le_bytes());
        hasher.update_word(word);
    };
    for field in [
        u64::from_le_bytes(MAGIC),
        VERSION,
        key.kind.code(),
        key.universe,
        key.n,
        key.seed,
        sets.len() as u64,
    ] {
        push(&mut out, field);
    }
    for set in sets {
        let set = set.borrow();
        assert_eq!(
            set.universe(),
            key.universe,
            "encoded sets must live over the key's universe"
        );
        for &word in set.words() {
            push(&mut out, word);
        }
    }
    let digest = hasher.finish();
    out.extend_from_slice(&digest.to_le_bytes());
    out
}

fn read_u64(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().expect("8 bytes"))
}

/// The word-folded digest of a word-aligned byte stream (the trailer's
/// covering hash: every word of the stream except the trailer itself).
fn fold_words(body: &[u8]) -> u64 {
    let mut hasher = Fnv1a64::new();
    for chunk in body.chunks_exact(8) {
        hasher.update_word(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
    hasher.finish()
}

/// Decodes a `structure-store/v1` byte stream into its key and sets,
/// validating magic, version, kind, exact length, checksum and canonical
/// form (in that order — the digest is verified before any payload word is
/// interpreted).
///
/// # Errors
///
/// Returns the first [`CodecError`] encountered; corrupt input never
/// decodes into a structure.
pub fn decode(bytes: &[u8]) -> Result<(StructureKey, Vec<IdSet>), CodecError> {
    if bytes.len() < FRAME_BYTES {
        return Err(CodecError::TooShort { len: bytes.len() });
    }
    if bytes[..8] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = read_u64(bytes, 8);
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind_code = read_u64(bytes, 16);
    let kind = StructureKind::from_code(kind_code).ok_or(CodecError::UnknownKind(kind_code))?;
    let universe = read_u64(bytes, 24);
    if universe == 0 {
        return Err(CodecError::EmptyUniverse);
    }
    let key = StructureKey {
        kind,
        universe,
        n: read_u64(bytes, 32),
        seed: read_u64(bytes, 40),
    };
    let count = read_u64(bytes, 48);
    let wps = words_per_set(universe);
    let expected = (count as usize)
        .checked_mul(wps * 8)
        .and_then(|payload| payload.checked_add(FRAME_BYTES))
        .ok_or(CodecError::LengthMismatch {
            expected: usize::MAX,
            actual: bytes.len(),
        })?;
    if bytes.len() != expected {
        return Err(CodecError::LengthMismatch {
            expected,
            actual: bytes.len(),
        });
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = read_u64(bytes, bytes.len() - 8);
    let computed = fold_words(body);
    if computed != stored {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    let mut sets = Vec::with_capacity(count as usize);
    for (set_index, payload) in body[56..].chunks_exact(wps * 8).enumerate() {
        let words: Vec<u64> = payload
            .chunks_exact(8)
            .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("8 bytes")))
            .collect();
        let set = IdSet::try_from_words(universe, words)
            .ok_or(CodecError::NotCanonical { set: set_index })?;
        sets.push(set);
    }
    Ok((key, sets))
}

/// [`decode`], additionally checking the stream holds exactly the requested
/// key — the load path of a keyed structure store.
///
/// # Errors
///
/// Everything [`decode`] rejects, plus [`CodecError::KeyMismatch`].
pub fn decode_for_key(key: &StructureKey, bytes: &[u8]) -> Result<Vec<IdSet>, CodecError> {
    let (found, sets) = decode(bytes)?;
    if found != *key {
        return Err(CodecError::KeyMismatch {
            found,
            requested: *key,
        });
    }
    Ok(sets)
}

/// Streaming single-pass variant of [`decode_for_key`]: header validation,
/// key check, payload parse, word-folded digest and trailer comparison all
/// happen in one pass over `reader` — no whole-file buffer, and a
/// mismatched key is refused after the 56-byte header without reading the
/// payload at all. This is the hot load path of the structure store
/// (structure files run to hundreds of megabytes).
///
/// `total_len` must be the stream's exact byte length (the file size);
/// the set count implied by the header is validated against it up front,
/// so a truncated file fails before any payload work.
///
/// Unlike the slice decoder, a canonical-form violation can surface before
/// the checksum comparison (the stream is parsed as it is hashed); every
/// corruption still yields an error, only which error may differ.
///
/// # Errors
///
/// Everything [`decode_for_key`] rejects, plus [`CodecError::Io`] for
/// reader failures.
pub fn decode_stream_for_key(
    key: &StructureKey,
    mut reader: impl std::io::Read,
    total_len: u64,
) -> Result<Vec<IdSet>, CodecError> {
    let io_err = |e: std::io::Error| CodecError::Io(e.to_string());
    if total_len < FRAME_BYTES as u64 {
        return Err(CodecError::TooShort {
            len: total_len as usize,
        });
    }
    let mut header = [0u8; 56];
    reader.read_exact(&mut header).map_err(io_err)?;
    if header[..8] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = read_u64(&header, 8);
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind_code = read_u64(&header, 16);
    let kind = StructureKind::from_code(kind_code).ok_or(CodecError::UnknownKind(kind_code))?;
    let universe = read_u64(&header, 24);
    if universe == 0 {
        return Err(CodecError::EmptyUniverse);
    }
    let found = StructureKey {
        kind,
        universe,
        n: read_u64(&header, 32),
        seed: read_u64(&header, 40),
    };
    if found != *key {
        return Err(CodecError::KeyMismatch {
            found,
            requested: *key,
        });
    }
    let count = read_u64(&header, 48) as usize;
    let wps = words_per_set(universe);
    let expected = count
        .checked_mul(wps * 8)
        .and_then(|payload| payload.checked_add(FRAME_BYTES))
        .ok_or(CodecError::LengthMismatch {
            expected: usize::MAX,
            actual: total_len as usize,
        })?;
    if total_len != expected as u64 {
        return Err(CodecError::LengthMismatch {
            expected,
            actual: total_len as usize,
        });
    }
    let mut hasher = Fnv1a64::new();
    for chunk in header.chunks_exact(8) {
        hasher.update_word(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
    let mut sets = Vec::with_capacity(count);
    let mut buf = vec![0u8; wps * 8];
    for set_index in 0..count {
        reader.read_exact(&mut buf).map_err(io_err)?;
        let words: Vec<u64> = buf
            .chunks_exact(8)
            .map(|chunk| {
                let word = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                hasher.update_word(word);
                word
            })
            .collect();
        let set = IdSet::try_from_words(universe, words)
            .ok_or(CodecError::NotCanonical { set: set_index })?;
        sets.push(set);
    }
    let mut trailer = [0u8; 8];
    reader.read_exact(&mut trailer).map_err(io_err)?;
    let stored = u64::from_le_bytes(trailer);
    let computed = hasher.finish();
    if computed != stored {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok(sets)
}

/// Streaming validation without materialisation: header, exact length,
/// per-set canonical form and the word-folded trailer are all checked in
/// one constant-memory pass (one set's worth of buffer), and the decoded
/// key plus set count are returned. This is what store maintenance
/// (`verify`, `gc`, resume revalidation) runs over directories of
/// hundreds-of-megabyte files — full validation, no whole-file buffer, no
/// set allocation.
///
/// # Errors
///
/// Everything [`decode`] rejects, plus [`CodecError::Io`] for reader
/// failures. As with [`decode_stream_for_key`], a canonical-form violation
/// can surface before the checksum comparison.
pub fn validate_stream(
    mut reader: impl std::io::Read,
    total_len: u64,
) -> Result<(StructureKey, usize), CodecError> {
    let io_err = |e: std::io::Error| CodecError::Io(e.to_string());
    if total_len < FRAME_BYTES as u64 {
        return Err(CodecError::TooShort {
            len: total_len as usize,
        });
    }
    let mut header = [0u8; 56];
    reader.read_exact(&mut header).map_err(io_err)?;
    if header[..8] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = read_u64(&header, 8);
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let kind_code = read_u64(&header, 16);
    let kind = StructureKind::from_code(kind_code).ok_or(CodecError::UnknownKind(kind_code))?;
    let universe = read_u64(&header, 24);
    if universe == 0 {
        return Err(CodecError::EmptyUniverse);
    }
    let key = StructureKey {
        kind,
        universe,
        n: read_u64(&header, 32),
        seed: read_u64(&header, 40),
    };
    let count = read_u64(&header, 48) as usize;
    let wps = words_per_set(universe);
    let expected = count
        .checked_mul(wps * 8)
        .and_then(|payload| payload.checked_add(FRAME_BYTES))
        .ok_or(CodecError::LengthMismatch {
            expected: usize::MAX,
            actual: total_len as usize,
        })?;
    if total_len != expected as u64 {
        return Err(CodecError::LengthMismatch {
            expected,
            actual: total_len as usize,
        });
    }
    let mut hasher = Fnv1a64::new();
    for chunk in header.chunks_exact(8) {
        hasher.update_word(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
    validate_canonical_payload(&mut reader, universe, count, &mut hasher)?;
    let mut trailer = [0u8; 8];
    reader.read_exact(&mut trailer).map_err(io_err)?;
    let stored = u64::from_le_bytes(trailer);
    let computed = hasher.finish();
    if computed != stored {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok((key, count))
}

/// Streams `count` sets' payload words through `hasher` while checking each
/// set's canonical form (identifier-0 bit clear, tail bits beyond the
/// universe clear) in constant memory — the validation loop shared by the
/// v1 [`validate_stream`] and the v2 [`validate_blob_stream`], so the two
/// formats can never drift on what "canonical" means.
fn validate_canonical_payload(
    reader: &mut impl std::io::Read,
    universe: u64,
    count: usize,
    hasher: &mut Fnv1a64,
) -> Result<(), CodecError> {
    let io_err = |e: std::io::Error| CodecError::Io(e.to_string());
    let wps = words_per_set(universe);
    let mut buf = vec![0u8; wps * 8];
    let tail_mask = {
        let r = universe % 64;
        if r == 63 {
            !0u64
        } else {
            (1u64 << (r + 1)) - 1
        }
    };
    for set_index in 0..count {
        reader.read_exact(&mut buf).map_err(io_err)?;
        let mut first = 0u64;
        let mut last = 0u64;
        for (w, chunk) in buf.chunks_exact(8).enumerate() {
            let word = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            hasher.update_word(word);
            if w == 0 {
                first = word;
            }
            if w == wps - 1 {
                last = word;
            }
        }
        if first & 1 != 0 || last & !tail_mask != 0 {
            return Err(CodecError::NotCanonical { set: set_index });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// structure-store/v2: content-addressed blobs + per-key index entries.
// ---------------------------------------------------------------------
//
// A v2 store separates *payload* from *identity*. The payload — a list of
// canonical `IdSet`s over one universe — lives in a **blob** named by its
// own digest, so identical structures constructed under different logical
// keys land in (and are served from) one file. The identity — which
// `StructureKey` resolves to which blob — lives in a tiny per-key **index
// entry** that is rewritten atomically, so longer strong prefixes supersede
// shorter ones without ever mutating a published blob.
//
// Blob layout (a stream of little-endian `u64` words):
//
// ```text
// magic    8 bytes  b"ringblob" (one word)
// version  u64      2
// universe u64      N
// count    u64      number of sets
// payload  count × (N/64 + 1) × u64   canonical IdSet words
// digest   u64      FNV-1a-64 folded once per preceding word
// ```
//
// The trailing digest is the blob's **identity**: the file is named
// `<digest:016x>.blob` and index entries refer to it by the same value, so
// a loader can verify name, trailer and content against each other in one
// streaming pass. Kind, `n` and seed deliberately do not appear in a blob —
// they are identity, not payload, and putting them in the bytes would
// defeat the dedup.

/// Blob frame size in bytes (magic, version, universe, count, digest).
const BLOB_FRAME_BYTES: usize = 8 * 5;

/// The exact encoded size of a blob holding `count` sets over `universe`.
pub fn blob_len(universe: u64, count: usize) -> usize {
    BLOB_FRAME_BYTES + count * words_per_set(universe) * 8
}

/// Encodes a list of canonical sets as one content-addressed
/// `structure-store/v2` blob, returning the bytes and the identity digest
/// (the trailer, which is also the blob's file name).
///
/// # Panics
///
/// Panics if a set's universe differs from `universe`.
pub fn encode_blob<S: Borrow<IdSet>>(universe: u64, sets: &[S]) -> (Vec<u8>, u64) {
    let mut out = Vec::with_capacity(blob_len(universe, sets.len()));
    let mut hasher = Fnv1a64::new();
    let mut push = |out: &mut Vec<u8>, word: u64| {
        out.extend_from_slice(&word.to_le_bytes());
        hasher.update_word(word);
    };
    for field in [
        u64::from_le_bytes(BLOB_MAGIC),
        BLOB_VERSION,
        universe,
        sets.len() as u64,
    ] {
        push(&mut out, field);
    }
    for set in sets {
        let set = set.borrow();
        assert_eq!(
            set.universe(),
            universe,
            "encoded sets must live over the blob's universe"
        );
        for &word in set.words() {
            push(&mut out, word);
        }
    }
    let digest = hasher.finish();
    out.extend_from_slice(&digest.to_le_bytes());
    (out, digest)
}

/// What a blob stream's header + trailer declare, as validated by
/// [`validate_blob_stream`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlobSummary {
    /// Universe size of every payload set.
    pub universe: u64,
    /// Number of payload sets.
    pub count: usize,
    /// The identity digest (trailer, verified against the content).
    pub digest: u64,
}

/// Shared header/length validation of the streaming blob readers. Returns
/// the universe, set count and a hasher primed with the header words.
fn read_blob_header(
    reader: &mut impl std::io::Read,
    total_len: u64,
) -> Result<(u64, usize, Fnv1a64), CodecError> {
    let io_err = |e: std::io::Error| CodecError::Io(e.to_string());
    if total_len < BLOB_FRAME_BYTES as u64 {
        return Err(CodecError::TooShort {
            len: total_len as usize,
        });
    }
    let mut header = [0u8; 32];
    reader.read_exact(&mut header).map_err(io_err)?;
    if header[..8] != BLOB_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = read_u64(&header, 8);
    if version != BLOB_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let universe = read_u64(&header, 16);
    if universe == 0 {
        return Err(CodecError::EmptyUniverse);
    }
    let count = read_u64(&header, 24) as usize;
    let expected = count
        .checked_mul(words_per_set(universe) * 8)
        .and_then(|payload| payload.checked_add(BLOB_FRAME_BYTES))
        .ok_or(CodecError::LengthMismatch {
            expected: usize::MAX,
            actual: total_len as usize,
        })?;
    if total_len != expected as u64 {
        return Err(CodecError::LengthMismatch {
            expected,
            actual: total_len as usize,
        });
    }
    let mut hasher = Fnv1a64::new();
    for chunk in header.chunks_exact(8) {
        hasher.update_word(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
    Ok((universe, count, hasher))
}

/// Streaming single-pass decode of a content-addressed blob: header
/// validation, payload parse, word-folded digest and trailer comparison in
/// one pass, plus a check that the computed identity equals `expected_digest`
/// (the file name / index-entry identity the caller resolved). The caller's
/// expectations about universe and count — from its index entry — are
/// validated too, so a stale entry can never deliver a plausible-but-wrong
/// structure.
///
/// # Errors
///
/// Everything [`validate_blob_stream`] rejects, plus
/// [`CodecError::DigestMismatch`] and key-shaped mismatches via
/// [`CodecError::LengthMismatch`] / [`CodecError::EmptyUniverse`].
pub fn decode_blob_stream(
    mut reader: impl std::io::Read,
    total_len: u64,
    expected_universe: u64,
    expected_count: usize,
    expected_digest: u64,
) -> Result<Vec<IdSet>, CodecError> {
    let io_err = |e: std::io::Error| CodecError::Io(e.to_string());
    let (universe, count, mut hasher) = read_blob_header(&mut reader, total_len)?;
    if universe != expected_universe || count != expected_count {
        // The blob may be internally consistent but it is not the structure
        // the index entry promised.
        return Err(CodecError::BlobShapeMismatch {
            expected_universe,
            found_universe: universe,
            expected_count,
            found_count: count,
        });
    }
    let wps = words_per_set(universe);
    let mut sets = Vec::with_capacity(count);
    let mut buf = vec![0u8; wps * 8];
    for set_index in 0..count {
        reader.read_exact(&mut buf).map_err(io_err)?;
        let words: Vec<u64> = buf
            .chunks_exact(8)
            .map(|chunk| {
                let word = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                hasher.update_word(word);
                word
            })
            .collect();
        let set = IdSet::try_from_words(universe, words)
            .ok_or(CodecError::NotCanonical { set: set_index })?;
        sets.push(set);
    }
    let mut trailer = [0u8; 8];
    reader.read_exact(&mut trailer).map_err(io_err)?;
    let stored = u64::from_le_bytes(trailer);
    let computed = hasher.finish();
    if computed != stored {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    if computed != expected_digest {
        return Err(CodecError::DigestMismatch {
            expected: expected_digest,
            computed,
        });
    }
    Ok(sets)
}

/// Streaming validation of a blob without materialisation (the maintenance
/// analogue of [`validate_stream`]): header, exact length, per-set canonical
/// form and the trailer digest are checked in one constant-memory pass, and
/// the blob's summary is returned. Callers additionally compare
/// `summary.digest` against the file name to catch mis-filed blobs.
///
/// # Errors
///
/// Everything the v1 [`validate_stream`] rejects on its shared checks, plus
/// [`CodecError::Io`].
pub fn validate_blob_stream(
    mut reader: impl std::io::Read,
    total_len: u64,
) -> Result<BlobSummary, CodecError> {
    let io_err = |e: std::io::Error| CodecError::Io(e.to_string());
    let (universe, count, mut hasher) = read_blob_header(&mut reader, total_len)?;
    validate_canonical_payload(&mut reader, universe, count, &mut hasher)?;
    let mut trailer = [0u8; 8];
    reader.read_exact(&mut trailer).map_err(io_err)?;
    let stored = u64::from_le_bytes(trailer);
    let computed = hasher.finish();
    if computed != stored {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok(BlobSummary {
        universe,
        count,
        digest: computed,
    })
}

/// One logical key's entry in a v2 store index: which blob holds the key's
/// payload, and how many sets of it belong to the key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// The logical key (for the strong kind the store records one
    /// *universal* entry per universe, with `n = 0` and `seed = 0`).
    pub key: StructureKey,
    /// Identity digest of the blob holding the payload.
    pub digest: u64,
    /// Number of sets the key resolves to (for prefix-extendable strong
    /// blobs this equals the blob's count and grows across republications).
    pub count: usize,
}

impl IndexEntry {
    /// The single-line on-disk form:
    /// `structure-store/v2 <kind-code> <universe> <n> <seed:016x>
    /// <digest:016x> <count>`.
    pub fn format(&self) -> String {
        format!(
            "{STORE_SCHEMA_V2} {} {} {} {:016x} {:016x} {}\n",
            self.key.kind.code(),
            self.key.universe,
            self.key.n,
            self.key.seed,
            self.digest,
            self.count,
        )
    }

    /// Parses the on-disk form.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadIndexEntry`] for anything that is not exactly one
    /// well-formed entry line.
    pub fn parse(text: &str) -> Result<Self, CodecError> {
        let bad = |reason: &str| CodecError::BadIndexEntry(reason.to_string());
        let mut fields = text.split_whitespace();
        if fields.next() != Some(STORE_SCHEMA_V2) {
            return Err(bad("missing schema tag"));
        }
        let mut next = |what: &str| {
            fields
                .next()
                .ok_or_else(|| bad(&format!("missing {what}")))
                .map(str::to_string)
        };
        let kind_code: u64 = next("kind")?
            .parse()
            .map_err(|_| bad("kind is not a number"))?;
        let kind = StructureKind::from_code(kind_code).ok_or(CodecError::UnknownKind(kind_code))?;
        let universe: u64 = next("universe")?
            .parse()
            .map_err(|_| bad("universe is not a number"))?;
        if universe == 0 {
            return Err(CodecError::EmptyUniverse);
        }
        let n: u64 = next("n")?.parse().map_err(|_| bad("n is not a number"))?;
        let seed = u64::from_str_radix(&next("seed")?, 16).map_err(|_| bad("seed is not hex"))?;
        let digest =
            u64::from_str_radix(&next("digest")?, 16).map_err(|_| bad("digest is not hex"))?;
        let count: usize = next("count")?
            .parse()
            .map_err(|_| bad("count is not a number"))?;
        if fields.next().is_some() {
            return Err(bad("trailing fields"));
        }
        Ok(IndexEntry {
            key: StructureKey {
                kind,
                universe,
                n,
                seed,
            },
            digest,
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distinguisher, SelectiveFamily};

    fn key(kind: StructureKind, universe: u64, n: u64, seed: u64) -> StructureKey {
        StructureKey {
            kind,
            universe,
            n,
            seed,
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        let mut h = Fnv1a64::new();
        assert_eq!(h.finish(), 0xcbf29ce484222325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = Fnv1a64::new();
        h.update(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
        assert_eq!(h.format(), "fnv1a64:85944171f73967e8");
    }

    #[test]
    fn word_folding_is_one_fnv_step_per_word() {
        let mut h = Fnv1a64::new();
        h.update_word(0x0123_4567_89ab_cdef);
        assert_eq!(
            h.finish(),
            (0xcbf29ce484222325u64 ^ 0x0123_4567_89ab_cdef).wrapping_mul(0x100000001b3)
        );
        // fold_words over a two-word stream chains the steps.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        let mut chained = Fnv1a64::new();
        chained.update_word(1);
        chained.update_word(2);
        assert_eq!(fold_words(&bytes), chained.finish());
    }

    #[test]
    fn empty_and_sparse_lists_round_trip() {
        let k = key(StructureKind::StrongDistinguisher, 100, 0, 7);
        let bytes = encode::<IdSet>(&k, &[]);
        assert_eq!(bytes.len(), encoded_len(100, 0));
        let (decoded_key, sets) = decode(&bytes).unwrap();
        assert_eq!(decoded_key, k);
        assert!(sets.is_empty());

        let sets = vec![IdSet::from_ids(100, [1, 64, 65, 100]), IdSet::empty(100)];
        let bytes = encode(&k, &sets);
        assert_eq!(decode_for_key(&k, &bytes).unwrap(), sets);
    }

    #[test]
    fn distinguisher_and_selective_family_round_trip_exactly() {
        let k = key(StructureKind::Distinguisher, 257, 4, 11);
        let d = Distinguisher::random(257, 4, 11);
        let bytes = encode(&k, d.sets());
        let rebuilt = Distinguisher::from_sets(257, 4, decode_for_key(&k, &bytes).unwrap());
        assert_eq!(rebuilt, d);

        let k = key(StructureKind::SelectiveFamily, 130, 8, 3);
        let f = SelectiveFamily::random(130, 8, 3);
        let bytes = encode(&k, f.sets());
        let rebuilt = SelectiveFamily::from_sets(130, 8, decode_for_key(&k, &bytes).unwrap());
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn streaming_decode_matches_the_slice_decoder() {
        let k = key(StructureKind::Distinguisher, 130, 4, 21);
        let d = Distinguisher::random(130, 4, 21);
        let bytes = encode(&k, d.sets());
        let streamed =
            decode_stream_for_key(&k, &bytes[..], bytes.len() as u64).expect("streams decode");
        assert_eq!(streamed, decode_for_key(&k, &bytes).unwrap());

        // Key mismatch is refused from the header alone: a reader that
        // cannot serve more than the header still yields KeyMismatch.
        let other = key(StructureKind::Distinguisher, 130, 4, 22);
        assert!(matches!(
            decode_stream_for_key(&other, &bytes[..56], bytes.len() as u64),
            Err(CodecError::KeyMismatch { .. })
        ));

        // Truncated length fails before payload work; a lying reader (short
        // stream, correct claimed length) fails with an I/O error.
        assert!(matches!(
            decode_stream_for_key(&k, &bytes[..], bytes.len() as u64 - 8),
            Err(CodecError::LengthMismatch { .. })
        ));
        assert!(matches!(
            decode_stream_for_key(&k, &bytes[..bytes.len() - 8], bytes.len() as u64),
            Err(CodecError::Io(_))
        ));

        // A flipped payload byte is caught (checksum or canonical form).
        let mut bad = bytes.clone();
        bad[FRAME_BYTES + 3] ^= 0x08;
        assert!(decode_stream_for_key(&k, &bad[..], bad.len() as u64).is_err());
    }

    #[test]
    fn validation_agrees_with_decoding_without_materialising() {
        let k = key(StructureKind::SelectiveFamily, 65, 3, 4);
        let f = SelectiveFamily::random(65, 3, 4);
        let bytes = encode(&k, f.sets());
        let (vkey, count) = validate_stream(&bytes[..], bytes.len() as u64).unwrap();
        assert_eq!((vkey, count), (k, f.len()));

        // Same corruption verdicts as the full decoder.
        let mut bad = bytes.clone();
        bad[bytes.len() - 3] ^= 1;
        assert!(validate_stream(&bad[..], bad.len() as u64).is_err());
        let mut bad = bytes;
        bad[FRAME_BYTES - 8] |= 1; // id-0 bit of set 0
        assert!(matches!(
            validate_stream(&bad[..], bad.len() as u64),
            Err(CodecError::NotCanonical { set: 0 }) | Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn key_mismatches_are_rejected() {
        let k = key(StructureKind::Distinguisher, 64, 4, 1);
        let bytes = encode(&k, &[IdSet::full(64)]);
        let other = key(StructureKind::Distinguisher, 64, 4, 2);
        assert!(matches!(
            decode_for_key(&other, &bytes),
            Err(CodecError::KeyMismatch { .. })
        ));
    }

    #[test]
    fn structural_corruption_is_rejected() {
        let k = key(StructureKind::SelectiveFamily, 65, 2, 9);
        let bytes = encode(&k, &[IdSet::from_ids(65, [1, 65])]);

        // Truncation (any prefix), including mid-header.
        for cut in [0, 7, FRAME_BYTES - 1, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode(&bad).unwrap_err(), CodecError::BadMagic);
        // Wrong version.
        let mut bad = bytes.clone();
        bad[8] = 2;
        // Re-seal so only the version is wrong.
        let reseal = |mut b: Vec<u8>| {
            let n = b.len() - 8;
            let digest = fold_words(&b[..n]);
            b[n..].copy_from_slice(&digest.to_le_bytes());
            b
        };
        assert_eq!(
            decode(&reseal(bad)).unwrap_err(),
            CodecError::UnsupportedVersion(2)
        );
        // Unknown kind.
        let mut bad = bytes.clone();
        bad[16] = 99;
        assert_eq!(
            decode(&reseal(bad)).unwrap_err(),
            CodecError::UnknownKind(99)
        );
        // Non-canonical payload (bit for identifier 0 set).
        let mut bad = bytes.clone();
        bad[FRAME_BYTES - 8] |= 1;
        assert_eq!(
            decode(&reseal(bad)).unwrap_err(),
            CodecError::NotCanonical { set: 0 }
        );
        // A flipped payload byte without resealing: checksum mismatch.
        let mut bad = bytes.clone();
        bad[FRAME_BYTES] ^= 0x10;
        assert!(matches!(
            decode(&bad).unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));
        // An absurd count cannot overflow the length check.
        let mut bad = bytes.clone();
        bad[48..56].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode(&reseal(bad)).unwrap_err(),
            CodecError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn blobs_are_content_addressed_and_round_trip() {
        let d = Distinguisher::random(130, 4, 9);
        let (bytes, digest) = encode_blob(130, d.sets());
        assert_eq!(bytes.len(), blob_len(130, d.len()));
        // The trailer is the identity.
        assert_eq!(
            u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap()),
            digest
        );
        // Identical payloads produce identical bytes and digests no matter
        // what logical key asked for them — the dedup property.
        let (again, digest2) = encode_blob(130, d.sets());
        assert_eq!((again, digest2), (bytes.clone(), digest));

        let decoded =
            decode_blob_stream(&bytes[..], bytes.len() as u64, 130, d.len(), digest).unwrap();
        assert_eq!(decoded, d.sets());
        let summary = validate_blob_stream(&bytes[..], bytes.len() as u64).unwrap();
        assert_eq!(
            summary,
            BlobSummary {
                universe: 130,
                count: d.len(),
                digest
            }
        );
    }

    #[test]
    fn blob_corruption_and_identity_mismatches_are_rejected() {
        let f = SelectiveFamily::random(65, 3, 4);
        let (bytes, digest) = encode_blob(65, f.sets());
        // Truncation anywhere.
        for cut in [0, 7, BLOB_FRAME_BYTES - 9, bytes.len() - 1] {
            assert!(
                validate_blob_stream(&bytes[..cut], cut as u64).is_err(),
                "cut at {cut} must fail"
            );
        }
        // A flipped payload byte.
        let mut bad = bytes.clone();
        bad[BLOB_FRAME_BYTES] ^= 0x10;
        assert!(validate_blob_stream(&bad[..], bad.len() as u64).is_err());
        // Wrong expected identity (a stale index entry / mis-named file).
        assert!(matches!(
            decode_blob_stream(&bytes[..], bytes.len() as u64, 65, f.len(), digest ^ 1),
            Err(CodecError::DigestMismatch { .. })
        ));
        // Wrong expected universe or count: the entry promised a different
        // structure.
        assert!(decode_blob_stream(&bytes[..], bytes.len() as u64, 66, f.len(), digest).is_err());
        assert!(
            decode_blob_stream(&bytes[..], bytes.len() as u64, 65, f.len() + 1, digest).is_err()
        );
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            validate_blob_stream(&bad[..], bad.len() as u64).unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn index_entries_round_trip_and_reject_garbage() {
        let entry = IndexEntry {
            key: key(StructureKind::SelectiveFamily, 1 << 17, 64, 0xdead_beef),
            digest: 0x0123_4567_89ab_cdef,
            count: 4242,
        };
        let text = entry.format();
        assert!(text.ends_with('\n'));
        assert_eq!(IndexEntry::parse(&text).unwrap(), entry);

        for bad in [
            "",
            "structure-store/v1 2 64 4 0 0 1",
            "structure-store/v2 2 64 4",
            "structure-store/v2 99 64 4 0 0 1",
            "structure-store/v2 2 0 4 0 0 1",
            "structure-store/v2 2 64 4 zz 0 1",
            "structure-store/v2 2 64 4 0 0 1 extra",
        ] {
            assert!(IndexEntry::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }
}
