//! Closed-form evaluation of the paper's bound formulas.
//!
//! These functions return `f64` estimates of the asymptotic expressions in
//! the paper (with all constants set to 1 unless stated otherwise). They are
//! used by the experiment harness to plot measured round counts against the
//! theoretical shapes, and by the constructions in this crate to size their
//! random families.

/// `n · log₂(N/n) / log₂ n` — the lower bound on the size of any
/// `(N, n)`-distinguisher (Lemma 23) and hence on the round complexity of
/// the (weak) nontrivial-move problem in the basic model with even `n`
/// (Corollary 26). Degenerate parameters are clamped so the expression is
/// always finite and at least 1.
pub fn distinguisher_size_lower_bound(universe: u64, n: usize) -> f64 {
    let n = n.max(2) as f64;
    let ratio = (universe as f64 / n).max(2.0);
    (n * ratio.log2() / n.log2()).max(1.0)
}

/// `n · log₂(N/n) / log₂ n` — the matching upper bound of Theorem 27 on the
/// number of rounds needed to obtain a nontrivial move in the basic model
/// (even `n`), i.e. the same expression as
/// [`distinguisher_size_lower_bound`], exposed under the name used when
/// talking about protocol rounds.
pub fn nontrivial_move_round_bound(universe: u64, n: usize) -> f64 {
    distinguisher_size_lower_bound(universe, n)
}

/// `n · log₂(N/n)` — the classical bound on the size of `(N, n)`-selective
/// families (Clementi–Monti–Silvestri, used in Definition 35 / Lemma 36).
pub fn selective_family_size_bound(universe: u64, n: usize) -> f64 {
    let n = n.max(2) as f64;
    let ratio = (universe as f64 / n).max(2.0);
    (n * ratio.log2()).max(1.0)
}

/// `(11k/12) · log₂(N/k)` — Fact 25: an upper bound on `log₂ |F|` for any
/// `(N, k, k/2)`-intersection-free family (k a power of two, `k ≤ N/64`).
pub fn intersection_free_log_bound(universe: u64, k: usize) -> f64 {
    let k = k.max(2) as f64;
    let ratio = (universe as f64 / k).max(2.0);
    11.0 * k / 12.0 * ratio.log2()
}

/// `√n · log₂ N` — the perceptive-model nontrivial-move upper bound of
/// Lemma 36 (Algorithm `NMoveS`).
pub fn perceptive_nontrivial_move_bound(universe: u64, n: usize) -> f64 {
    (n as f64).sqrt() * (universe as f64).log2().max(1.0)
}

/// `n/2 + √n · log₂² N` — the perceptive-model location-discovery bound of
/// Theorem 42 (up to constants).
pub fn perceptive_location_discovery_bound(universe: u64, n: usize) -> f64 {
    let log_n = (universe as f64).log2().max(1.0);
    n as f64 / 2.0 + (n as f64).sqrt() * log_n * log_n
}

/// `n + log₂ N` — the lazy-model / odd-`n` location-discovery bound of
/// Lemma 16.
pub fn lazy_location_discovery_bound(universe: u64, n: usize) -> f64 {
    n as f64 + (universe as f64).log2().max(1.0)
}

/// `log₂(binomial(N, n))/log₂(n+1)` — the counting lower bound on strong
/// distinguishers (Lemma 43), useful as a sanity check that it is dominated
/// by [`distinguisher_size_lower_bound`].
pub fn strong_distinguisher_counting_bound(universe: u64, n: usize) -> f64 {
    let log_binom = log2_binomial(universe, n as u64);
    log_binom / ((n as f64 + 1.0).log2()).max(1.0)
}

/// `log₂ C(n, k)` computed via log-gamma-free summation (exact enough for
/// plotting purposes).
pub fn log2_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((n - i) as f64).log2() - ((i + 1) as f64).log2();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinguisher_bound_is_monotone_in_n_for_fixed_large_universe() {
        let universe = 1 << 20;
        let small = distinguisher_size_lower_bound(universe, 8);
        let large = distinguisher_size_lower_bound(universe, 256);
        assert!(large > small);
    }

    #[test]
    fn distinguisher_bound_shrinks_when_ids_are_dense() {
        // For n close to N the log(N/n) factor collapses.
        let sparse = distinguisher_size_lower_bound(1 << 20, 64);
        let dense = distinguisher_size_lower_bound(128, 64);
        assert!(sparse > dense);
    }

    #[test]
    fn log2_binomial_matches_known_values() {
        assert!((log2_binomial(4, 2) - (6.0f64).log2()).abs() < 1e-9);
        assert!((log2_binomial(10, 0) - 0.0).abs() < 1e-9);
        assert!((log2_binomial(10, 10) - 0.0).abs() < 1e-9);
        assert!((log2_binomial(52, 5) - (2_598_960.0f64).log2()).abs() < 1e-6);
        assert_eq!(log2_binomial(3, 5), 0.0);
    }

    #[test]
    fn counting_bound_is_dominated_by_main_bound() {
        // Lemma 23 strengthens Lemma 43, so the main bound should not be
        // (asymptotically) smaller; check a few concrete points allowing a
        // constant factor.
        for &(universe, n) in &[(1u64 << 16, 32usize), (1 << 20, 128), (1 << 12, 16)] {
            let main = distinguisher_size_lower_bound(universe, n);
            let counting = strong_distinguisher_counting_bound(universe, n);
            assert!(main * 2.0 > counting, "main {main} vs counting {counting}");
        }
    }

    #[test]
    fn perceptive_bounds_have_expected_orderings() {
        let universe = 1 << 16;
        // For large n the perceptive NM bound beats the basic-model bound.
        let n = 4096;
        assert!(
            perceptive_nontrivial_move_bound(universe, n)
                < nontrivial_move_round_bound(universe, n)
        );
        // Location discovery bounds: perceptive is roughly half of lazy once
        // log²N = o(√n) kicks in.
        let big_n = 1usize << 30;
        let lazy = lazy_location_discovery_bound(1 << 32, big_n);
        let perc = perceptive_location_discovery_bound(1 << 32, big_n);
        assert!(perc < lazy);
    }

    #[test]
    fn degenerate_parameters_do_not_blow_up() {
        for f in [
            distinguisher_size_lower_bound,
            nontrivial_move_round_bound,
            selective_family_size_bound,
        ] {
            let v = f(2, 1);
            assert!(v.is_finite() && v >= 1.0);
        }
        assert!(intersection_free_log_bound(4, 1).is_finite());
    }
}
