//! Thread-shareable combinatorial structures and the cache-key model used
//! by the `ring-harness` structure cache.
//!
//! The expensive structures of this crate ([`Distinguisher`],
//! [`SelectiveFamily`] and the lazily generated strong-distinguisher
//! sequences) are pure functions of `(kind, N, n, seed)`. [`StructureKey`]
//! names one such construction so that a sweep harness can memoise it once
//! and share it — read-only, behind an `Arc` — across worker threads.
//!
//! [`SharedStrongDistinguisher`] is the concurrent counterpart of
//! [`StrongDistinguisher`](crate::StrongDistinguisher): the same seeded set
//! sequence (set `i` is generated independently of every other index), but
//! with the materialised prefix behind an `RwLock` so that many protocol
//! runs can extend and read it concurrently. Both types generate their sets
//! through one shared helper, so `shared.set(i)` equals `strong.set(i)` for
//! every index — protocol outcomes cannot depend on which variant served
//! the sets.

use crate::distinguisher::strong_set;
use crate::idset::IdSet;
use std::sync::{Arc, RwLock};

/// Which combinatorial structure a cache entry holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// A lazily generated strong-distinguisher sequence (Definition 21);
    /// the set-size parameter `n` of the key is 0 because one sequence
    /// serves every ring size.
    StrongDistinguisher,
    /// A materialised `(N, n)`-distinguisher (Definition 20).
    Distinguisher,
    /// An `(N, n)`-selective family (Definition 35).
    SelectiveFamily,
}

/// The identity of one deterministic construction: everything the random
/// constructions of this crate depend on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StructureKey {
    /// The structure kind.
    pub kind: StructureKind,
    /// Identifier universe size `N`.
    pub universe: u64,
    /// Target set size `n` (0 for kinds that do not take one).
    pub n: u64,
    /// Construction seed.
    pub seed: u64,
}

impl StructureKind {
    /// The stable numeric code of the kind, shared by the cache-shard mixer
    /// and the `structure-store/v1` on-disk header.
    pub fn code(self) -> u64 {
        match self {
            StructureKind::StrongDistinguisher => 1,
            StructureKind::Distinguisher => 2,
            StructureKind::SelectiveFamily => 3,
        }
    }

    /// The kind for a numeric code (`None` for unknown codes — a decoder
    /// must reject them, not guess).
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(StructureKind::StrongDistinguisher),
            2 => Some(StructureKind::Distinguisher),
            3 => Some(StructureKind::SelectiveFamily),
            _ => None,
        }
    }
}

impl StructureKey {
    /// A well-mixed 64-bit hash of the key (splitmix64 over the fields),
    /// used by sharded caches to pick a shard without pulling in a hasher.
    pub fn mix(&self) -> u64 {
        let mut x = self.kind.code();
        for field in [self.universe, self.n, self.seed] {
            x = splitmix64(x ^ field);
        }
        x
    }
}

/// One splitmix64 step: a cheap, high-quality 64-bit mixer.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A strong distinguisher whose materialised prefix is shared across
/// threads.
///
/// `set(i)` is generated on first demand (under a write lock) and served as
/// a cheap `Arc` clone afterwards (under a read lock). Generation of set
/// `i` depends only on `(universe, seed, i)`, so the contents are identical
/// no matter which thread extends the prefix or in what order.
#[derive(Debug)]
pub struct SharedStrongDistinguisher {
    universe: u64,
    seed: u64,
    sets: RwLock<Vec<Arc<IdSet>>>,
}

impl SharedStrongDistinguisher {
    /// Creates a shared strong distinguisher over `[1, universe]`.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0`.
    pub fn new(universe: u64, seed: u64) -> Self {
        Self::with_prefix(universe, seed, Vec::new())
    }

    /// Creates a shared strong distinguisher whose first `prefix.len()` sets
    /// are already materialised — the load path of the on-disk structure
    /// store. The caller asserts that `prefix[i]` equals the set the seeded
    /// generator would produce for index `i` (the codec's checksum plus the
    /// deterministic construction guarantee this); sets beyond the prefix
    /// are generated lazily exactly as with [`SharedStrongDistinguisher::new`].
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0` or a prefix set has a different universe.
    pub fn with_prefix(universe: u64, seed: u64, prefix: Vec<IdSet>) -> Self {
        assert!(universe > 0);
        assert!(
            prefix.iter().all(|s| s.universe() == universe),
            "prefix sets must share the distinguisher's universe"
        );
        SharedStrongDistinguisher {
            universe,
            seed,
            sets: RwLock::new(prefix.into_iter().map(Arc::new).collect()),
        }
    }

    /// A snapshot of the materialised prefix, in index order — what the
    /// structure store persists.
    pub fn materialized(&self) -> Vec<Arc<IdSet>> {
        self.sets.read().expect("strong distinguisher lock").clone()
    }

    /// The identifier universe size `N`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `i`-th set of the sequence (0-indexed), generating it on demand.
    /// Equal to [`StrongDistinguisher::set`](crate::StrongDistinguisher::set)
    /// for the same `(universe, seed, i)`.
    pub fn set(&self, i: usize) -> Arc<IdSet> {
        {
            let sets = self.sets.read().expect("strong distinguisher lock");
            if let Some(set) = sets.get(i) {
                return Arc::clone(set);
            }
        }
        let mut sets = self.sets.write().expect("strong distinguisher lock");
        while sets.len() <= i {
            let idx = sets.len();
            sets.push(Arc::new(strong_set(self.universe, self.seed, idx)));
        }
        Arc::clone(&sets[i])
    }

    /// Number of sets materialised so far (grows monotonically).
    pub fn materialized_len(&self) -> usize {
        self.sets.read().expect("strong distinguisher lock").len()
    }

    /// Length of the prefix expected to distinguish disjoint sets of size
    /// `n` — identical to
    /// [`StrongDistinguisher::prefix_size_for`](crate::StrongDistinguisher::prefix_size_for).
    pub fn prefix_size_for(&self, n: usize) -> usize {
        crate::distinguisher::strong_prefix_size_for(self.universe, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrongDistinguisher;

    #[test]
    fn shared_sets_equal_the_sequential_strong_distinguisher() {
        let shared = SharedStrongDistinguisher::new(1 << 12, 99);
        let mut strong = StrongDistinguisher::new(1 << 12, 99);
        // Demand sets out of order to exercise the lazy fill.
        for i in [5usize, 0, 3, 7, 1] {
            assert_eq!(&*shared.set(i), strong.set(i), "set {i}");
        }
        assert_eq!(shared.materialized_len(), 8);
        assert_eq!(shared.prefix_size_for(16), strong.prefix_size_for(16));
    }

    #[test]
    fn shared_sets_are_identical_across_threads() {
        let shared = Arc::new(SharedStrongDistinguisher::new(1 << 10, 7));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    (0..16usize)
                        .map(|i| shared.set((i + t) % 16).len() as u64)
                        .sum::<u64>()
                })
            })
            .collect();
        let sums: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn structure_keys_mix_distinctly() {
        let a = StructureKey {
            kind: StructureKind::Distinguisher,
            universe: 1024,
            n: 8,
            seed: 1,
        };
        let b = StructureKey {
            kind: StructureKind::SelectiveFamily,
            ..a
        };
        let c = StructureKey { seed: 2, ..a };
        assert_ne!(a.mix(), b.mix());
        assert_ne!(a.mix(), c.mix());
        assert_eq!(a.mix(), a.mix());
    }
}
