//! Thread-shareable combinatorial structures and the cache-key model used
//! by the `ring-harness` structure cache.
//!
//! The expensive structures of this crate ([`Distinguisher`],
//! [`SelectiveFamily`] and the lazily generated strong-distinguisher
//! sequences) are pure functions of `(kind, N, n, seed)`. [`StructureKey`]
//! names one such construction so that a sweep harness can memoise it once
//! and share it — read-only, behind an `Arc` — across worker threads.
//!
//! [`SharedStrongDistinguisher`] is the concurrent counterpart of
//! [`StrongDistinguisher`](crate::StrongDistinguisher): the same seeded set
//! sequence (set `i` is generated independently of every other index), but
//! with the materialised prefix behind an `RwLock` so that many protocol
//! runs can extend and read it concurrently. Both types generate their sets
//! through one shared helper, so `shared.set(i)` equals `strong.set(i)` for
//! every index — protocol outcomes cannot depend on which variant served
//! the sets.

use crate::distinguisher::universal_strong_set;
use crate::idset::IdSet;
use std::sync::{Arc, RwLock};

/// Number of distinct window offsets a seed can select into the universal
/// strong sequence (see [`strong_offset`]). Kept small so the shared blob a
/// seed-diverse sweep stores stays within one window of the longest demanded
/// prefix — `K` seeds share one blob of at most `prefix + STRONG_WINDOW`
/// sets instead of `K` full per-seed files.
pub const STRONG_WINDOW: u64 = 64;

/// The window offset a seed selects into the universal strong sequence of
/// its universe: seed `s`'s sequence is `universal[offset(s)..]`. A pure
/// function of the seed, so every participant of a sweep — worker threads,
/// worker processes, the prebuild tooling — agrees on the window.
pub fn strong_offset(seed: u64) -> usize {
    (splitmix64(seed ^ 0x005e_ed0f_f5e7) % STRONG_WINDOW) as usize
}

/// Which combinatorial structure a cache entry holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StructureKind {
    /// A lazily generated strong-distinguisher sequence (Definition 21);
    /// the set-size parameter `n` of the key is 0 because one sequence
    /// serves every ring size.
    StrongDistinguisher,
    /// A materialised `(N, n)`-distinguisher (Definition 20).
    Distinguisher,
    /// An `(N, n)`-selective family (Definition 35).
    SelectiveFamily,
}

/// The identity of one deterministic construction: everything the random
/// constructions of this crate depend on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StructureKey {
    /// The structure kind.
    pub kind: StructureKind,
    /// Identifier universe size `N`.
    pub universe: u64,
    /// Target set size `n` (0 for kinds that do not take one).
    pub n: u64,
    /// Construction seed.
    pub seed: u64,
}

impl StructureKind {
    /// The stable numeric code of the kind, shared by the cache-shard mixer
    /// and the `structure-store/v1` on-disk header.
    pub fn code(self) -> u64 {
        match self {
            StructureKind::StrongDistinguisher => 1,
            StructureKind::Distinguisher => 2,
            StructureKind::SelectiveFamily => 3,
        }
    }

    /// The kind for a numeric code (`None` for unknown codes — a decoder
    /// must reject them, not guess).
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(StructureKind::StrongDistinguisher),
            2 => Some(StructureKind::Distinguisher),
            3 => Some(StructureKind::SelectiveFamily),
            _ => None,
        }
    }
}

impl StructureKey {
    /// A well-mixed 64-bit hash of the key (splitmix64 over the fields),
    /// used by sharded caches to pick a shard without pulling in a hasher.
    pub fn mix(&self) -> u64 {
        let mut x = self.kind.code();
        for field in [self.universe, self.n, self.seed] {
            x = splitmix64(x ^ field);
        }
        x
    }
}

/// One splitmix64 step: a cheap, high-quality 64-bit mixer.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The lazily materialised **universal** strong sequence of one universe —
/// the object every seed's [`SharedStrongDistinguisher`] is a window into,
/// and the one prefix-extendable blob per universe the content-addressed
/// structure store persists.
///
/// `set(j)` is generated on first demand (under a write lock) and served as
/// a cheap `Arc` clone afterwards (under a read lock). Generation of set
/// `j` depends only on `(universe, j)`, so the contents are identical no
/// matter which thread — or which seed's view — extends the prefix, or in
/// what order.
#[derive(Debug)]
pub struct StrongBase {
    universe: u64,
    sets: RwLock<Vec<Arc<IdSet>>>,
}

impl StrongBase {
    /// Creates an empty universal sequence over `[1, universe]`.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0`.
    pub fn new(universe: u64) -> Self {
        Self::with_prefix(universe, Vec::new())
    }

    /// Creates a universal sequence whose first `prefix.len()` sets are
    /// already materialised — the load path of the on-disk structure store.
    /// The caller asserts that `prefix[j]` equals the set the universal
    /// generator would produce for index `j` (the codec's digest plus the
    /// deterministic construction guarantee this); sets beyond the prefix
    /// are generated lazily.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0` or a prefix set has a different universe.
    pub fn with_prefix(universe: u64, prefix: Vec<IdSet>) -> Self {
        assert!(universe > 0);
        assert!(
            prefix.iter().all(|s| s.universe() == universe),
            "prefix sets must share the sequence's universe"
        );
        StrongBase {
            universe,
            sets: RwLock::new(prefix.into_iter().map(Arc::new).collect()),
        }
    }

    /// The identifier universe size `N`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The `j`-th set of the universal sequence, generating it on demand.
    pub fn set(&self, j: usize) -> Arc<IdSet> {
        {
            let sets = self.sets.read().expect("strong base lock");
            if let Some(set) = sets.get(j) {
                return Arc::clone(set);
            }
        }
        let mut sets = self.sets.write().expect("strong base lock");
        while sets.len() <= j {
            let idx = sets.len();
            sets.push(Arc::new(universal_strong_set(self.universe, idx)));
        }
        Arc::clone(&sets[j])
    }

    /// A snapshot of the materialised prefix, in index order — what the
    /// structure store persists.
    pub fn materialized(&self) -> Vec<Arc<IdSet>> {
        self.sets.read().expect("strong base lock").clone()
    }

    /// Number of sets materialised so far (grows monotonically).
    pub fn materialized_len(&self) -> usize {
        self.sets.read().expect("strong base lock").len()
    }
}

/// A strong distinguisher whose materialised prefix is shared across
/// threads — and, through its [`StrongBase`], across every seed of the same
/// universe: the view's set `i` is the universal sequence's set
/// `offset(seed) + i`.
///
/// `set(i)` equals
/// [`StrongDistinguisher::set`](crate::StrongDistinguisher::set) for the
/// same `(universe, seed, i)`, so protocol outcomes cannot depend on which
/// variant — or which shared base — served the sets.
#[derive(Debug)]
pub struct SharedStrongDistinguisher {
    seed: u64,
    offset: usize,
    base: Arc<StrongBase>,
}

impl SharedStrongDistinguisher {
    /// Creates a shared strong distinguisher over `[1, universe]` with its
    /// own private base.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0`.
    pub fn new(universe: u64, seed: u64) -> Self {
        Self::with_base(seed, Arc::new(StrongBase::new(universe)))
    }

    /// Creates a seed's view onto an existing universal sequence — how the
    /// structure store hands every seed of one universe the same base (and
    /// therefore the same in-memory materialisation and the same on-disk
    /// blob).
    pub fn with_base(seed: u64, base: Arc<StrongBase>) -> Self {
        SharedStrongDistinguisher {
            seed,
            offset: strong_offset(seed),
            base,
        }
    }

    /// The identifier universe size `N`.
    pub fn universe(&self) -> u64 {
        self.base.universe()
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seed's window offset into the universal sequence.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The shared universal sequence this view reads through.
    pub fn base(&self) -> &Arc<StrongBase> {
        &self.base
    }

    /// The `i`-th set of the sequence (0-indexed), generating it on demand.
    /// Equal to [`StrongDistinguisher::set`](crate::StrongDistinguisher::set)
    /// for the same `(universe, seed, i)`.
    pub fn set(&self, i: usize) -> Arc<IdSet> {
        self.base.set(self.offset + i)
    }

    /// Number of sets of **this view** already materialised (the base may
    /// hold more, for other windows).
    pub fn materialized_len(&self) -> usize {
        self.base.materialized_len().saturating_sub(self.offset)
    }

    /// Length of the prefix expected to distinguish disjoint sets of size
    /// `n` — identical to
    /// [`StrongDistinguisher::prefix_size_for`](crate::StrongDistinguisher::prefix_size_for).
    pub fn prefix_size_for(&self, n: usize) -> usize {
        crate::distinguisher::strong_prefix_size_for(self.base.universe(), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrongDistinguisher;

    #[test]
    fn shared_sets_equal_the_sequential_strong_distinguisher() {
        let shared = SharedStrongDistinguisher::new(1 << 12, 99);
        let mut strong = StrongDistinguisher::new(1 << 12, 99);
        // Demand sets out of order to exercise the lazy fill.
        for i in [5usize, 0, 3, 7, 1] {
            assert_eq!(&*shared.set(i), strong.set(i), "set {i}");
        }
        assert_eq!(shared.materialized_len(), 8);
        assert_eq!(shared.prefix_size_for(16), strong.prefix_size_for(16));
    }

    #[test]
    fn shared_sets_are_identical_across_threads() {
        let shared = Arc::new(SharedStrongDistinguisher::new(1 << 10, 7));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    (0..16usize)
                        .map(|i| shared.set((i + t) % 16).len() as u64)
                        .sum::<u64>()
                })
            })
            .collect();
        let sums: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn seeded_views_share_one_base_and_window_the_universal_sequence() {
        let base = Arc::new(StrongBase::new(1 << 10));
        let a = SharedStrongDistinguisher::with_base(7, Arc::clone(&base));
        let b = SharedStrongDistinguisher::with_base(1234, Arc::clone(&base));
        // Each view equals its own freshly constructed sequence…
        for i in 0..4 {
            assert_eq!(
                *a.set(i),
                *SharedStrongDistinguisher::new(1 << 10, 7).set(i)
            );
            assert_eq!(
                *b.set(i),
                *SharedStrongDistinguisher::new(1 << 10, 1234).set(i)
            );
        }
        // …and both read through the same universal materialisation.
        let longest = a.offset().max(b.offset()) + 4;
        assert_eq!(base.materialized_len(), longest);
        assert_eq!(*a.set(0), *base.set(a.offset()));
        // Window offsets stay inside the bounded window.
        for seed in 0..1000u64 {
            assert!((strong_offset(seed) as u64) < STRONG_WINDOW);
        }
    }

    #[test]
    fn structure_keys_mix_distinctly() {
        let a = StructureKey {
            kind: StructureKind::Distinguisher,
            universe: 1024,
            n: 8,
            seed: 1,
        };
        let b = StructureKey {
            kind: StructureKind::SelectiveFamily,
            ..a
        };
        let c = StructureKey { seed: 2, ..a };
        assert_ne!(a.mix(), b.mix());
        assert_ne!(a.mix(), c.mix());
        assert_eq!(a.mix(), a.mix());
    }
}
