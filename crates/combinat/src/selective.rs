//! `(N, n)`-selective families (Definition 35 of the paper, after
//! Clementi, Monti and Silvestri).
//!
//! A family `F` of subsets of `[N]` is `(N, n)`-selective if for every
//! nonempty `Z ⊆ [N]` with `|Z| ≤ n` there is an `F ∈ F` with
//! `|Z ∩ F| = 1`. Selective families of size `O(n · log(N/n))` exist; the
//! perceptive-model nontrivial-move algorithm `NMoveS` (Algorithm 4)
//! executes one on the current set of local leaders so that in some round a
//! *single* leader deviates, which changes the rotation index by exactly 2
//! and therefore produces a nontrivial move.

use crate::bounds::selective_family_size_bound;
use crate::idset::IdSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A family of ID sets intended to be `(N, n)`-selective.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectiveFamily {
    universe: u64,
    target_n: usize,
    sets: Vec<IdSet>,
}

impl SelectiveFamily {
    /// Builds an `(N, n)`-selective family with the standard probabilistic
    /// construction: for every scale `j ≤ ⌈log₂ n⌉` it draws a batch of sets
    /// in which each identifier appears independently with probability
    /// `2^{-j}`; a set of the right scale isolates a given `Z` with constant
    /// probability, so logarithmically many sets per scale suffice with high
    /// probability. Deterministic given `seed`.
    ///
    /// Membership with probability exactly `2^{-j}` is the AND of `j`
    /// independent uniform words, so a scale-`j` set costs `j·⌈N/64⌉` RNG
    /// calls instead of `N` floating-point draws (and is exact, where the
    /// old `f64` comparison merely approximated `2^{-j}`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n as u64 > universe`.
    pub fn random(universe: u64, n: usize, seed: u64) -> Self {
        assert!(n > 0, "selective families need a positive target size");
        assert!(n as u64 <= universe, "target size exceeds the universe");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sets = Vec::new();
        let max_scale = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n), 0 for n=1
        for scale in 0..=max_scale {
            let width = (universe as f64 / f64::from(1u32 << scale)).max(2.0);
            let batch = (6.0 * f64::from(1u32 << scale) * width.log2().max(1.0)).ceil() as usize;
            for _ in 0..batch.max(4) {
                let mut s = IdSet::empty(universe);
                // AND of `scale` uniform words ⇒ each bit survives with
                // probability 2^-scale; zero words ⇒ the full universe.
                s.fill_with_words(|_| (0..scale).fold(!0u64, |acc, _| acc & rng.gen::<u64>()));
                sets.push(s);
            }
        }
        SelectiveFamily {
            universe,
            target_n: n,
            sets,
        }
    }

    /// Wraps an explicit family.
    ///
    /// # Panics
    ///
    /// Panics if the sets do not all share the universe `universe`.
    pub fn from_sets(universe: u64, target_n: usize, sets: Vec<IdSet>) -> Self {
        assert!(sets.iter().all(|s| s.universe() == universe));
        SelectiveFamily {
            universe,
            target_n,
            sets,
        }
    }

    /// The identifier universe size `N`.
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The maximum size of sets this family is designed to select from.
    pub fn target_n(&self) -> usize {
        self.target_n
    }

    /// Number of sets in the family.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The sets of the family in execution order.
    pub fn sets(&self) -> &[IdSet] {
        &self.sets
    }

    /// The `i`-th set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&self, i: usize) -> &IdSet {
        &self.sets[i]
    }

    /// Index of the first set that intersects `z` in exactly one element,
    /// or `None` if the family fails to select `z`.
    ///
    /// `z` is at most `n` elements by definition, so membership is tested
    /// element by element (with an early exit at the second hit) rather
    /// than word-parallel over the whole universe: O(|z|) per set instead
    /// of O(N/64).
    pub fn selects(&self, z: &IdSet) -> Option<usize> {
        self.sets.iter().position(|s| {
            let mut count = 0usize;
            for id in z.iter() {
                if s.contains(id) {
                    count += 1;
                    if count > 1 {
                        return false;
                    }
                }
            }
            count == 1
        })
    }

    /// Exhaustively verifies selectivity for all nonempty subsets of size at
    /// most `n`. Exponential in the universe; intended for tests with tiny
    /// universes.
    pub fn verify_exhaustive(&self, n: usize) -> bool {
        let universe = self.universe as usize;
        // Iterate over all nonempty bitmasks with at most n bits set.
        for mask in 1u64..(1u64 << universe) {
            if mask.count_ones() as usize > n {
                continue;
            }
            let z = IdSet::from_ids(
                self.universe,
                (0..universe as u64)
                    .filter(|b| mask >> b & 1 == 1)
                    .map(|b| b + 1),
            );
            if self.selects(&z).is_none() {
                return false;
            }
        }
        true
    }

    /// Spot-checks selectivity on `samples` random subsets with sizes drawn
    /// uniformly from `[1, n]`; returns the number of failures.
    pub fn verify_sampled(&self, n: usize, samples: usize, seed: u64) -> usize {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<u64> = (1..=self.universe).collect();
        let mut z = IdSet::empty(self.universe);
        let mut failures = 0;
        for _ in 0..samples {
            let size = rng.gen_range(1..=n);
            // Draw the sample into a reusable permutation prefix and set
            // buffer: O(size) work per sample instead of O(N).
            crate::distinguisher::partial_shuffle(&mut ids, size, &mut rng);
            for &id in &ids[..size] {
                z.insert(id);
            }
            if self.selects(&z).is_none() {
                failures += 1;
            }
            for &id in &ids[..size] {
                z.remove(id);
            }
        }
        failures
    }

    /// The classical `O(n log(N/n))` size bound, for comparison against
    /// [`SelectiveFamily::len`].
    pub fn size_bound(&self) -> f64 {
        selective_family_size_bound(self.universe, self.target_n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_family_is_selective_on_tiny_universe() {
        let f = SelectiveFamily::random(10, 4, 42);
        assert!(f.verify_exhaustive(4));
    }

    #[test]
    fn random_family_passes_sampling_on_larger_universe() {
        let f = SelectiveFamily::random(256, 16, 3);
        assert_eq!(f.verify_sampled(16, 300, 11), 0);
    }

    #[test]
    fn selects_reports_first_isolating_set() {
        let sets = vec![
            IdSet::from_ids(8, [1, 2]),
            IdSet::from_ids(8, [3]),
            IdSet::from_ids(8, [2]),
        ];
        let f = SelectiveFamily::from_sets(8, 2, sets);
        let z = IdSet::from_ids(8, [1, 2]);
        // Set 0 intersects in two elements, set 1 in zero, set 2 in one.
        assert_eq!(f.selects(&z), Some(2));
        let z = IdSet::from_ids(8, [5]);
        assert_eq!(f.selects(&z), None);
    }

    #[test]
    fn singletons_form_a_selective_family() {
        let sets: Vec<IdSet> = (1..=6).map(|i| IdSet::from_ids(6, [i])).collect();
        let f = SelectiveFamily::from_sets(6, 6, sets);
        assert!(f.verify_exhaustive(6));
    }

    #[test]
    #[should_panic(expected = "positive target size")]
    fn zero_target_panics() {
        let _ = SelectiveFamily::random(8, 0, 0);
    }
}
