//! Element-wise reference implementations of the probabilistic
//! constructions.
//!
//! These are the pre-word-parallel builders, kept verbatim as (a) baselines
//! for the `bench_combinat` speedup trajectory (`BENCH_combinat.json`) and
//! (b) oracles for property tests: the word-parallel constructions must
//! produce families that pass exactly the same validity verifiers. They are
//! **not** part of the performance surface — never call them from protocol
//! code.

use crate::bounds::nontrivial_move_round_bound;
use crate::distinguisher::Distinguisher;
use crate::idset::IdSet;
use crate::selective::SelectiveFamily;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-identifier coin-flip subset draw (the old `random_set`): one RNG
/// call and one branch per identifier.
pub fn random_set_reference(universe: u64, rng: &mut StdRng) -> IdSet {
    let mut s = IdSet::empty(universe);
    for id in 1..=universe {
        if rng.gen::<bool>() {
            s.insert(id);
        }
    }
    s
}

/// Element-by-element `Distinguisher::random` (Theorem 27) with O(N) RNG
/// calls per set.
pub fn distinguisher_random_reference(universe: u64, n: usize, seed: u64) -> Distinguisher {
    assert!(n > 0, "distinguishers for empty sets are vacuous");
    assert!(
        2 * n as u64 <= universe,
        "two disjoint sets of size {n} do not fit in a universe of {universe}"
    );
    let size = reference_recommended_size(universe, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let sets = (0..size)
        .map(|_| random_set_reference(universe, &mut rng))
        .collect();
    Distinguisher::from_sets(universe, n, sets)
}

/// Element-by-element `SelectiveFamily::random` (Definition 35) with an
/// `f64` comparison per identifier per set.
pub fn selective_random_reference(universe: u64, n: usize, seed: u64) -> SelectiveFamily {
    assert!(n > 0, "selective families need a positive target size");
    assert!(n as u64 <= universe, "target size exceeds the universe");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sets = Vec::new();
    let max_scale = usize::BITS - (n - 1).leading_zeros();
    for scale in 0..=max_scale {
        let p = 1.0 / f64::from(1u32 << scale);
        let width = (universe as f64 / f64::from(1u32 << scale)).max(2.0);
        let batch = (6.0 * f64::from(1u32 << scale) * width.log2().max(1.0)).ceil() as usize;
        for _ in 0..batch.max(4) {
            let mut s = IdSet::empty(universe);
            for id in 1..=universe {
                if rng.gen::<f64>() < p {
                    s.insert(id);
                }
            }
            sets.push(s);
        }
    }
    SelectiveFamily::from_sets(universe, n, sets)
}

/// Mirror of `distinguisher::recommended_size`, duplicated so that the
/// reference path cannot silently drift when the tuned path changes.
fn reference_recommended_size(universe: u64, n: usize) -> usize {
    let bound = nontrivial_move_round_bound(universe, 2 * n);
    let log_n = ((universe as f64).log2()).max(1.0);
    (8.0 * bound + 8.0 * log_n + 32.0).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_families_have_the_same_shape_as_the_fast_ones() {
        let fast = Distinguisher::random(256, 4, 9);
        let slow = distinguisher_random_reference(256, 4, 9);
        assert_eq!(fast.len(), slow.len());
        assert_eq!(fast.universe(), slow.universe());

        let fast = SelectiveFamily::random(256, 8, 9);
        let slow = selective_random_reference(256, 8, 9);
        assert_eq!(fast.len(), slow.len());
    }

    #[test]
    fn reference_families_are_valid() {
        let d = distinguisher_random_reference(10, 2, 4);
        assert!(d.verify_exhaustive(2));
        let f = selective_random_reference(10, 4, 4);
        assert!(f.verify_exhaustive(4));
    }
}
