//! Element-wise reference implementations of the probabilistic
//! constructions.
//!
//! These are the pre-word-parallel builders, kept verbatim as (a) baselines
//! for the `bench_combinat` speedup trajectory (`BENCH_combinat.json`) and
//! (b) oracles for property tests: the word-parallel constructions must
//! produce families that pass exactly the same validity verifiers. They are
//! **not** part of the performance surface — never call them from protocol
//! code.

use crate::bounds::nontrivial_move_round_bound;
use crate::distinguisher::Distinguisher;
use crate::idset::IdSet;
use crate::selective::SelectiveFamily;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-identifier coin-flip subset draw (the old `random_set`): one RNG
/// call and one branch per identifier.
pub fn random_set_reference(universe: u64, rng: &mut StdRng) -> IdSet {
    let mut s = IdSet::empty(universe);
    for id in 1..=universe {
        if rng.gen::<bool>() {
            s.insert(id);
        }
    }
    s
}

/// Element-by-element `Distinguisher::random` (Theorem 27) with O(N) RNG
/// calls per set.
pub fn distinguisher_random_reference(universe: u64, n: usize, seed: u64) -> Distinguisher {
    assert!(n > 0, "distinguishers for empty sets are vacuous");
    assert!(
        2 * n as u64 <= universe,
        "two disjoint sets of size {n} do not fit in a universe of {universe}"
    );
    let size = reference_recommended_size(universe, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let sets = (0..size)
        .map(|_| random_set_reference(universe, &mut rng))
        .collect();
    Distinguisher::from_sets(universe, n, sets)
}

/// Element-by-element `SelectiveFamily::random` (Definition 35) with an
/// `f64` comparison per identifier per set.
pub fn selective_random_reference(universe: u64, n: usize, seed: u64) -> SelectiveFamily {
    assert!(n > 0, "selective families need a positive target size");
    assert!(n as u64 <= universe, "target size exceeds the universe");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sets = Vec::new();
    let max_scale = usize::BITS - (n - 1).leading_zeros();
    for scale in 0..=max_scale {
        let p = 1.0 / f64::from(1u32 << scale);
        let width = (universe as f64 / f64::from(1u32 << scale)).max(2.0);
        let batch = (6.0 * f64::from(1u32 << scale) * width.log2().max(1.0)).ceil() as usize;
        for _ in 0..batch.max(4) {
            let mut s = IdSet::empty(universe);
            for id in 1..=universe {
                if rng.gen::<f64>() < p {
                    s.insert(id);
                }
            }
            sets.push(s);
        }
    }
    SelectiveFamily::from_sets(universe, n, sets)
}

/// Element-wise union oracle for the chunked `union_with` kernel: one
/// membership test and one conditional insert per identifier.
pub fn union_reference(a: &IdSet, b: &IdSet) -> IdSet {
    assert_eq!(a.universe(), b.universe(), "universe mismatch");
    let mut out = IdSet::empty(a.universe());
    for id in 1..=a.universe() {
        if a.contains(id) || b.contains(id) {
            out.insert(id);
        }
    }
    out
}

/// Element-wise intersection oracle for the chunked `intersect_with`
/// kernel.
pub fn intersection_reference(a: &IdSet, b: &IdSet) -> IdSet {
    assert_eq!(a.universe(), b.universe(), "universe mismatch");
    let mut out = IdSet::empty(a.universe());
    for id in 1..=a.universe() {
        if a.contains(id) && b.contains(id) {
            out.insert(id);
        }
    }
    out
}

/// Element-wise difference oracle for the chunked `difference_with`
/// kernel.
pub fn difference_reference(a: &IdSet, b: &IdSet) -> IdSet {
    assert_eq!(a.universe(), b.universe(), "universe mismatch");
    let mut out = IdSet::empty(a.universe());
    for id in 1..=a.universe() {
        if a.contains(id) && !b.contains(id) {
            out.insert(id);
        }
    }
    out
}

/// Element-wise complement oracle for the chunked `complement_in_place`
/// kernel.
pub fn complement_reference(a: &IdSet) -> IdSet {
    let mut out = IdSet::empty(a.universe());
    for id in 1..=a.universe() {
        if !a.contains(id) {
            out.insert(id);
        }
    }
    out
}

/// Element-wise cardinality oracle for the fused multi-word popcount in
/// `IdSet::len`.
pub fn len_reference(a: &IdSet) -> usize {
    (1..=a.universe()).filter(|&id| a.contains(id)).count()
}

/// Element-wise intersection-size oracle for `IdSet::intersection_count`
/// and the fused `IdSet::intersection_count_pair`.
pub fn intersection_count_reference(a: &IdSet, b: &IdSet) -> usize {
    assert_eq!(a.universe(), b.universe(), "universe mismatch");
    (1..=a.universe())
        .filter(|&id| a.contains(id) && b.contains(id))
        .count()
}

/// Element-wise `Distinguisher::verify_sampled`: the identical Fisher–Yates
/// pair draw (same RNG stream, same buffers), but every separation test
/// scans identifiers one by one through [`intersection_count_reference`]
/// instead of streaming chunked words — so the failure count matches the
/// fast path exactly while the per-set cost is the old O(N) loop.
pub fn verify_sampled_reference(d: &Distinguisher, n: usize, samples: usize, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u64> = (1..=d.universe()).collect();
    let mut x1 = IdSet::empty(d.universe());
    let mut x2 = IdSet::empty(d.universe());
    let mut failures = 0;
    for _ in 0..samples {
        crate::distinguisher::partial_shuffle(&mut ids, 2 * n, &mut rng);
        for &id in &ids[..n] {
            x1.insert(id);
        }
        for &id in &ids[n..2 * n] {
            x2.insert(id);
        }
        let separated = (0..d.len()).any(|i| {
            intersection_count_reference(d.set(i), &x1)
                != intersection_count_reference(d.set(i), &x2)
        });
        if !separated {
            failures += 1;
        }
        for &id in &ids[..n] {
            x1.remove(id);
        }
        for &id in &ids[n..2 * n] {
            x2.remove(id);
        }
    }
    failures
}

/// Mirror of `distinguisher::recommended_size`, duplicated so that the
/// reference path cannot silently drift when the tuned path changes.
fn reference_recommended_size(universe: u64, n: usize) -> usize {
    let bound = nontrivial_move_round_bound(universe, 2 * n);
    let log_n = ((universe as f64).log2()).max(1.0);
    (8.0 * bound + 8.0 * log_n + 32.0).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_families_have_the_same_shape_as_the_fast_ones() {
        let fast = Distinguisher::random(256, 4, 9);
        let slow = distinguisher_random_reference(256, 4, 9);
        assert_eq!(fast.len(), slow.len());
        assert_eq!(fast.universe(), slow.universe());

        let fast = SelectiveFamily::random(256, 8, 9);
        let slow = selective_random_reference(256, 8, 9);
        assert_eq!(fast.len(), slow.len());
    }

    #[test]
    fn sampled_verification_reference_matches_the_fast_path() {
        let d = Distinguisher::random(256, 4, 9);
        assert_eq!(
            d.verify_sampled(4, 16, 5),
            verify_sampled_reference(&d, 4, 16, 5)
        );
    }

    #[test]
    fn reference_families_are_valid() {
        let d = distinguisher_random_reference(10, 2, 4);
        assert!(d.verify_exhaustive(2));
        let f = selective_random_reference(10, 4, 4);
        assert!(f.verify_exhaustive(4));
    }
}
