//! # ring-combinat
//!
//! Combinatorial substrate for the deterministic symmetry-breaking protocols
//! of "Deterministic Symmetry Breaking in Ring Networks" (ICDCS 2015):
//!
//! * [`IdSet`] — compact sets of agent identifiers over a universe `[1, N]`;
//! * [`Distinguisher`] — families of subsets of `[N]` such that every pair
//!   of disjoint `n`-element subsets is told apart by some member
//!   (Definition 20 of the paper). The size of the smallest distinguisher is
//!   `Θ(n·log(N/n)/log n)` (Lemma 23 / Corollary 29), which is exactly the
//!   complexity of the nontrivial-move problem in the basic model with even
//!   `n`;
//! * [`StrongDistinguisher`] — the prefix-closed variant used when the
//!   network size is unknown (Definition 21);
//! * [`SelectiveFamily`] — `(N, n)`-selective families (Definition 35,
//!   following Clementi–Monti–Silvestri), used by the perceptive-model
//!   nontrivial-move algorithm `NMoveS`;
//! * [`bounds`] — closed-form evaluation of the paper's lower and upper
//!   bound formulas, used by the experiment harness to compare measured
//!   round counts against theory;
//! * [`shared`] — the cache-key model ([`StructureKey`]) and the
//!   thread-shareable [`SharedStrongDistinguisher`], which let the
//!   `ring-harness` sweep engine construct each structure once and share it
//!   read-only across worker threads;
//! * [`codec`] — the `structure-store/v1` binary codec (word-exact set
//!   payloads, versioned header, FNV-1a-64 checksum) behind the on-disk
//!   structure store, which extends the construct-once guarantee from one
//!   process to a whole worker fleet.
//!
//! All random constructions are deterministic given a seed, so protocol runs
//! and experiments are reproducible.
//!
//! # Example
//!
//! ```
//! use ring_combinat::{Distinguisher, IdSet};
//!
//! // A distinguisher over the ID universe [1, 32] for sets of size 4,
//! // constructed with the probabilistic method.
//! let d = Distinguisher::random(32, 4, 0xfeed);
//! assert!(d.len() > 0);
//! let x1 = IdSet::from_ids(32, [1, 5, 9, 13]);
//! let x2 = IdSet::from_ids(32, [2, 6, 10, 14]);
//! assert!(d.distinguishes(&x1, &x2));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bounds;
pub mod codec;
pub mod distinguisher;
pub mod idset;
pub mod reference;
pub mod selective;
pub mod shared;

pub use bounds::{
    distinguisher_size_lower_bound, intersection_free_log_bound, nontrivial_move_round_bound,
    selective_family_size_bound,
};
pub use codec::{format_checksum, CodecError, Fnv1a64, IndexEntry, STORE_SCHEMA, STORE_SCHEMA_V2};
pub use distinguisher::{Distinguisher, StrongDistinguisher};
pub use idset::IdSet;
pub use selective::SelectiveFamily;
pub use shared::{
    strong_offset, SharedStrongDistinguisher, StrongBase, StructureKey, StructureKind,
    STRONG_WINDOW,
};
