//! Property tests of the `structure-store/v1` codec: encode→decode must be
//! bit-identical for every structure kind across word-boundary universe
//! sizes, and no corrupted byte stream may ever decode into a structure.

use proptest::prelude::*;
use ring_combinat::codec::{decode, decode_for_key, encode, CodecError};
use ring_combinat::shared::splitmix64;
use ring_combinat::{Distinguisher, IdSet, SelectiveFamily, StructureKey, StructureKind};

/// The universe sizes the satellite pins: one below, at and above a word
/// boundary, plus the harness-scale `2^17`.
fn universes() -> impl Strategy<Value = u64> {
    prop_oneof![Just(63u64), Just(64), Just(65), Just(1u64 << 17)]
}

/// A deterministic pseudo-random set over `universe` (word-filled, so the
/// large universes cost O(N/64)).
fn random_set(universe: u64, seed: u64) -> IdSet {
    let mut s = IdSet::empty(universe);
    let mut state = seed;
    s.fill_with_words(|_| {
        state = splitmix64(state);
        state
    });
    s
}

fn key(kind: StructureKind, universe: u64, n: u64, seed: u64) -> StructureKey {
    StructureKey {
        kind,
        universe,
        n,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `IdSet` payloads round-trip bit-identically across word boundaries,
    /// for empty, full, sparse and random sets alike.
    #[test]
    fn idset_lists_round_trip((universe, seed, count) in (universes(), any::<u64>(), 0usize..4)) {
        let mut sets = vec![
            IdSet::empty(universe),
            IdSet::full(universe),
            IdSet::from_ids(universe, [1, universe]),
        ];
        for i in 0..count {
            sets.push(random_set(universe, seed ^ i as u64));
        }
        let k = key(StructureKind::StrongDistinguisher, universe, 0, seed);
        let bytes = encode(&k, &sets);
        let (decoded_key, decoded) = decode(&bytes).expect("clean bytes decode");
        prop_assert_eq!(decoded_key, k);
        prop_assert_eq!(decoded, sets);
    }

    /// Randomly constructed distinguishers and selective families survive a
    /// codec round trip exactly (same sets, same order, same words).
    #[test]
    fn constructed_structures_round_trip(
        (universe, n, seed) in (universes(), 1u64..=8, any::<u64>()),
    ) {
        let n = n as usize;
        let d = Distinguisher::random(universe, n, seed);
        let dk = key(StructureKind::Distinguisher, universe, n as u64, seed);
        let sets = decode_for_key(&dk, &encode(&dk, d.sets())).expect("distinguisher decodes");
        prop_assert_eq!(&Distinguisher::from_sets(universe, n, sets), &d);

        let f = SelectiveFamily::random(universe, n, seed);
        let fk = key(StructureKind::SelectiveFamily, universe, n as u64, seed);
        let sets = decode_for_key(&fk, &encode(&fk, f.sets())).expect("family decodes");
        prop_assert_eq!(&SelectiveFamily::from_sets(universe, n, sets), &f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Corruption never yields a structure: any truncation fails, and any
    /// single flipped byte fails (the checksum covers every header and
    /// payload byte; a flip inside the trailer breaks the trailer itself).
    #[test]
    fn corrupted_streams_never_decode(
        universe in prop_oneof![Just(63u64), Just(64), Just(65), Just(700)],
        seed in any::<u64>(),
        (cut_seed, flip_seed, flip_bit) in (any::<u64>(), any::<u64>(), 0u32..8),
    ) {
        let k = key(StructureKind::Distinguisher, universe, 2, seed);
        let sets = vec![random_set(universe, seed), random_set(universe, !seed)];
        let bytes = encode(&k, &sets);

        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(decode(&bytes[..cut]).is_err(), "truncation at {} decoded", cut);

        let mut flipped = bytes.clone();
        let at = (flip_seed % bytes.len() as u64) as usize;
        flipped[at] ^= 1 << flip_bit;
        match decode(&flipped) {
            Err(_) => {}
            Ok((decoded_key, decoded)) => {
                // Unreachable: surface what decoded for the failure message.
                prop_assert!(
                    false,
                    "byte {} flipped by {:02x} still decoded key {:?} ({} sets)",
                    at, 1u8 << flip_bit, decoded_key, decoded.len()
                );
            }
        }
    }

    /// The wrong-version error is reported as such even when the stream is
    /// otherwise intact and re-sealed — a future v2 file must be refused,
    /// not misread.
    #[test]
    fn wrong_versions_are_refused(version in 2u64..1000) {
        let k = key(StructureKind::SelectiveFamily, 64, 1, 9);
        let mut bytes = encode(&k, &[IdSet::from_ids(64, [7])]);
        bytes[8..16].copy_from_slice(&version.to_le_bytes());
        // Re-seal with the format's word-folded digest so only the version
        // field is wrong.
        let n = bytes.len() - 8;
        let mut h = ring_combinat::Fnv1a64::new();
        for chunk in bytes[..n].chunks_exact(8) {
            h.update_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let digest = h.finish();
        bytes[n..].copy_from_slice(&digest.to_le_bytes());
        prop_assert_eq!(decode(&bytes).unwrap_err(), CodecError::UnsupportedVersion(version));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// v2 content-addressed blobs round-trip bit-identically across word
    /// boundaries, and the identity digest is a pure function of the
    /// payload — the dedup invariant of the content-addressed store.
    #[test]
    fn blobs_round_trip_and_dedup(
        (universe, seed, count) in (universes(), any::<u64>(), 0usize..4),
    ) {
        use ring_combinat::codec::{decode_blob_stream, encode_blob, validate_blob_stream};
        let mut sets = vec![IdSet::empty(universe), IdSet::full(universe)];
        for i in 0..count {
            sets.push(random_set(universe, seed ^ i as u64));
        }
        let (bytes, digest) = encode_blob(universe, &sets);
        let (again, digest_again) = encode_blob(universe, &sets);
        prop_assert_eq!(&again, &bytes);
        prop_assert_eq!(digest_again, digest);
        let decoded = decode_blob_stream(&bytes[..], bytes.len() as u64, universe, sets.len(), digest)
            .expect("clean blobs decode");
        prop_assert_eq!(decoded, sets.clone());
        let summary = validate_blob_stream(&bytes[..], bytes.len() as u64).expect("valid");
        prop_assert_eq!((summary.universe, summary.count, summary.digest), (universe, sets.len(), digest));
    }

    /// Index entries round-trip through their single-line text form for
    /// every kind and any parameters.
    #[test]
    fn index_entries_round_trip(
        ((kind_code, universe, n), (seed, digest, count)) in (
            (1u64..=3, 1u64..=(1 << 40), any::<u64>()),
            (any::<u64>(), any::<u64>(), 0usize..1_000_000),
        ),
    ) {
        use ring_combinat::codec::IndexEntry;
        let entry = IndexEntry {
            key: key(
                StructureKind::from_code(kind_code).unwrap(),
                universe,
                n,
                seed,
            ),
            digest,
            count,
        };
        prop_assert_eq!(IndexEntry::parse(&entry.format()).expect("round trip"), entry);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Corruption never yields a blob payload: any truncation and any
    /// single flipped byte is refused.
    #[test]
    fn corrupted_blobs_never_decode(
        universe in prop_oneof![Just(63u64), Just(64), Just(65), Just(700)],
        seed in any::<u64>(),
        (cut_seed, flip_seed, flip_bit) in (any::<u64>(), any::<u64>(), 0u32..8),
    ) {
        use ring_combinat::codec::{decode_blob_stream, encode_blob};
        let sets = vec![random_set(universe, seed), random_set(universe, !seed)];
        let (bytes, digest) = encode_blob(universe, &sets);

        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(
            decode_blob_stream(&bytes[..cut], cut as u64, universe, sets.len(), digest).is_err(),
            "truncation at {} decoded", cut
        );

        let mut flipped = bytes.clone();
        let at = (flip_seed % bytes.len() as u64) as usize;
        flipped[at] ^= 1 << flip_bit;
        prop_assert!(
            decode_blob_stream(&flipped[..], flipped.len() as u64, universe, sets.len(), digest)
                .is_err(),
            "byte {} flipped by {:02x} still decoded", at, 1u8 << flip_bit
        );
    }
}
