//! Property tests of the chunked `IdSet` kernels: every multi-word loop
//! (union/intersect/difference/complement, the fused popcounts and the
//! chunk-skipping iterator) must agree bit-exactly with the element-wise
//! oracles in `ring_combinat::reference` and preserve canonical form, at
//! universe sizes straddling both the 64-bit word boundary and the 4-word
//! (256-bit) chunk boundary.

use proptest::prelude::*;
use ring_combinat::reference::{
    complement_reference, difference_reference, intersection_count_reference,
    intersection_reference, len_reference, union_reference,
};
use ring_combinat::shared::splitmix64;
use ring_combinat::IdSet;

/// One universe below, at and above the word boundary (63/64/65), the chunk
/// boundary (255/256/257) and the next chunk edge (511/513).
fn universes() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(63u64),
        Just(64),
        Just(65),
        Just(255),
        Just(256),
        Just(257),
        Just(511),
        Just(513),
    ]
}

/// A deterministic pseudo-random set over `universe`, with a density knob:
/// `mask_rounds` extra AND-folds sparsify the set so the iterator's
/// zero-chunk skip path actually fires.
fn random_set(universe: u64, seed: u64, mask_rounds: u32) -> IdSet {
    let mut s = IdSet::empty(universe);
    let mut state = seed;
    s.fill_with_words(|_| {
        (0..=mask_rounds).fold(!0u64, |acc, _| {
            state = splitmix64(state);
            acc & state
        })
    });
    s
}

/// Canonical form, checked from the outside: exact word count, no bit for
/// the nonexistent identifier 0, nothing above the universe.
fn assert_canonical(s: &IdSet) {
    assert_eq!(s.words().len() as u64, s.universe() / 64 + 1);
    assert_eq!(s.words()[0] & 1, 0, "bit for nonexistent id 0 is set");
    let r = s.universe() % 64;
    if r != 63 {
        assert_eq!(
            s.words()[s.words().len() - 1] & !((1u64 << (r + 1)) - 1),
            0,
            "bits beyond the universe are set"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The chunked in-place set algebra matches the element-wise oracles
    /// bit-for-bit and keeps every result canonical.
    #[test]
    fn set_algebra_matches_element_wise_references(
        (universe, seed, density) in (universes(), any::<u64>(), 0u32..3),
    ) {
        let a = random_set(universe, seed, density);
        let b = random_set(universe, !seed, density);

        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(&u, &union_reference(&a, &b));
        assert_canonical(&u);

        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(&i, &intersection_reference(&a, &b));
        assert_canonical(&i);

        let mut d = a.clone();
        d.difference_with(&b);
        prop_assert_eq!(&d, &difference_reference(&a, &b));
        assert_canonical(&d);

        let mut c = a.clone();
        c.complement_in_place();
        prop_assert_eq!(&c, &complement_reference(&a));
        assert_canonical(&c);
    }

    /// The fused popcount kernels (`len`, `is_empty`, `intersection_count`
    /// and the pair variant) match element-wise counting.
    #[test]
    fn popcount_kernels_match_element_wise_counting(
        (universe, seed, density) in (universes(), any::<u64>(), 0u32..3),
    ) {
        let a = random_set(universe, seed, density);
        let b = random_set(universe, seed.rotate_left(17), density);
        let c = random_set(universe, seed.rotate_left(41), density);

        prop_assert_eq!(a.len(), len_reference(&a));
        prop_assert_eq!(a.is_empty(), len_reference(&a) == 0);
        prop_assert_eq!(IdSet::empty(universe).is_empty(), true);
        prop_assert_eq!(IdSet::full(universe).len() as u64, universe);

        prop_assert_eq!(a.intersection_count(&b), intersection_count_reference(&a, &b));
        let (n1, n2) = a.intersection_count_pair(&b, &c);
        prop_assert_eq!(n1, intersection_count_reference(&a, &b));
        prop_assert_eq!(n2, intersection_count_reference(&a, &c));
    }

    /// The chunk-skipping iterator yields exactly the members reported by
    /// element-wise `contains`, in increasing order — including on sets
    /// sparse enough to exercise the zero-chunk leap, and on the
    /// empty/full extremes.
    #[test]
    fn iterator_matches_element_wise_scan(
        (universe, seed, density) in (universes(), any::<u64>(), 0u32..6),
    ) {
        let a = random_set(universe, seed, density);
        let scanned: Vec<u64> = (1..=universe).filter(|&id| a.contains(id)).collect();
        prop_assert_eq!(a.iter().collect::<Vec<_>>(), scanned);

        prop_assert_eq!(IdSet::empty(universe).iter().count(), 0);
        prop_assert_eq!(
            IdSet::full(universe).iter().collect::<Vec<_>>(),
            (1..=universe).collect::<Vec<_>>()
        );

        // A single member in the last word forces the skip path across
        // every interior chunk.
        let lone = IdSet::from_ids(universe, [universe]);
        prop_assert_eq!(lone.iter().collect::<Vec<_>>(), vec![universe]);
    }
}
