//! End-to-end properties of the sweep engine: parallel determinism,
//! cache/fresh structure equivalence, and disk-store/fresh equivalence.

use ring_experiments::tables::{table1_case, table2_case};
use ring_experiments::SweepSpec;
use ring_harness::scenario::{all_items, table1_items, table2_items};
use ring_harness::{available_jobs, JsonlSink, StructureCache, StructureStore, SweepEngine};
use ring_protocols::structures::{fresh_structures, SharedStructures};
use std::sync::Arc;

fn test_spec() -> SweepSpec {
    SweepSpec {
        sizes: vec![9, 8, 12],
        universe_factors: vec![4, 16],
        repetitions: 2,
        seed: 77,
    }
}

/// Runs the full sweep-item list at the given job count and returns the
/// streamed JSONL bytes.
fn jsonl_at_jobs(jobs: usize) -> Vec<u8> {
    let spec = test_spec();
    let mut items = table1_items(&spec);
    items.extend(table2_items(&spec));
    let engine = SweepEngine::new(jobs);
    let sink = JsonlSink::new(Vec::new());
    let records = engine.run(&items, Some(&sink));
    assert_eq!(records.len(), items.len());
    sink.finish()
}

/// The tentpole determinism property: the same `SweepSpec` produces
/// byte-identical JSONL output at `--jobs 1`, `--jobs 2` and all cores,
/// regardless of scheduling order.
#[test]
fn jsonl_output_is_byte_identical_across_job_counts() {
    let serial = jsonl_at_jobs(1);
    assert!(!serial.is_empty());
    for jobs in [2, available_jobs()] {
        let parallel = jsonl_at_jobs(jobs);
        assert_eq!(
            serial, parallel,
            "JSONL output diverged between 1 and {jobs} jobs"
        );
    }
}

/// Cached structures must produce identical protocol outcomes to freshly
/// constructed ones: the cache serves bit-identical structures, so every
/// measurement (round counts, verification verdicts, predictions) agrees.
#[test]
fn cached_and_fresh_structures_produce_identical_outcomes() {
    let spec = test_spec();
    let fresh = fresh_structures();
    let cache = Arc::new(StructureCache::new());
    let cached: SharedStructures = cache.clone();
    for case in spec.cases() {
        assert_eq!(
            table1_case(&case, &fresh),
            table1_case(&case, &cached),
            "table1 diverged on case {case:?}"
        );
        assert_eq!(
            table2_case(&case, &fresh),
            table2_case(&case, &cached),
            "table2 diverged on case {case:?}"
        );
    }
    // The sweep contains even sizes, so the distinguisher machinery ran and
    // the second and later requests were served from the memo.
    let stats = cache.stats();
    assert!(stats.misses > 0, "no structures were ever requested");
    assert!(stats.hits > 0, "repeated cases never hit the cache");
}

/// The `all` scenario runs every experiment family through the engine and
/// reports a warm cache.
#[test]
fn all_items_run_verified_with_cache_hits() {
    let spec = SweepSpec {
        sizes: vec![9, 8],
        universe_factors: vec![4],
        repetitions: 1,
        seed: 3,
    };
    let scaling = ring_experiments::distinguisher_scaling::ScalingSpec {
        universe: 1 << 10,
        sizes: vec![8],
        seed: 41,
    };
    let items = all_items(&spec, &scaling);
    let engine = SweepEngine::new(2);
    let records = engine.run::<Vec<u8>>(&items, None);
    assert_eq!(records.len(), items.len());
    assert!(records.iter().all(|r| r.verified));
    let families: std::collections::BTreeSet<&str> =
        records.iter().map(|r| r.experiment.as_str()).collect();
    assert_eq!(
        families.into_iter().collect::<Vec<_>>(),
        vec!["distinguisher_scaling", "fig1", "fig2", "lower_bounds", "table1", "table2"]
    );
    assert!(engine.cache_stats().hit_rate() > 0.0);
}

/// The two-tier store must be invisible in the output: the full item list
/// run against a disk-backed store (twice — the constructing pass and the
/// loading pass) streams exactly the bytes of a storeless run.
#[test]
fn disk_store_runs_are_byte_identical_to_storeless_runs() {
    let spec = test_spec();
    let scaling = ring_experiments::distinguisher_scaling::ScalingSpec {
        universe: 1 << 10,
        sizes: vec![8, 16],
        seed: 41,
    };
    let items = all_items(&spec, &scaling);
    let reference = {
        let engine = SweepEngine::new(2);
        let sink = JsonlSink::new(Vec::new());
        engine.run(&items, Some(&sink));
        sink.finish()
    };
    let dir = std::env::temp_dir().join(format!(
        "ring-harness-store-e2e-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    for pass in 0..2 {
        let store = Arc::new(StructureStore::at(&dir).unwrap());
        let engine = SweepEngine::with_store(2, store);
        let sink = JsonlSink::new(Vec::new());
        engine.run(&items, Some(&sink));
        assert_eq!(
            sink.finish(),
            reference,
            "store-backed pass {pass} diverged from the storeless bytes"
        );
        let stats = engine.store_stats();
        if pass == 0 {
            assert!(stats.misses > 0, "the first pass must construct");
            assert_eq!(stats.hits, 0);
        } else {
            assert_eq!(stats.misses, 0, "a warm store must serve everything");
            assert!(stats.hits > 0);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `WorkItem::structure_keys` must cover every structure a run actually
/// requests: a store prebuilt from the enumerated keys serves a full sweep
/// with zero store misses. (An under-approximation would construct at
/// sweep time; an over-approximation merely publishes unused files.)
#[test]
fn enumerated_structure_keys_cover_a_full_sweep() {
    let spec = test_spec();
    let scaling = ring_experiments::distinguisher_scaling::ScalingSpec {
        universe: 1 << 10,
        sizes: vec![8, 16],
        seed: 41,
    };
    let items = all_items(&spec, &scaling);
    let dir = std::env::temp_dir().join(format!(
        "ring-harness-prebuild-e2e-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();

    // Prebuild exactly what the items enumerate.
    {
        use ring_combinat::StructureKind;
        use ring_protocols::structures::StructureProvider;
        let store = StructureStore::at(&dir).unwrap();
        for item in &items {
            for (key, hint) in item.structure_keys() {
                match key.kind {
                    StructureKind::StrongDistinguisher => {
                        let strong = store.strong_distinguisher(key.universe, key.seed);
                        for i in 0..strong.prefix_size_for(hint.max(2)) {
                            strong.set(i);
                        }
                    }
                    StructureKind::Distinguisher => {
                        store.distinguisher(key.universe, key.n as usize, key.seed);
                    }
                    StructureKind::SelectiveFamily => {
                        store.selective_family(key.universe, key.n as usize, key.seed);
                    }
                }
            }
        }
        store.flush().unwrap();
    }

    let engine = SweepEngine::with_store(2, Arc::new(StructureStore::at(&dir).unwrap()));
    engine.run::<Vec<u8>>(&items, None);
    let stats = engine.store_stats();
    assert_eq!(
        stats.misses, 0,
        "a prebuilt store must already hold every requested structure"
    );
    assert!(stats.hits > 0, "the sweep never consulted the store");
    std::fs::remove_dir_all(&dir).ok();
}
