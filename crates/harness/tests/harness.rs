//! End-to-end properties of the sweep engine: parallel determinism,
//! cache/fresh structure equivalence, and disk-store/fresh equivalence.

use ring_experiments::tables::{table1_case, table2_case};
use ring_experiments::SweepSpec;
use ring_harness::scenario::{all_items, table1_items, table2_items};
use ring_harness::{available_jobs, JsonlSink, StructureCache, StructureStore, SweepEngine};
use ring_protocols::structures::{fresh_structures, SharedStructures, StructureProvider};
use std::sync::Arc;

fn test_spec() -> SweepSpec {
    SweepSpec {
        sizes: vec![9, 8, 12],
        universe_factors: vec![4, 16],
        repetitions: 2,
        seed: 77,
        structure_seeds: None,
        faults: None,
    }
}

/// Runs the full sweep-item list at the given job count and returns the
/// streamed JSONL bytes.
fn jsonl_at_jobs(jobs: usize) -> Vec<u8> {
    let spec = test_spec();
    let mut items = table1_items(&spec);
    items.extend(table2_items(&spec));
    let engine = SweepEngine::new(jobs);
    let sink = JsonlSink::new(Vec::new());
    let records = engine.run(&items, Some(&sink));
    assert_eq!(records.len(), items.len());
    sink.finish()
}

/// The tentpole determinism property: the same `SweepSpec` produces
/// byte-identical JSONL output at `--jobs 1`, `--jobs 2` and all cores,
/// regardless of scheduling order.
#[test]
fn jsonl_output_is_byte_identical_across_job_counts() {
    let serial = jsonl_at_jobs(1);
    assert!(!serial.is_empty());
    for jobs in [2, available_jobs()] {
        let parallel = jsonl_at_jobs(jobs);
        assert_eq!(
            serial, parallel,
            "JSONL output diverged between 1 and {jobs} jobs"
        );
    }
}

/// Case batching is a pure scheduling change: with and without the
/// structure store, on clean and faulty specs, at one and two jobs, the
/// batched sweep streams exactly the unbatched bytes and records.
#[test]
fn batched_sweeps_are_byte_identical_to_unbatched_sweeps() {
    let clean = test_spec();
    let faulty = SweepSpec {
        faults: Some(ring_experiments::FaultAxes {
            drops: vec![0, 100],
            crashes: 1,
            churn: 0,
            adversarial: true,
        }),
        ..test_spec()
    };
    let dir = std::env::temp_dir().join(format!("ring-harness-batch-e2e-{}", std::process::id()));
    for (label, spec) in [("clean", &clean), ("faulty", &faulty)] {
        let mut items = table1_items(spec);
        items.extend(table2_items(spec));
        let reference = {
            let engine = SweepEngine::new(1);
            let sink = JsonlSink::new(Vec::new());
            let records = engine.run(&items, Some(&sink));
            assert_eq!(records.len(), items.len());
            sink.finish()
        };
        for jobs in [1, 2] {
            for batch in [2, 16] {
                // Storeless…
                let engine = SweepEngine::new(jobs).with_batch_limit(batch);
                let sink = JsonlSink::new(Vec::new());
                engine.run(&items, Some(&sink));
                assert_eq!(
                    sink.finish(),
                    reference,
                    "{label}: jobs {jobs}, batch {batch} diverged"
                );
                // …and against a disk-backed store (cold on the first
                // combination, warm afterwards — both must be invisible).
                std::fs::remove_dir_all(&dir).ok();
                let store = Arc::new(StructureStore::at(&dir).unwrap());
                let engine = SweepEngine::with_store(jobs, store).with_batch_limit(batch);
                let sink = JsonlSink::new(Vec::new());
                engine.run(&items, Some(&sink));
                assert_eq!(
                    sink.finish(),
                    reference,
                    "{label}: store-backed jobs {jobs}, batch {batch} diverged"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Cached structures must produce identical protocol outcomes to freshly
/// constructed ones: the cache serves bit-identical structures, so every
/// measurement (round counts, verification verdicts, predictions) agrees.
#[test]
fn cached_and_fresh_structures_produce_identical_outcomes() {
    let spec = test_spec();
    let fresh = fresh_structures();
    let cache = Arc::new(StructureCache::new());
    let cached: SharedStructures = cache.clone();
    for case in spec.cases() {
        assert_eq!(
            table1_case(&case, &fresh),
            table1_case(&case, &cached),
            "table1 diverged on case {case:?}"
        );
        assert_eq!(
            table2_case(&case, &fresh),
            table2_case(&case, &cached),
            "table2 diverged on case {case:?}"
        );
    }
    // The sweep contains even sizes, so the distinguisher machinery ran and
    // the second and later requests were served from the memo.
    let stats = cache.stats();
    assert!(stats.misses > 0, "no structures were ever requested");
    assert!(stats.hits > 0, "repeated cases never hit the cache");
}

/// The `all` scenario runs every experiment family through the engine and
/// reports a warm cache.
#[test]
fn all_items_run_verified_with_cache_hits() {
    let spec = SweepSpec {
        sizes: vec![9, 8],
        universe_factors: vec![4],
        repetitions: 1,
        seed: 3,
        structure_seeds: None,
        faults: None,
    };
    let scaling = ring_experiments::distinguisher_scaling::ScalingSpec {
        universe: 1 << 10,
        sizes: vec![8],
        seed: 41,
    };
    let items = all_items(&spec, &scaling);
    let engine = SweepEngine::new(2);
    let records = engine.run::<Vec<u8>>(&items, None);
    assert_eq!(records.len(), items.len());
    assert!(records.iter().all(|r| r.verified));
    let families: std::collections::BTreeSet<&str> =
        records.iter().map(|r| r.experiment.as_str()).collect();
    assert_eq!(
        families.into_iter().collect::<Vec<_>>(),
        vec![
            "distinguisher_scaling",
            "fig1",
            "fig2",
            "lower_bounds",
            "table1",
            "table2"
        ]
    );
    assert!(engine.cache_stats().hit_rate() > 0.0);
}

/// The two-tier store must be invisible in the output: the full item list
/// run against a disk-backed store (twice — the constructing pass and the
/// loading pass) streams exactly the bytes of a storeless run.
#[test]
fn disk_store_runs_are_byte_identical_to_storeless_runs() {
    let spec = test_spec();
    let scaling = ring_experiments::distinguisher_scaling::ScalingSpec {
        universe: 1 << 10,
        sizes: vec![8, 16],
        seed: 41,
    };
    let items = all_items(&spec, &scaling);
    let reference = {
        let engine = SweepEngine::new(2);
        let sink = JsonlSink::new(Vec::new());
        engine.run(&items, Some(&sink));
        sink.finish()
    };
    let dir = std::env::temp_dir().join(format!("ring-harness-store-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    for pass in 0..2 {
        let store = Arc::new(StructureStore::at(&dir).unwrap());
        let engine = SweepEngine::with_store(2, store);
        let sink = JsonlSink::new(Vec::new());
        engine.run(&items, Some(&sink));
        assert_eq!(
            sink.finish(),
            reference,
            "store-backed pass {pass} diverged from the storeless bytes"
        );
        let stats = engine.store_stats();
        if pass == 0 {
            assert!(stats.misses > 0, "the first pass must construct");
            assert_eq!(stats.hits, 0);
        } else {
            assert_eq!(stats.misses, 0, "a warm store must serve everything");
            assert!(stats.hits > 0);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `WorkItem::structure_keys` must cover every structure a run actually
/// requests: a store prebuilt from the enumerated keys serves a full sweep
/// with zero store misses. (An under-approximation would construct at
/// sweep time; an over-approximation merely publishes unused files.)
#[test]
fn enumerated_structure_keys_cover_a_full_sweep() {
    let spec = test_spec();
    let scaling = ring_experiments::distinguisher_scaling::ScalingSpec {
        universe: 1 << 10,
        sizes: vec![8, 16],
        seed: 41,
    };
    let items = all_items(&spec, &scaling);
    let dir =
        std::env::temp_dir().join(format!("ring-harness-prebuild-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Prebuild exactly what the items enumerate.
    {
        use ring_combinat::StructureKind;
        use ring_protocols::structures::StructureProvider;
        let store = StructureStore::at(&dir).unwrap();
        for item in &items {
            for (key, hint) in item.structure_keys() {
                match key.kind {
                    StructureKind::StrongDistinguisher => {
                        let strong = store.strong_distinguisher(key.universe, key.seed);
                        for i in 0..strong.prefix_size_for(hint.max(2)) {
                            strong.set(i);
                        }
                    }
                    StructureKind::Distinguisher => {
                        store.distinguisher(key.universe, key.n as usize, key.seed);
                    }
                    StructureKind::SelectiveFamily => {
                        store.selective_family(key.universe, key.n as usize, key.seed);
                    }
                }
            }
        }
        store.flush().unwrap();
    }

    let engine = SweepEngine::with_store(2, Arc::new(StructureStore::at(&dir).unwrap()));
    engine.run::<Vec<u8>>(&items, None);
    let stats = engine.store_stats();
    assert_eq!(
        stats.misses, 0,
        "a prebuilt store must already hold every requested structure"
    );
    assert!(stats.hits > 0, "the sweep never consulted the store");
    std::fs::remove_dir_all(&dir).ok();
}

/// The seed-diverse storage acceptance: prebuilding a K-seed sweep into a
/// content-addressed v2 store publishes O(structures) blobs — one shared
/// strong blob per universe — and strictly fewer bytes than the K
/// independent per-seed files the v1 layout would hold; a sweep against
/// the prebuilt store then reports zero store misses.
#[test]
fn seed_diverse_store_beats_one_file_per_seed_and_serves_zero_miss() {
    use ring_combinat::StructureKind;
    use ring_protocols::structures::StructureProvider;
    let spec = SweepSpec {
        sizes: vec![8, 12],
        universe_factors: vec![16],
        repetitions: 4,
        seed: 77,
        structure_seeds: Some(4),
        faults: None,
    };
    let mut items = table1_items(&spec);
    items.extend(table2_items(&spec));
    // One entry per distinct key, hint maximised (what prebuild does).
    let mut keys: Vec<(ring_combinat::StructureKey, usize)> = Vec::new();
    for item in &items {
        for (key, hint) in item.structure_keys() {
            match keys.iter_mut().find(|(k, _)| *k == key) {
                Some((_, existing)) => *existing = (*existing).max(hint),
                None => keys.push((key, hint)),
            }
        }
    }
    let strong_keys: Vec<_> = keys
        .iter()
        .filter(|(k, _)| k.kind == StructureKind::StrongDistinguisher)
        .collect();
    assert_eq!(
        strong_keys.len(),
        8,
        "2 even universes x 4 schedule seeds: {strong_keys:?}"
    );

    let base = std::env::temp_dir().join(format!("ring-harness-seeded-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let v1_dir = base.join("v1");
    let v2_dir = base.join("v2");
    std::fs::create_dir_all(&v1_dir).unwrap();

    // The v1 layout: one full file per (strong, universe, seed) key.
    for (key, hint) in &keys {
        ring_harness::store::write_v1_file(&v1_dir, key, *hint).unwrap();
    }
    // The v2 layout: the same prebuild demand against a content-addressed
    // store (every seed view materialised to its full prefix, then flushed).
    {
        let store = StructureStore::at(&v2_dir).unwrap();
        for (key, hint) in &keys {
            match key.kind {
                StructureKind::StrongDistinguisher => {
                    let strong = store.strong_distinguisher(key.universe, key.seed);
                    for i in 0..strong.prefix_size_for((*hint).max(2)) {
                        strong.set(i);
                    }
                }
                StructureKind::Distinguisher => {
                    store.distinguisher(key.universe, key.n as usize, key.seed);
                }
                StructureKind::SelectiveFamily => {
                    store.selective_family(key.universe, key.n as usize, key.seed);
                }
            }
        }
        store.flush().unwrap();
    }

    let dir_bytes = |dir: &std::path::Path| -> u64 {
        fn walk(dir: &std::path::Path, total: &mut u64) {
            for entry in std::fs::read_dir(dir).into_iter().flatten().flatten() {
                let path = entry.path();
                if path.is_dir() {
                    walk(&path, total);
                } else {
                    *total += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        let mut total = 0;
        walk(dir, &mut total);
        total
    };
    let v1_bytes = dir_bytes(&v1_dir);
    let v2_bytes = dir_bytes(&v2_dir);
    assert!(
        v2_bytes < v1_bytes,
        "content addressing must beat one-file-per-seed: v2 {v2_bytes} vs v1 {v1_bytes} bytes"
    );
    // O(structures) blobs, not O(K) copies: one strong blob per universe.
    let stats = ring_harness::store::store_dir_stats(&v2_dir).unwrap();
    assert_eq!(stats.strong.blobs, 2);
    assert!(stats.strong.dedup_ratio >= 1.0);

    // A second pass over the prebuilt store: zero store misses, identical
    // bytes to the storeless run.
    let reference = {
        let engine = SweepEngine::new(2);
        let sink = JsonlSink::new(Vec::new());
        engine.run(&items, Some(&sink));
        sink.finish()
    };
    let engine = SweepEngine::with_store(2, Arc::new(StructureStore::at(&v2_dir).unwrap()));
    let sink = JsonlSink::new(Vec::new());
    engine.run(&items, Some(&sink));
    assert_eq!(sink.finish(), reference);
    let store_stats = engine.store_stats();
    assert_eq!(
        store_stats.misses, 0,
        "a prebuilt v2 store must serve everything"
    );
    assert!(store_stats.hits > 0);
    std::fs::remove_dir_all(&base).ok();
}

/// The gc-vs-claim race: while publishers are busy claiming keys and
/// publishing blob + index-entry pairs, concurrent `gc` passes must never
/// delete a blob a live index entry references — afterwards the store
/// verifies clean and every published key loads.
#[test]
fn gc_never_deletes_a_blob_a_live_index_entry_references() {
    let dir = std::env::temp_dir().join(format!("ring-harness-gcrace-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = Arc::new(StructureStore::at(&dir).unwrap());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let publishers: Vec<_> = (0..3u64)
        .map(|t| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for seed in 0..12u64 {
                    store.distinguisher(128, 4, 1000 * t + seed);
                }
            })
        })
        .collect();
    let collector = {
        let dir = dir.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut passes = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                ring_harness::store::gc_store_dir(&dir).unwrap();
                passes += 1;
            }
            passes
        })
    };
    for p in publishers {
        p.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let passes = collector.join().unwrap();
    assert!(passes > 0, "gc never ran concurrently with the publishers");

    // Every index entry still resolves to a present, valid blob...
    for report in ring_harness::store::scan_store_dir(&dir).unwrap() {
        assert!(report.error.is_none(), "{report:?}");
    }
    // ...and a fresh store loads every key with zero misses.
    let second = StructureStore::at(&dir).unwrap();
    for t in 0..3u64 {
        for seed in 0..12u64 {
            second.distinguisher(128, 4, 1000 * t + seed);
        }
    }
    assert_eq!(second.stats().misses, 0);

    // Unreferenced blobs *are* reclaimed once they are old enough: plant a
    // valid orphan blob and backdate it past the claim grace.
    let orphan_sets = vec![ring_combinat::IdSet::from_ids(64, [3, 9])];
    let (bytes, digest) = ring_combinat::codec::encode_blob(64, &orphan_sets);
    let orphan = StructureStore::blob_path(&dir, digest);
    std::fs::write(&orphan, &bytes).unwrap();
    let fresh_gc = ring_harness::store::gc_store_dir(&dir).unwrap();
    assert_eq!(
        fresh_gc.unreferenced, 0,
        "a fresh orphan is inside the grace window"
    );
    assert!(orphan.exists());
    assert!(std::process::Command::new("touch")
        .args(["-m", "-d", "2 hours ago"])
        .arg(&orphan)
        .status()
        .map(|s| s.success())
        .unwrap_or(false));
    let aged_gc = ring_harness::store::gc_store_dir(&dir).unwrap();
    assert_eq!(aged_gc.unreferenced, 1, "an aged orphan must be reclaimed");
    assert!(!orphan.exists());
    std::fs::remove_dir_all(&dir).ok();
}
