//! Observability must be output-inert: `--trace` and the metrics layer
//! may never change a byte of scientific output, at any `--jobs` or
//! `--shards` value — telemetry goes to per-process sidecar files and
//! stderr, never to stdout or the shard files. These tests pin that
//! invariant through the real `ringlab` binary, exercise the `trace
//! summarize` report, and regression-test the fleet statistics under an
//! injected worker death (a retried shard reports only its final
//! successful attempt — earlier attempts never double-count).

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// The sweep every test runs: small enough for CI, mixed parities, more
/// cases than the largest shard count under test.
const SPEC_FLAGS: &[&str] = &[
    "--sizes",
    "9,8,12",
    "--universe-factors",
    "4",
    "--reps",
    "1",
    "--seed",
    "77",
];

fn ringlab() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ringlab"));
    // Isolate from crash-injection hooks an outer environment might set.
    cmd.env_remove("RING_DISTRIB_FAIL_AFTER")
        .env_remove("RING_DISTRIB_FAIL_ONCE");
    cmd
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ringlab-obs-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the untraced single-process reference sweep into `dir`, returning
/// the JSONL bytes.
fn reference_bytes(dir: &Path) -> Vec<u8> {
    let out = dir.join("single.jsonl");
    let status = ringlab()
        .args(["sweep", "--jobs", "2", "--jsonl"])
        .arg(&out)
        .args(SPEC_FLAGS)
        .stdout(Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success(), "single-process sweep failed");
    let bytes = std::fs::read(&out).unwrap();
    assert!(!bytes.is_empty());
    bytes
}

/// The `trace-*.jsonl` sidecar files directly under `dir`.
fn sidecars(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("trace-") && n.ends_with(".jsonl"))
        })
        .collect()
}

/// The acceptance invariant: sweeps with `--trace` on are byte-identical
/// to the untraced reference across `--jobs {1,2}` and `--shards {1,3}`,
/// sidecars appear exactly when tracing is on, and the spans they carry
/// are well-formed begin/end JSONL.
#[test]
fn tracing_is_output_inert_across_jobs_and_shards() {
    let dir = temp_dir("inert");
    let reference = reference_bytes(&dir);

    // Thread-parallel single-process runs, traced into an explicit dir.
    for jobs in [1usize, 2] {
        let out = dir.join(format!("traced-jobs{jobs}.jsonl"));
        let trace_dir = dir.join(format!("trace-jobs{jobs}"));
        let status = ringlab()
            .args(["sweep", "--jobs", &jobs.to_string(), "--trace", "--jsonl"])
            .arg(&out)
            .arg("--trace-dir")
            .arg(&trace_dir)
            .args(SPEC_FLAGS)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run ringlab");
        assert!(status.success(), "traced sweep failed at --jobs {jobs}");
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference,
            "tracing changed the output bytes at --jobs {jobs}"
        );
        let files = sidecars(&trace_dir);
        assert_eq!(files.len(), 1, "one sidecar per process at --jobs {jobs}");
        let text = std::fs::read_to_string(&files[0]).unwrap();
        assert!(
            text.lines().any(|l| l.contains("\"span\":\"case\"")),
            "sidecar must carry case spans:\n{text}"
        );
    }

    // Orchestrated multi-process runs: `--trace` alone routes every
    // worker's sidecar into the run directory, next to the shard files —
    // which must stay byte-identical to the untraced run.
    for shards in [1usize, 3] {
        let out = dir.join(format!("traced-shards{shards}.jsonl"));
        let run_dir = dir.join(format!("run-{shards}"));
        let status = ringlab()
            .args([
                "sweep",
                "--shards",
                &shards.to_string(),
                "--trace",
                "--jsonl",
            ])
            .arg(&out)
            .arg("--run-dir")
            .arg(&run_dir)
            .args(SPEC_FLAGS)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run ringlab");
        assert!(status.success(), "traced sweep failed at --shards {shards}");
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference,
            "tracing changed the merged bytes at --shards {shards}"
        );
        // The orchestrator plus every worker process wrote a sidecar.
        assert!(
            sidecars(&run_dir).len() > shards,
            "expected orchestrator + {shards} worker sidecar(s) in {}",
            run_dir.display()
        );
        let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
        assert!(manifest.is_complete());
    }

    // Without `--trace`, no sidecar may appear anywhere.
    let out = dir.join("untraced-shards.jsonl");
    let run_dir = dir.join("run-untraced");
    let status = ringlab()
        .args(["sweep", "--shards", "2", "--jsonl"])
        .arg(&out)
        .arg("--run-dir")
        .arg(&run_dir)
        .args(SPEC_FLAGS)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success());
    assert_eq!(std::fs::read(&out).unwrap(), reference);
    assert!(
        sidecars(&run_dir).is_empty(),
        "untraced runs must not write sidecars"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--jsonl -` with tracing on still streams pure JSONL to stdout: the
/// trace banner and spans stay on stderr and in the sidecar.
#[test]
fn stdout_jsonl_stays_pure_under_tracing() {
    let dir = temp_dir("stdout");
    let reference = reference_bytes(&dir);
    let trace_dir = dir.join("trace");
    let output = ringlab()
        .args(["sweep", "--jobs", "2", "--trace", "--jsonl", "-"])
        .arg("--trace-dir")
        .arg(&trace_dir)
        .args(SPEC_FLAGS)
        .output()
        .expect("run ringlab");
    assert!(output.status.success());
    assert_eq!(
        output.stdout, reference,
        "stdout must carry exactly the JSONL stream, traced or not"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("tracing spans to"),
        "the sidecar path must be announced on stderr:\n{stderr}"
    );
    assert_eq!(sidecars(&trace_dir).len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// `ringlab trace summarize` renders a per-span time-budget table for a
/// traced run directory, and refuses an untraced one with a hint.
#[test]
fn trace_summarize_renders_a_time_budget_table() {
    let dir = temp_dir("summarize");
    let out = dir.join("traced.jsonl");
    let run_dir = dir.join("run");
    let status = ringlab()
        .args(["sweep", "--shards", "2", "--trace", "--jsonl"])
        .arg(&out)
        .arg("--run-dir")
        .arg(&run_dir)
        .args(SPEC_FLAGS)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success());

    // A traced prebuild contributes `construct_structure` spans (the
    // sweep's strong structures grow lazily and have no construct site).
    let store = dir.join("store");
    let status = ringlab()
        .args(["structures", "prebuild", "scaling", "--quick"])
        .arg("--structure-store")
        .arg(&store)
        .arg("--trace-dir")
        .arg(&run_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run ringlab structures prebuild");
    assert!(status.success(), "traced prebuild failed");

    let output = ringlab()
        .args(["trace", "summarize"])
        .arg(&run_dir)
        .output()
        .expect("run ringlab trace summarize");
    assert!(output.status.success(), "trace summarize failed");
    let table = String::from_utf8_lossy(&output.stdout);
    assert!(
        table.starts_with("| span | count | total | share | p50 | p90 | p99 |"),
        "missing table header:\n{table}"
    );
    for span in ["case", "shard_attempt", "construct_structure"] {
        assert!(
            table.contains(&format!("| {span} |")),
            "missing `{span}` row:\n{table}"
        );
    }
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("trace file(s)"),
        "summary line missing:\n{stderr}"
    );

    // An untraced directory is a usage error, not an empty table.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let output = ringlab()
        .args(["trace", "summarize"])
        .arg(&empty)
        .output()
        .expect("run ringlab trace summarize");
    assert!(!output.status.success());
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("run with --trace first"),
        "the failure must tell the user how to produce traces"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The statistics regression: a worker death masked by the per-shard
/// retry must not change the fleet's `--stats` aggregates — only the
/// final successful attempt of each shard counts, so the stats line of an
/// injected run is byte-identical to the clean run's. (A warm shared
/// store and `--jobs 1` make every counter deterministic.)
#[test]
fn retry_after_an_injected_worker_death_reports_identical_fleet_stats() {
    let dir = temp_dir("retry-stats");
    let store = dir.join("store");

    // Warm the store so both fleets below load every structure (zero
    // misses) instead of racing to construct them.
    let warm = dir.join("warm.jsonl");
    let status = ringlab()
        .args(["sweep", "--jobs", "1", "--structure-store"])
        .arg(&store)
        .args(["--jsonl"])
        .arg(&warm)
        .args(SPEC_FLAGS)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success(), "store warmup failed");
    let reference = std::fs::read(&warm).unwrap();

    let stats_line = |tag: &str, env: Option<(&str, &Path)>| -> String {
        let out = dir.join(format!("{tag}.jsonl"));
        let run_dir = dir.join(format!("run-{tag}"));
        let mut cmd = ringlab();
        cmd.args(["sweep", "--shards", "2", "--jobs", "1", "--retries", "1"])
            .args(["--stats", "--jsonl"])
            .arg(&out)
            .arg("--run-dir")
            .arg(&run_dir)
            .arg("--structure-store")
            .arg(&store)
            .args(SPEC_FLAGS)
            .stdout(Stdio::null());
        if let Some((key, value)) = env {
            cmd.env(key, value);
        }
        let output = cmd.output().expect("run ringlab");
        assert!(output.status.success(), "sharded run `{tag}` failed");
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference,
            "run `{tag}` diverged from the reference bytes"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        stderr
            .lines()
            .find(|l| l.starts_with("ringlab: stats "))
            .unwrap_or_else(|| panic!("no stats line in `{tag}` stderr:\n{stderr}"))
            .to_string()
    };

    let clean = stats_line("clean", None);
    let marker = dir.join("crash-marker");
    let injected = stats_line("injected", Some(("RING_DISTRIB_FAIL_ONCE", &marker)));
    assert!(marker.exists(), "the injected worker never crashed");

    // The injected run really did retry a shard…
    let manifest = ring_distrib::Manifest::load(&dir.join("run-injected")).unwrap();
    let attempts: u32 = manifest.shards.iter().map(|s| s.attempts).sum();
    assert_eq!(attempts, 3, "one shard must have been launched twice");

    // …yet reports exactly the clean run's aggregates: the killed
    // attempt's counters never leak into the fleet stats.
    assert_eq!(
        injected, clean,
        "a masked worker death must not change the fleet stats"
    );
    // And the warm store served everything — misses would betray a
    // double-counted (or re-run) construction pathway.
    assert!(
        clean.contains("\"store\":{\"hits\":"),
        "stats must carry the store block: {clean}"
    );
    assert!(
        clean.contains("\"misses\":0}"),
        "a warm store must report zero misses: {clean}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
