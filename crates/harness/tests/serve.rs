//! End-to-end properties of the sweep-as-a-service layer, exercised
//! through the real `ringlab` binary: a daemon dispatching shards to
//! registered TCP workers must produce byte-identical JSONL to the
//! single-process run at every worker and shard count, a worker killed
//! mid-sweep must be masked by the per-shard retry, and a daemon run
//! directory that failed outright must complete under plain `ringlab
//! resume`.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// The sweep every test runs: small enough for CI, mixed parities, more
/// cases than the largest shard count under test (6 cases).
const SPEC_FLAGS: &[&str] = &[
    "--sizes",
    "9,8,12",
    "--universe-factors",
    "4",
    "--reps",
    "1",
    "--seed",
    "77",
];

/// The same grid as an HTTP submission body.
const SPEC_BODY: &str =
    r#"{"subcommand":"sweep","sizes":[9,8,12],"universe_factors":[4],"reps":1,"seed":77}"#;

fn ringlab() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ringlab"));
    // Isolate from crash-injection hooks an outer environment might set.
    cmd.env_remove("RING_DISTRIB_FAIL_AFTER")
        .env_remove("RING_DISTRIB_FAIL_ONCE");
    cmd
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ringlab-serve-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the single-process reference sweep into `dir`, returning the JSONL
/// bytes.
fn reference_bytes(dir: &Path) -> Vec<u8> {
    let out = dir.join("single.jsonl");
    let status = ringlab()
        .args(["sweep", "--jobs", "1", "--jsonl"])
        .arg(&out)
        .args(SPEC_FLAGS)
        .stdout(Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success(), "single-process sweep failed");
    let bytes = std::fs::read(&out).unwrap();
    assert!(!bytes.is_empty());
    bytes
}

/// A daemon child plus the address it published; killed on drop so a
/// failing test never leaks the process.
struct DaemonGuard {
    child: Child,
    addr: String,
    data_dir: PathBuf,
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

/// Starts `ringlab serve` on an ephemeral port and waits for the endpoint
/// file to publish the bound address.
fn start_daemon(dir: &Path, extra: &[&str]) -> DaemonGuard {
    let data_dir = dir.join("daemon");
    let child = ringlab()
        .args(["serve", "--listen", "127.0.0.1:0", "--data-dir"])
        .arg(&data_dir)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ringlab serve");
    // The guard owns the child from here on, so even the panic path below
    // reaps the daemon process.
    let mut daemon = DaemonGuard {
        child,
        addr: String::new(),
        data_dir,
    };
    let endpoint = daemon.data_dir.join("endpoint");
    for _ in 0..100 {
        if let Ok(addr) = std::fs::read_to_string(&endpoint) {
            daemon.addr = addr.trim().to_string();
            return daemon;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("daemon never published {}", endpoint.display());
}

/// Spawns a `ringlab worker --connect` process against the daemon.
fn spawn_worker(addr: &str, env: &[(&str, &Path)]) -> Child {
    let mut cmd = ringlab();
    cmd.args(["worker", "--connect", addr])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (key, value) in env {
        cmd.env(key, value);
    }
    cmd.spawn().expect("spawn ringlab worker")
}

/// One raw HTTP/1.1 request over a fresh connection (the daemon speaks
/// one-request-per-connection), returning status code and body text.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to daemon");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8(response).expect("UTF-8 response");
    let (head, body) = text.split_once("\r\n\r\n").expect("complete response");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    (status, body.to_string())
}

/// Polls the run's status endpoint until it reports `wanted`.
fn wait_for_status(addr: &str, run: u64, wanted: &str) {
    let needle = format!("\"status\": \"{wanted}\"");
    for _ in 0..1200 {
        let (status, body) = http(addr, "GET", &format!("/v1/runs/{run}"), "");
        assert_eq!(status, 200, "status endpoint failed: {body}");
        // Match only the run's own status: the embedded manifest carries
        // per-shard `"status"` fields of its own.
        let head = body.split("\"manifest\"").next().unwrap_or(&body);
        if head.contains(&needle) {
            return;
        }
        assert!(
            !(wanted != "failed" && head.contains("\"status\": \"failed\"")),
            "run {run} failed while waiting for `{wanted}`: {body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("run {run} never reached status `{wanted}`");
}

/// Polls `/v1/workers` until `count` workers are registered and idle.
fn wait_for_workers(addr: &str, count: usize) {
    for _ in 0..200 {
        let (_, body) = http(addr, "GET", "/v1/workers", "");
        if body.matches("\"state\": \"idle\"").count() >= count {
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("never saw {count} idle workers");
}

/// Submits a run and returns its id (parsed from the `"run": N` field).
fn submit(addr: &str, body: &str) -> u64 {
    let (status, response) = http(addr, "POST", "/v1/runs", body);
    assert_eq!(status, 202, "submission rejected: {response}");
    response
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"run\": "))
        .and_then(|rest| rest.trim_end_matches(',').parse().ok())
        .unwrap_or_else(|| panic!("no run id in response: {response}"))
}

/// Dismisses the daemon and reaps it plus the given workers, asserting
/// everyone exits cleanly.
fn shutdown(mut daemon: DaemonGuard, workers: Vec<Child>) {
    let (status, _) = http(&daemon.addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    for mut worker in workers {
        let status = worker.wait().expect("reap worker");
        assert!(status.success(), "worker exited uncleanly: {status}");
    }
    let status = daemon.child.wait().expect("reap daemon");
    assert!(status.success(), "daemon exited uncleanly: {status}");
}

/// The acceptance property: a daemon-dispatched sweep is byte-identical to
/// the single-process run at 1, 2 and 3 registered workers — streamed
/// results and merged file alike — across shard counts including `M = 7`
/// (empty shards in the plan) and a store-backed run.
#[test]
fn daemon_sweeps_are_byte_identical_at_every_worker_count() {
    let dir = temp_dir("matrix");
    let reference = reference_bytes(&dir);
    let daemon = start_daemon(&dir, &[]);
    let mut workers = Vec::new();

    // Worker counts 1, 2, 3; the submission with no shard count uses one
    // shard per idle worker, the later ones pin explicit shard plans.
    for (round, (body, expected_shards)) in [
        (SPEC_BODY.to_string(), 1),
        (
            format!("{},\"shards\":2}}", SPEC_BODY.trim_end_matches('}')),
            2,
        ),
        (
            format!(
                "{},\"shards\":7,\"structure_store\":true}}",
                SPEC_BODY.trim_end_matches('}')
            ),
            7,
        ),
    ]
    .into_iter()
    .enumerate()
    {
        workers.push(spawn_worker(&daemon.addr, &[]));
        wait_for_workers(&daemon.addr, round + 1);
        let run = submit(&daemon.addr, &body);
        wait_for_status(&daemon.addr, run, "complete");

        let run_dir = daemon.data_dir.join(format!("runs/run-{run:04}"));
        let merged = std::fs::read(run_dir.join("merged.jsonl")).unwrap();
        assert_eq!(
            merged,
            reference,
            "daemon output diverged with {} workers",
            round + 1
        );
        let (status, streamed) = http(&daemon.addr, "GET", &format!("/v1/runs/{run}/results"), "");
        assert_eq!(status, 200);
        assert_eq!(
            streamed.as_bytes(),
            reference,
            "streamed results diverged with {} workers",
            round + 1
        );
        let mut manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.shards.len(), expected_shards);
        assert!(manifest.revalidate_completed(&run_dir).unwrap().is_empty());
    }
    shutdown(daemon, workers);
    std::fs::remove_dir_all(&dir).ok();
}

/// A faulty daemon-dispatched sweep (fault axes in the submitted spec) is
/// byte-identical to the single-process faulty run.
#[test]
fn daemon_dispatched_faulty_sweeps_match_single_process_bytes() {
    let dir = temp_dir("faulty");
    let out = dir.join("faulty-single.jsonl");
    let status = ringlab()
        .args(["faults", "--jobs", "1", "--jsonl"])
        .arg(&out)
        .args(SPEC_FLAGS)
        .args(["--fault-drops", "0,100", "--fault-crashes", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success(), "single-process faulty sweep failed");
    let reference = std::fs::read(&out).unwrap();

    let daemon = start_daemon(&dir, &[]);
    let workers = vec![
        spawn_worker(&daemon.addr, &[]),
        spawn_worker(&daemon.addr, &[]),
    ];
    wait_for_workers(&daemon.addr, 2);
    let body = r#"{"subcommand":"faults","sizes":[9,8,12],"universe_factors":[4],"reps":1,
        "seed":77,"fault_drops":[0,100],"fault_crashes":1,"shards":3}"#;
    let run = submit(&daemon.addr, body);
    wait_for_status(&daemon.addr, run, "complete");
    let merged = std::fs::read(
        daemon
            .data_dir
            .join(format!("runs/run-{run:04}/merged.jsonl")),
    )
    .unwrap();
    assert_eq!(merged, reference, "faulty daemon output diverged");
    shutdown(daemon, workers);
    std::fs::remove_dir_all(&dir).ok();
}

/// Killing a worker mid-sweep (the crash injection exits the whole worker
/// process after one record, mid-protocol-stream) is a retryable shard
/// failure: the surviving worker picks up the retry and the run completes
/// with identical bytes.
#[test]
fn a_worker_killed_mid_sweep_is_masked_by_retry() {
    let dir = temp_dir("kill");
    let reference = reference_bytes(&dir);
    let daemon = start_daemon(&dir, &[]);
    let marker = dir.join("crash-marker");
    // One worker dies on its first job; the clean one carries the run.
    let doomed = spawn_worker(
        &daemon.addr,
        &[("RING_DISTRIB_FAIL_ONCE", marker.as_path())],
    );
    let clean = spawn_worker(&daemon.addr, &[]);
    wait_for_workers(&daemon.addr, 2);

    let body = format!("{},\"shards\":2}}", SPEC_BODY.trim_end_matches('}'));
    let run = submit(&daemon.addr, &body);
    wait_for_status(&daemon.addr, run, "complete");
    assert!(marker.exists(), "the doomed worker never crashed");

    let run_dir = daemon.data_dir.join(format!("runs/run-{run:04}"));
    assert_eq!(
        std::fs::read(run_dir.join("merged.jsonl")).unwrap(),
        reference
    );
    let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
    let attempts: u32 = manifest.shards.iter().map(|s| s.attempts).sum();
    assert_eq!(attempts, 3, "one shard must have been attempted twice");

    // The doomed worker is already dead (exit 3, not a clean dismissal).
    let mut doomed = doomed;
    let status = doomed.wait().expect("reap doomed worker");
    assert!(!status.success());
    shutdown(daemon, vec![clean]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Total worker loss fails the run — and the daemon's run directory is a
/// standard ring-distrib/v1 run directory, so plain `ringlab resume`
/// completes it to the exact reference bytes at the recorded output path.
#[test]
fn failed_daemon_runs_resume_to_identical_bytes() {
    let dir = temp_dir("resume");
    let reference = reference_bytes(&dir);
    // No retries and a short lease timeout: once the only worker dies, the
    // remaining shard's lease times out and the run fails fast.
    let daemon = start_daemon(&dir, &["--retries", "0", "--lease-timeout", "2"]);
    let mut doomed = spawn_worker(&daemon.addr, &[("RING_DISTRIB_FAIL_AFTER", Path::new("1"))]);
    wait_for_workers(&daemon.addr, 1);

    let body = format!("{},\"shards\":2}}", SPEC_BODY.trim_end_matches('}'));
    let run = submit(&daemon.addr, &body);
    wait_for_status(&daemon.addr, run, "failed");
    doomed.wait().expect("reap doomed worker");

    let run_dir = daemon.data_dir.join(format!("runs/run-{run:04}"));
    let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
    assert!(!manifest.is_complete());
    let output = PathBuf::from(&manifest.output);
    assert!(!output.exists(), "a failed run must not publish output");

    // Resume with healthy child-process workers: same bytes, same file.
    let status = ringlab()
        .arg("resume")
        .arg(&run_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run ringlab resume");
    assert!(status.success(), "resume of the daemon run dir failed");
    assert_eq!(std::fs::read(&output).unwrap(), reference);

    shutdown(daemon, Vec::new());
    std::fs::remove_dir_all(&dir).ok();
}

/// Observability through the service path: workers tracing to sidecar
/// files still produce byte-identical merged and streamed results, the
/// daemon exposes a Prometheus `/v1/metrics` endpoint with pool gauges
/// and run counters, and `/v1/runs/<id>/metrics` serves the run's
/// aggregated ring-obs/v1 snapshot with its per-shard attempt ledger.
#[test]
fn traced_workers_stay_byte_identical_and_the_daemon_serves_metrics() {
    let dir = temp_dir("metrics");
    let reference = reference_bytes(&dir);
    let daemon = start_daemon(&dir, &[]);
    let trace_dir = dir.join("traces");
    let workers: Vec<Child> = (0..2)
        .map(|_| {
            let mut cmd = ringlab();
            cmd.args(["worker", "--connect", &daemon.addr, "--trace-dir"])
                .arg(&trace_dir)
                .stdout(Stdio::null())
                .stderr(Stdio::null());
            cmd.spawn().expect("spawn traced ringlab worker")
        })
        .collect();
    wait_for_workers(&daemon.addr, 2);

    let body = format!("{},\"shards\":2}}", SPEC_BODY.trim_end_matches('}'));
    let run = submit(&daemon.addr, &body);
    wait_for_status(&daemon.addr, run, "complete");

    // Tracing never touches the protocol stream or the shard files.
    let run_dir = daemon.data_dir.join(format!("runs/run-{run:04}"));
    assert_eq!(
        std::fs::read(run_dir.join("merged.jsonl")).unwrap(),
        reference,
        "traced workers changed the merged bytes"
    );
    let (status, streamed) = http(&daemon.addr, "GET", &format!("/v1/runs/{run}/results"), "");
    assert_eq!(status, 200);
    assert_eq!(
        streamed.as_bytes(),
        reference,
        "traced workers changed the streamed bytes"
    );
    // Each worker process wrote its own span sidecar.
    let sidecars = std::fs::read_dir(&trace_dir)
        .expect("trace dir")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("trace-") && name.ends_with(".jsonl")
        })
        .count();
    assert_eq!(sidecars, 2, "one sidecar per worker process");

    // The daemon-wide scrape: Prometheus text with pool gauges, run
    // counters and the lease-wait histogram.
    let (status, metrics) = http(&daemon.addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    for needle in [
        "# TYPE ring_serve_workers_idle gauge",
        "# TYPE ring_serve_workers_registered gauge",
        "ring_serve_runs_submitted 1",
        "# TYPE ring_serve_lease_wait_ns histogram",
        "ring_serve_lease_wait_ns_count",
    ] {
        assert!(metrics.contains(needle), "missing `{needle}`:\n{metrics}");
    }

    // The per-run drill-down: the aggregated worker snapshot plus the
    // shard attempt ledger.
    let (status, body) = http(&daemon.addr, "GET", &format!("/v1/runs/{run}/metrics"), "");
    assert_eq!(status, 200);
    for needle in ["ring-obs/v1", "\"shards\"", "\"attempts\"", "cache_hits"] {
        assert!(body.contains(needle), "missing `{needle}`:\n{body}");
    }

    shutdown(daemon, workers);
    std::fs::remove_dir_all(&dir).ok();
}

/// The service rejects what it cannot run — bad JSON, unknown
/// subcommands, zero-case specs — with a 400 and a reason, and serves its
/// health and worker inventory endpoints.
#[test]
fn daemon_rejects_bad_submissions_and_reports_health() {
    let dir = temp_dir("reject");
    let daemon = start_daemon(&dir, &[]);

    let (status, body) = http(&daemon.addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("ring-serve/v1"), "healthz: {body}");

    let (status, _) = http(&daemon.addr, "POST", "/v1/runs", "not json");
    assert_eq!(status, 400);
    let (status, body) = http(&daemon.addr, "POST", "/v1/runs", r#"{"subcommand":"nope"}"#);
    assert_eq!(status, 400);
    assert!(body.contains("error"), "rejection needs a reason: {body}");
    let (status, _) = http(
        &daemon.addr,
        "POST",
        "/v1/runs",
        r#"{"subcommand":"sweep","shards":0}"#,
    );
    assert_eq!(status, 400);
    let (status, _) = http(&daemon.addr, "GET", "/v1/runs/99", "");
    assert_eq!(status, 404);

    let (status, body) = http(&daemon.addr, "GET", "/v1/workers", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"registered\": 0"), "workers: {body}");

    shutdown(daemon, Vec::new());
    std::fs::remove_dir_all(&dir).ok();
}
