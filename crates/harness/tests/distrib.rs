//! End-to-end properties of the distributed layer, exercised through the
//! real `ringlab` binary (`CARGO_BIN_EXE_ringlab`): sharded multi-process
//! sweeps must be byte-identical to single-process runs at any shard
//! count, crash-resume must converge to the same bytes, and per-shard
//! retry must mask one-off worker deaths.

use std::path::{Path, PathBuf};
use std::process::Command;

/// The sweep every test runs: small enough for CI, mixed parities, more
/// cases than the largest shard count under test.
const SPEC_FLAGS: &[&str] = &[
    "--sizes",
    "9,8,12",
    "--universe-factors",
    "4",
    "--reps",
    "1",
    "--seed",
    "77",
];

fn ringlab() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ringlab"));
    // Isolate from crash-injection hooks an outer environment might set.
    cmd.env_remove("RING_DISTRIB_FAIL_AFTER")
        .env_remove("RING_DISTRIB_FAIL_ONCE");
    cmd
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ringlab-distrib-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the single-process reference sweep (`--jobs 2`) into `dir`,
/// returning the JSONL bytes.
fn reference_bytes(dir: &Path) -> Vec<u8> {
    let out = dir.join("single.jsonl");
    let status = ringlab()
        .args(["sweep", "--jobs", "2", "--jsonl"])
        .arg(&out)
        .args(SPEC_FLAGS)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success(), "single-process sweep failed");
    let bytes = std::fs::read(&out).unwrap();
    assert!(!bytes.is_empty());
    bytes
}

/// The acceptance property: for every shard count, orchestrated
/// multi-process output is byte-identical to the single-process run —
/// including `M = 7`, where the plan contains empty shards (6 cases).
#[test]
fn sharded_sweeps_are_byte_identical_for_every_shard_count() {
    let dir = temp_dir("shards");
    let reference = reference_bytes(&dir);
    for shards in [1usize, 2, 3, 7] {
        let out = dir.join(format!("sharded-{shards}.jsonl"));
        let run_dir = dir.join(format!("run-{shards}"));
        let status = ringlab()
            .args(["sweep", "--shards", &shards.to_string(), "--jsonl"])
            .arg(&out)
            .arg("--run-dir")
            .arg(&run_dir)
            .args(SPEC_FLAGS)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("run ringlab");
        assert!(status.success(), "sharded sweep failed at M = {shards}");
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference,
            "sharded output diverged from the single-process run at M = {shards}"
        );
        // The run directory holds a complete manifest whose shard files
        // still verify.
        let mut manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.total_cases, 6, "3 sizes × table1+table2");
        assert!(manifest.revalidate_completed(&run_dir).unwrap().is_empty());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Hand-partitioned `--shard i/M` runs on (conceptually) separate machines
/// merge into the same bytes via the standalone `merge` subcommand.
#[test]
fn manual_shard_slices_merge_to_the_reference_bytes() {
    let dir = temp_dir("slices");
    let reference = reference_bytes(&dir);
    let mut slices = Vec::new();
    for shard in 0..3 {
        let out = dir.join(format!("slice-{shard}.jsonl"));
        let status = ringlab()
            .args(["sweep", "--shard", &format!("{shard}/3"), "--jsonl"])
            .arg(&out)
            .args(SPEC_FLAGS)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("run ringlab");
        assert!(status.success(), "slice {shard}/3 failed");
        slices.push(out);
    }
    let merged = dir.join("merged.jsonl");
    let status = ringlab()
        .arg("merge")
        .args(&slices)
        .arg("--jsonl")
        .arg(&merged)
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab merge");
    assert!(status.success(), "merge failed");
    assert_eq!(std::fs::read(&merged).unwrap(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// Killing a worker mid-shard (the injected crash dies after one record,
/// without a done event) leaves a resumable directory: `resume` re-runs
/// only the broken shards and converges to the reference bytes.
#[test]
fn resume_after_a_mid_shard_crash_reaches_identical_bytes() {
    let dir = temp_dir("crash-resume");
    let reference = reference_bytes(&dir);
    let run_dir = dir.join("run");
    let out = dir.join("sharded.jsonl");

    // Every worker dies mid-shard; with the injection inherited by all
    // attempts, the orchestration must report failure.
    let status = ringlab()
        .args(["sweep", "--shards", "3", "--retries", "0", "--jsonl"])
        .arg(&out)
        .arg("--run-dir")
        .arg(&run_dir)
        .args(SPEC_FLAGS)
        .env("RING_DISTRIB_FAIL_AFTER", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(
        !status.success(),
        "orchestration must fail when every worker dies"
    );
    let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
    assert!(!manifest.is_complete());
    assert!(
        !out.exists(),
        "no merged output may appear for a failed run"
    );

    // A healthy resume completes only the incomplete shards and merges.
    let resumed = dir.join("resumed.jsonl");
    let status = ringlab()
        .arg("resume")
        .arg(&run_dir)
        .arg("--jsonl")
        .arg(&resumed)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab resume");
    assert!(status.success(), "resume failed");
    assert_eq!(std::fs::read(&resumed).unwrap(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncating a completed shard file (a crash after the manifest said
/// `complete`, a partial copy, a bad disk) is caught by checksum
/// revalidation: `resume` re-runs exactly that shard.
#[test]
fn resume_revalidates_checksums_and_repairs_truncated_shards() {
    let dir = temp_dir("truncate-resume");
    let reference = reference_bytes(&dir);
    let run_dir = dir.join("run");
    let out = dir.join("sharded.jsonl");
    let status = ringlab()
        .args(["sweep", "--shards", "3", "--jsonl"])
        .arg(&out)
        .arg("--run-dir")
        .arg(&run_dir)
        .args(SPEC_FLAGS)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success());

    // Drop the last line of shard 1.
    let shard1 = run_dir.join(ring_distrib::shard_file_name(1));
    let text = std::fs::read_to_string(&shard1).unwrap();
    let truncated: String = text
        .lines()
        .take(text.lines().count() - 1)
        .flat_map(|l| [l, "\n"])
        .collect();
    std::fs::write(&shard1, truncated).unwrap();

    let resumed = dir.join("resumed.jsonl");
    let status = ringlab()
        .arg("resume")
        .arg(&run_dir)
        .arg("--jsonl")
        .arg(&resumed)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab resume");
    assert!(status.success(), "resume failed");
    assert_eq!(std::fs::read(&resumed).unwrap(), reference);

    // Untouched shards kept their single attempt; shard 1 was re-run.
    let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
    assert_eq!(manifest.shards[0].attempts, 1);
    assert_eq!(manifest.shards[1].attempts, 2);
    assert_eq!(manifest.shards[2].attempts, 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// A worker that dies exactly once (marker-file injection) is masked by
/// the per-shard retry: the run still succeeds with identical bytes, and
/// the manifest records the extra attempt.
#[test]
fn per_shard_retry_masks_a_single_worker_death() {
    let dir = temp_dir("retry");
    let reference = reference_bytes(&dir);
    let run_dir = dir.join("run");
    let out = dir.join("sharded.jsonl");
    let marker = dir.join("crash-marker");
    let status = ringlab()
        .args(["sweep", "--shards", "2", "--retries", "1", "--jsonl"])
        .arg(&out)
        .arg("--run-dir")
        .arg(&run_dir)
        .args(SPEC_FLAGS)
        .env("RING_DISTRIB_FAIL_ONCE", &marker)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(
        status.success(),
        "retry should have masked the single death"
    );
    assert_eq!(std::fs::read(&out).unwrap(), reference);
    let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
    let attempts: u32 = manifest.shards.iter().map(|s| s.attempts).sum();
    assert_eq!(attempts, 3, "one shard must have been launched twice");
    std::fs::remove_dir_all(&dir).ok();
}

/// The structure store must never change a byte of output: for every
/// shard count, an orchestrated sweep drawing all combinatorial structures
/// from one shared store directory is byte-identical to the storeless
/// single-process run — and once the first run has populated the store,
/// every later fleet reports zero store misses (each structure was
/// constructed once per *fleet*, then only ever loaded).
#[test]
fn structure_store_keeps_sharded_sweeps_byte_identical_and_hits_after_warmup() {
    let dir = temp_dir("store-shards");
    let reference = reference_bytes(&dir);
    let store = dir.join("shared-structures");
    for (pass, shards) in [1usize, 2, 3, 7].into_iter().enumerate() {
        let out = dir.join(format!("store-sharded-{shards}.jsonl"));
        let run_dir = dir.join(format!("store-run-{shards}"));
        let status = ringlab()
            .args(["sweep", "--shards", &shards.to_string(), "--jsonl"])
            .arg(&out)
            .arg("--run-dir")
            .arg(&run_dir)
            .arg("--structure-store")
            .arg(&store)
            .args(SPEC_FLAGS)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("run ringlab");
        assert!(
            status.success(),
            "store-backed sweep failed at M = {shards}"
        );
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference,
            "store-backed output diverged from the storeless run at M = {shards}"
        );
        let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.structure_store, store.to_string_lossy());
        let stats = manifest.aggregate_stats();
        if pass == 0 {
            assert!(
                stats.store_misses > 0,
                "the first fleet must construct and publish"
            );
        } else {
            assert_eq!(
                stats.store_misses, 0,
                "a warm store must serve every structure at M = {shards}"
            );
            assert!(stats.store_hits > 0, "the warm fleet never loaded");
        }
    }
    // Every published file still proves itself (checksum + canonical form).
    for report in ring_harness::store::scan_store_dir(&store).unwrap() {
        assert!(
            report.error.is_none(),
            "{}: {:?}",
            report.path.display(),
            report.error
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash-resume with the store enabled: a fleet that dies mid-shard leaves
/// a resumable run directory whose store is revalidated like its shard
/// files — a corrupted structure file is dropped and rebuilt, and the
/// resumed run still converges to the reference bytes with a healthy
/// store.
#[test]
fn resume_revalidates_the_structure_store_and_reaches_identical_bytes() {
    let dir = temp_dir("store-crash-resume");
    let reference = reference_bytes(&dir);
    let run_dir = dir.join("run");
    let out = dir.join("sharded.jsonl");
    let status = ringlab()
        .args(["sweep", "--shards", "3", "--retries", "0", "--jsonl"])
        .arg(&out)
        .arg("--run-dir")
        .arg(&run_dir)
        .arg("--structure-store")
        .args(SPEC_FLAGS)
        .env("RING_DISTRIB_FAIL_AFTER", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(
        !status.success(),
        "orchestration must fail when every worker dies"
    );

    // The bare flag defaults the store into the run directory, recorded in
    // the manifest for resume.
    let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
    let store = std::path::PathBuf::from(&manifest.structure_store);
    assert_eq!(store, run_dir.join("structures"));

    // Corrupt whatever the dead fleet managed to publish (workers flush
    // structures as runs end, so the store may hold files even though every
    // shard failed); plant garbage regardless so revalidation has work.
    let mut corrupted = 0;
    for report in ring_harness::store::scan_store_dir(&store).unwrap() {
        let mut bytes = std::fs::read(&report.path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x20;
        std::fs::write(&report.path, bytes).unwrap();
        corrupted += 1;
    }
    std::fs::create_dir_all(&store).unwrap();
    std::fs::write(store.join("dist-u64-n4-s0000000000000000.struct"), b"junk").unwrap();
    corrupted += 1;
    assert!(corrupted >= 1);

    let resumed = dir.join("resumed.jsonl");
    let output = ringlab()
        .arg("resume")
        .arg(&run_dir)
        .arg("--jsonl")
        .arg(&resumed)
        .stdout(std::process::Stdio::null())
        .output()
        .expect("run ringlab resume");
    assert!(output.status.success(), "resume failed");
    assert_eq!(std::fs::read(&resumed).unwrap(), reference);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("failed revalidation"),
        "resume must report the dropped structure files; stderr:\n{stderr}"
    );
    // The healed store verifies clean end to end.
    for report in ring_harness::store::scan_store_dir(&store).unwrap() {
        assert!(report.error.is_none(), "{}", report.path.display());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Spec flags of the seed-diverse variant: the same grid under the
/// per-case structure-seed schedule (K = 3 schedule seeds).
const SEEDED_SPEC_FLAGS: &[&str] = &[
    "--sizes",
    "9,8,12",
    "--universe-factors",
    "4",
    "--reps",
    "1",
    "--seed",
    "77",
    "--structure-seed-mode",
    "per-case",
    "--structure-seeds",
    "3",
];

/// Runs the single-process seed-diverse reference sweep into `dir`.
fn seeded_reference_bytes(dir: &Path) -> Vec<u8> {
    let out = dir.join("seeded-single.jsonl");
    let status = ringlab()
        .args(["sweep", "--jobs", "2", "--jsonl"])
        .arg(&out)
        .args(SEEDED_SPEC_FLAGS)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success(), "single-process seeded sweep failed");
    let bytes = std::fs::read(&out).unwrap();
    assert!(!bytes.is_empty());
    bytes
}

/// The seed-diverse acceptance property: under the per-case structure-seed
/// schedule, orchestrated multi-process output (drawing every structure
/// from one shared v2 store) is byte-identical to the single-process run
/// at every shard count — and the schedule genuinely changes the measured
/// bytes relative to the fixed schedule.
#[test]
fn seed_diverse_sharded_sweeps_are_byte_identical_for_every_shard_count() {
    let dir = temp_dir("seeded-shards");
    let fixed_reference = reference_bytes(&dir);
    let reference = seeded_reference_bytes(&dir);
    assert_ne!(
        reference, fixed_reference,
        "the per-case schedule must actually diversify the structure seeds"
    );
    let store = dir.join("seeded-structures");
    for shards in [1usize, 2, 3, 7] {
        let out = dir.join(format!("seeded-sharded-{shards}.jsonl"));
        let run_dir = dir.join(format!("seeded-run-{shards}"));
        let status = ringlab()
            .args(["sweep", "--shards", &shards.to_string(), "--jsonl"])
            .arg(&out)
            .arg("--run-dir")
            .arg(&run_dir)
            .arg("--structure-store")
            .arg(&store)
            .args(SEEDED_SPEC_FLAGS)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("run ringlab");
        assert!(
            status.success(),
            "seeded sharded sweep failed at M = {shards}"
        );
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference,
            "seed-diverse sharded output diverged at M = {shards}"
        );
        let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.spec.structure_seeds, Some(3));
        if shards > 1 {
            // Every fleet after the first runs against a warm store: the K
            // schedule seeds all resolve through already-published blobs.
            assert_eq!(
                manifest.aggregate_stats().store_misses,
                0,
                "a warm v2 store must serve every schedule seed at M = {shards}"
            );
        }
    }
    // K-seed diversity must not multiply the store: the strong kind shares
    // one universal blob per universe (2 even universes in the grid).
    let stats = ring_harness::store::store_dir_stats(&store).unwrap();
    assert_eq!(stats.strong.blobs, 2, "one strong blob per universe");
    for report in ring_harness::store::scan_store_dir(&store).unwrap() {
        assert!(report.error.is_none(), "{:?}", report);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash-resume under the per-case seed schedule: a fleet that dies
/// mid-shard resumes — schedule and all recorded in the manifest — to the
/// exact single-process bytes.
#[test]
fn seed_diverse_crash_resume_reaches_identical_bytes() {
    let dir = temp_dir("seeded-crash-resume");
    let reference = seeded_reference_bytes(&dir);
    let run_dir = dir.join("run");
    let out = dir.join("sharded.jsonl");
    let status = ringlab()
        .args(["sweep", "--shards", "3", "--retries", "0", "--jsonl"])
        .arg(&out)
        .arg("--run-dir")
        .arg(&run_dir)
        .arg("--structure-store")
        .args(SEEDED_SPEC_FLAGS)
        .env("RING_DISTRIB_FAIL_AFTER", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(
        !status.success(),
        "orchestration must fail when every worker dies"
    );
    let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
    assert_eq!(manifest.spec.structure_seeds, Some(3));

    let resumed = dir.join("resumed.jsonl");
    let status = ringlab()
        .arg("resume")
        .arg(&run_dir)
        .arg("--jsonl")
        .arg(&resumed)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab resume");
    assert!(status.success(), "seeded resume failed");
    assert_eq!(std::fs::read(&resumed).unwrap(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// Spec flags of the faulty variant: the same grid under the
/// fault-injection layer (a clean and a lossy drop rate, one crash).
const FAULTY_SPEC_FLAGS: &[&str] = &[
    "--sizes",
    "9,8,12",
    "--universe-factors",
    "4",
    "--reps",
    "1",
    "--seed",
    "77",
    "--fault-drops",
    "0,100",
    "--fault-crashes",
    "1",
];

/// Runs the single-process faulty reference sweep (`--jobs 1`) into `dir`.
fn faulty_reference_bytes(dir: &Path) -> Vec<u8> {
    let out = dir.join("faulty-single.jsonl");
    let status = ringlab()
        .args(["faults", "--jobs", "1", "--jsonl"])
        .arg(&out)
        .args(FAULTY_SPEC_FLAGS)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success(), "single-process faulty sweep failed");
    let bytes = std::fs::read(&out).unwrap();
    assert!(!bytes.is_empty());
    bytes
}

/// The robustness acceptance property: every fault sequence is a pure
/// function of the case seed and the fault parameters, so faulty sweeps are
/// byte-identical across `--jobs`, across every shard count, and with or
/// without a shared structure store.
#[test]
fn faulty_sharded_sweeps_are_byte_identical_for_every_shard_count() {
    let dir = temp_dir("faulty-shards");
    let reference = faulty_reference_bytes(&dir);

    // Thread-parallel single-process runs agree with the serial one.
    let jobs2 = dir.join("faulty-jobs2.jsonl");
    let status = ringlab()
        .args(["faults", "--jobs", "2", "--jsonl"])
        .arg(&jobs2)
        .args(FAULTY_SPEC_FLAGS)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(status.success(), "faulty --jobs 2 run failed");
    assert_eq!(
        std::fs::read(&jobs2).unwrap(),
        reference,
        "faulty output must not depend on --jobs"
    );

    let store = dir.join("faulty-structures");
    for shards in [1usize, 2, 3, 7] {
        let out = dir.join(format!("faulty-sharded-{shards}.jsonl"));
        let run_dir = dir.join(format!("faulty-run-{shards}"));
        let mut cmd = ringlab();
        cmd.args(["faults", "--shards", &shards.to_string(), "--jsonl"])
            .arg(&out)
            .arg("--run-dir")
            .arg(&run_dir);
        // Alternate store-backed and storeless fleets: neither may change
        // a byte.
        if shards % 2 == 0 {
            cmd.arg("--structure-store").arg(&store);
        }
        let status = cmd
            .args(FAULTY_SPEC_FLAGS)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("run ringlab");
        assert!(
            status.success(),
            "faulty sharded sweep failed at M = {shards}"
        );
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference,
            "faulty sharded output diverged at M = {shards}"
        );
        let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.total_cases, 6, "2 drop rates × 3 sizes");
        assert_eq!(manifest.spec.fault_drops, Some(vec![0, 100]));
        assert_eq!(manifest.spec.fault_crashes, Some(1));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash-resume mid-faulty-sweep: a fleet that dies after one record
/// leaves a resumable run directory whose manifest carries the fault axes,
/// and `resume` converges to the reference bytes.
#[test]
fn faulty_crash_resume_reaches_identical_bytes() {
    let dir = temp_dir("faulty-crash-resume");
    let reference = faulty_reference_bytes(&dir);
    let run_dir = dir.join("run");
    let out = dir.join("sharded.jsonl");
    let status = ringlab()
        .args(["faults", "--shards", "3", "--retries", "0", "--jsonl"])
        .arg(&out)
        .arg("--run-dir")
        .arg(&run_dir)
        .args(FAULTY_SPEC_FLAGS)
        .env("RING_DISTRIB_FAIL_AFTER", "1")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab");
    assert!(
        !status.success(),
        "orchestration must fail when every worker dies"
    );
    let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
    assert!(!manifest.is_complete());
    assert_eq!(manifest.spec.fault_drops, Some(vec![0, 100]));

    let resumed = dir.join("resumed.jsonl");
    let status = ringlab()
        .arg("resume")
        .arg(&run_dir)
        .arg("--jsonl")
        .arg(&resumed)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run ringlab resume");
    assert!(status.success(), "faulty resume failed");
    assert_eq!(std::fs::read(&resumed).unwrap(), reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// The batching acceptance property: `--batch N` is a pure scheduling
/// change, so merged output stays byte-identical at jobs {1, 2} × shards
/// {1, 3}, with and without a shared structure store, for the clean, the
/// faulty and the seed-diverse spec alike. The orchestrator forwards the
/// limit to its workers, so the sharded runs exercise batching inside the
/// worker processes, not just in the parent.
#[test]
fn batched_sweeps_are_byte_identical_through_the_real_binary() {
    let dir = temp_dir("batch");
    let clean_reference = reference_bytes(&dir);
    let faulty_reference = faulty_reference_bytes(&dir);
    let seeded_reference = seeded_reference_bytes(&dir);
    let variants: [(&str, &str, &[&str], &[u8]); 3] = [
        ("clean", "sweep", SPEC_FLAGS, &clean_reference),
        ("faulty", "faults", FAULTY_SPEC_FLAGS, &faulty_reference),
        ("seeded", "sweep", SEEDED_SPEC_FLAGS, &seeded_reference),
    ];
    for (tag, subcommand, spec, reference) in variants {
        // Single-process batched runs across thread counts.
        for jobs in [1usize, 2] {
            let out = dir.join(format!("batch-{tag}-jobs{jobs}.jsonl"));
            let status = ringlab()
                .args([subcommand, "--jobs", &jobs.to_string()])
                .args(["--batch", "16", "--jsonl"])
                .arg(&out)
                .args(spec)
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .status()
                .expect("run ringlab");
            assert!(status.success(), "{tag} batched --jobs {jobs} run failed");
            assert_eq!(
                std::fs::read(&out).unwrap(),
                reference,
                "{tag} batched output diverged at --jobs {jobs}"
            );
        }
        // Orchestrated fleets: storeless at M = 1, store-backed at M = 3.
        for shards in [1usize, 3] {
            let out = dir.join(format!("batch-{tag}-shards{shards}.jsonl"));
            let run_dir = dir.join(format!("batch-{tag}-run-{shards}"));
            let mut cmd = ringlab();
            cmd.args([subcommand, "--shards", &shards.to_string()])
                .args(["--batch", "16", "--jsonl"])
                .arg(&out)
                .arg("--run-dir")
                .arg(&run_dir);
            if shards == 3 {
                cmd.arg("--structure-store")
                    .arg(dir.join(format!("batch-{tag}-structures")));
            }
            let status = cmd
                .args(spec)
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .status()
                .expect("run ringlab");
            assert!(
                status.success(),
                "{tag} batched sharded sweep failed at M = {shards}"
            );
            assert_eq!(
                std::fs::read(&out).unwrap(),
                reference,
                "{tag} batched sharded output diverged at M = {shards}"
            );
            let manifest = ring_distrib::Manifest::load(&run_dir).unwrap();
            assert!(manifest.is_complete());
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `--jsonl -` streams records to stdout with the tables routed to stderr,
/// so piped output is pure JSONL — for sharded and single-process runs
/// alike.
#[test]
fn stdout_jsonl_stays_pure_when_tables_render() {
    let dir = temp_dir("stdout");
    let reference = reference_bytes(&dir);
    for extra in [
        &["--jobs", "2"][..],
        &["--shards", "2", "--retries", "0"][..],
    ] {
        let run_dir = dir.join("run-stdout");
        std::fs::remove_dir_all(&run_dir).ok();
        let output = ringlab()
            .args(["sweep", "--jsonl", "-"])
            .args(extra)
            .arg("--run-dir")
            .arg(&run_dir)
            .args(SPEC_FLAGS)
            .output()
            .expect("run ringlab");
        assert!(output.status.success());
        assert_eq!(
            output.stdout, reference,
            "stdout must carry exactly the JSONL stream"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("# Table I"),
            "tables must be routed to stderr when JSONL owns stdout"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
