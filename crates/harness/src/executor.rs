//! The work-stealing parallel executor.
//!
//! [`run_work_stealing`] fans a slice of work items out over `jobs` worker
//! threads. Indices are striped round-robin into one deque per worker;
//! each worker pops its own queue from the front and, when empty, steals
//! from the back of the others, so a straggler case cannot leave the other
//! cores idle. Results are returned **in item order**, and each item's
//! result depends only on `(index, item)` — never on which thread ran it —
//! so the output of a sweep is bit-identical for every job count and every
//! scheduling interleaving. (Determinism of the overall harness also rests
//! on the structure cache serving bit-identical structures; see
//! `crate::cache`.)

use std::collections::VecDeque;
use std::sync::Mutex;

/// The number of worker threads to use when the caller does not specify
/// one: the machine's available parallelism.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Scheduling counters of one executor pass, for performance inspection
/// (`ringlab --stats`, the run manifest's per-shard entries).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct ExecutorStats {
    /// Items executed.
    pub executed: u64,
    /// Items a worker took from another worker's queue. High steal counts
    /// mean the round-robin striping mispredicted the load distribution.
    pub steals: u64,
}

/// Runs `worker(index, &items[index])` for every item across `jobs`
/// threads (clamped to the item count; `0` means [`available_jobs`]) and
/// returns the results in item order.
///
/// `worker` may have observable side effects (the engine streams results
/// from inside it); effects that must be ordered belong behind an ordered
/// sink, not the call order, which is scheduling-dependent for `jobs > 1`.
///
/// # Panics
///
/// Propagates panics from `worker` (the remaining workers finish their
/// current items first).
pub fn run_work_stealing<T, R, F>(items: &[T], jobs: usize, worker: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_work_stealing_with_stats(items, jobs, worker).0
}

/// [`run_work_stealing`] with scheduling counters for the pass.
pub fn run_work_stealing_with_stats<T, R, F>(
    items: &[T],
    jobs: usize,
    worker: F,
) -> (Vec<R>, ExecutorStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = if jobs == 0 { available_jobs() } else { jobs };
    let jobs = jobs.min(items.len()).max(1);
    if jobs <= 1 {
        let results = items
            .iter()
            .enumerate()
            .map(|(i, t)| worker(i, t))
            .collect();
        return (
            results,
            ExecutorStats {
                executed: items.len() as u64,
                steals: 0,
            },
        );
    }

    // Round-robin striping spreads systematically heavy regions (e.g. the
    // large-n tail of a sweep) over all workers up front; stealing handles
    // whatever imbalance remains.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| Mutex::new((w..items.len()).step_by(jobs).collect()))
        .collect();

    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut stats = ExecutorStats::default();
    std::thread::scope(|scope| {
        let queues = &queues;
        let worker = &worker;
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                scope.spawn(move || {
                    let worker_started = std::time::Instant::now();
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    let mut steals = 0u64;
                    let mut busy_ns = 0u64;
                    while let Some((index, stolen)) = next_index(queues, w) {
                        steals += u64::from(stolen);
                        let item_started = std::time::Instant::now();
                        produced.push((index, worker(index, &items[index])));
                        busy_ns = busy_ns.saturating_add(ring_obs::elapsed_ns(item_started));
                    }
                    // One sample per worker per pass: the busy/idle split
                    // shows how well the striping balanced the load, the
                    // steal count how hard the thieves had to work.
                    let obs = ring_obs::global();
                    obs.histogram("executor_worker_busy_ns").record(busy_ns);
                    obs.histogram("executor_worker_idle_ns")
                        .record(ring_obs::elapsed_ns(worker_started).saturating_sub(busy_ns));
                    obs.histogram("executor_worker_steals").record(steals);
                    (produced, steals)
                })
            })
            .collect();
        for handle in handles {
            let (produced, steals) = handle.join().expect("worker thread panicked");
            stats.steals += steals;
            for (index, result) in produced {
                results[index] = Some(result);
            }
        }
    });
    stats.executed = items.len() as u64;
    let results = results
        .into_iter()
        .map(|r| r.expect("every index is scheduled exactly once"))
        .collect();
    (results, stats)
}

/// Pops the next index for worker `w`: its own queue front first, then the
/// back of every other queue (classic work stealing: owners and thieves
/// take opposite ends to minimise contention on the same items). The flag
/// reports whether the index was stolen.
fn next_index(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<(usize, bool)> {
    if let Some(index) = queues[w].lock().expect("worker queue").pop_front() {
        return Some((index, false));
    }
    let jobs = queues.len();
    for offset in 1..jobs {
        let victim = (w + offset) % jobs;
        if let Some(index) = queues[victim].lock().expect("worker queue").pop_back() {
            return Some((index, true));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..97).collect();
        for jobs in [1, 2, 3, 8] {
            let out = run_work_stealing(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(
                out,
                items.iter().map(|&x| x * x).collect::<Vec<_>>(),
                "jobs {jobs}"
            );
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let items: Vec<usize> = (0..64).collect();
        let counter = AtomicUsize::new(0);
        let out = run_work_stealing(&items, 4, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            // Uneven work so stealing actually happens.
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(out, items);
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_work_stealing(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(run_work_stealing(&[5u32], 0, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn steal_counters_track_imbalance() {
        // Serial runs never steal.
        let items: Vec<usize> = (0..16).collect();
        let (_, stats) = run_work_stealing_with_stats(&items, 1, |_, &x| x);
        assert_eq!(
            stats,
            ExecutorStats {
                executed: 16,
                steals: 0
            }
        );

        // One pathologically slow item forces the other worker to steal the
        // victim's whole stripe (2 workers, striped deques).
        let (_, stats) = run_work_stealing_with_stats(&items, 2, |_, &x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            x
        });
        assert_eq!(stats.executed, 16);
        assert!(
            stats.steals > 0,
            "expected steals when one worker stalls, saw {stats:?}"
        );
    }
}
