//! The scenario layer: self-contained work items and per-case records.
//!
//! A [`WorkItem`] is one independently executable unit of an experiment —
//! one sweep case of a table, one model's reduction edges on one case, one
//! set size of the scaling study, one lower-bound audit. Items carry
//! everything they need (the case parameters), take their combinatorial
//! structures from a shared provider, and produce a [`CaseRecord`]: the
//! per-case round counts, phase accounting and theory-bound comparisons
//! that the engine streams as JSON-lines and renders as markdown tables.

use ring_combinat::{StructureKey, StructureKind};
use ring_experiments::distinguisher_scaling::{
    family_sizes_case, weak_nontrivial_move_case, ScalingSpec,
};
use ring_experiments::faults::faults_case;
use ring_experiments::lower_bounds::{lemma5_parity_audit, lemma6_case};
use ring_experiments::reductions::{figure_for, randomized_da_to_nm_case, reductions_case};
use ring_experiments::tables::{table1_case, table2_case};
use ring_experiments::{Case, FaultAxes, Measurement, SweepSpec};
use ring_protocols::fault::FaultParams;
use ring_protocols::structures::SharedStructures;
use ring_sim::Model;
use serde::Serialize;

/// One independently executable unit of work.
#[derive(Clone, Debug)]
pub enum WorkItem {
    /// All Table I cells of one sweep case.
    Table1(Case),
    /// All Table II cells of one sweep case.
    Table2(Case),
    /// All reduction edges of one sweep case in one model (Figures 1/2).
    Reductions {
        /// The sweep case.
        case: Case,
        /// The model the edges are measured in.
        model: Model,
    },
    /// The randomized Lemma 15 edge of one sweep case (Figure 2).
    RandomizedDaToNm {
        /// The sweep case.
        case: Case,
        /// The model the edge is measured in.
        model: Model,
    },
    /// Distinguisher / selective-family sizes for one set size.
    ScalingFamilies {
        /// The scaling parameters.
        spec: ScalingSpec,
        /// The set size.
        n: usize,
    },
    /// Weak nontrivial-move rounds for one (even) ring size.
    ScalingWeakMove {
        /// The scaling parameters.
        spec: ScalingSpec,
        /// The ring size.
        n: usize,
    },
    /// The Lemma 5 even-rotation parity audit.
    Lemma5Audit {
        /// Ring size (must be even).
        n: usize,
        /// Identifier universe size.
        universe: u64,
        /// Number of sampled rounds.
        samples: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// The Lemma 6 location-discovery round floors of one sweep case.
    Lemma6Floors(Case),
    /// The fault-degradation measurements of one sweep case under one
    /// deterministic fault configuration.
    Faults {
        /// The sweep case.
        case: Case,
        /// The fault configuration (drop rate, crashes, churn, adversary).
        params: FaultParams,
    },
}

impl WorkItem {
    /// The experiment family the item belongs to (the `experiment` field of
    /// its record; measurements carry the same tag).
    pub fn experiment(&self) -> String {
        match self {
            WorkItem::Table1(_) => "table1".into(),
            WorkItem::Table2(_) => "table2".into(),
            WorkItem::Reductions { case, model } => figure_for(*model, case.n).into(),
            WorkItem::RandomizedDaToNm { .. } => "fig2".into(),
            WorkItem::ScalingFamilies { .. } | WorkItem::ScalingWeakMove { .. } => {
                "distinguisher_scaling".into()
            }
            WorkItem::Lemma5Audit { .. } | WorkItem::Lemma6Floors(_) => "lower_bounds".into(),
            WorkItem::Faults { .. } => "faults".into(),
        }
    }

    /// The ring / set size of the item.
    pub fn n(&self) -> usize {
        match self {
            WorkItem::Table1(case)
            | WorkItem::Table2(case)
            | WorkItem::Reductions { case, .. }
            | WorkItem::RandomizedDaToNm { case, .. }
            | WorkItem::Lemma6Floors(case)
            | WorkItem::Faults { case, .. } => case.n,
            WorkItem::ScalingFamilies { n, .. }
            | WorkItem::ScalingWeakMove { n, .. }
            | WorkItem::Lemma5Audit { n, .. } => *n,
        }
    }

    /// The identifier universe size of the item.
    pub fn universe(&self) -> u64 {
        match self {
            WorkItem::Table1(case)
            | WorkItem::Table2(case)
            | WorkItem::Reductions { case, .. }
            | WorkItem::RandomizedDaToNm { case, .. }
            | WorkItem::Lemma6Floors(case)
            | WorkItem::Faults { case, .. } => case.universe,
            WorkItem::ScalingFamilies { spec, .. } | WorkItem::ScalingWeakMove { spec, .. } => {
                spec.universe
            }
            WorkItem::Lemma5Audit { universe, .. } => *universe,
        }
    }

    /// The item's own seed (per-case seeds are derived with a collision-free
    /// mix; see `SweepSpec::cases`).
    pub fn seed(&self) -> u64 {
        match self {
            WorkItem::Table1(case)
            | WorkItem::Table2(case)
            | WorkItem::Reductions { case, .. }
            | WorkItem::RandomizedDaToNm { case, .. }
            | WorkItem::Lemma6Floors(case)
            | WorkItem::Faults { case, .. } => case.seed,
            WorkItem::ScalingFamilies { spec, .. } | WorkItem::ScalingWeakMove { spec, .. } => {
                spec.seed
            }
            WorkItem::Lemma5Audit { seed, .. } => *seed,
        }
    }

    /// The combinatorial-structure keys the item will request from its
    /// provider while running, paired with the ring/set size of the
    /// request (the materialisation hint for lazily generated
    /// strong-distinguisher sequences; see `StrongDistinguisher::
    /// prefix_size_for`). `ringlab structures prebuild` constructs these
    /// into a shared store before any worker starts.
    ///
    /// The list mirrors the experiment code paths: Table I, reduction,
    /// fault-degradation and location-discovery cases route even-`n`
    /// nontrivial moves through
    /// `solve_nontrivial_move`, whose strong distinguisher is keyed by
    /// `(universe, case.structure_seed)` — the fixed protocol default, or
    /// one of the sweep's schedule seeds under a per-case seed schedule;
    /// the scaling study materialises a distinguisher and a selective
    /// family keyed by the scaling seed (and its weak-move protocol runs
    /// the strong sequence under the same seed). The randomized Lemma 15
    /// item solves its prerequisite nontrivial move through the same even-`n`
    /// route before the randomized edge, so it requests the same strong key
    /// as its case's reduction item. Table II (common sense of direction)
    /// elects its leader first and solves nontrivial move leader-led
    /// (Lemma 10), so it — like odd-`n` cases and the audit items — uses no
    /// structures.
    pub fn structure_keys(&self) -> Vec<(StructureKey, usize)> {
        let strong = |universe: u64, seed: u64, n: usize| {
            (
                StructureKey {
                    kind: StructureKind::StrongDistinguisher,
                    universe,
                    n: 0,
                    seed,
                },
                n,
            )
        };
        match self {
            WorkItem::Table1(case)
            | WorkItem::Reductions { case, .. }
            | WorkItem::RandomizedDaToNm { case, .. }
            | WorkItem::Lemma6Floors(case)
            | WorkItem::Faults { case, .. } => {
                if case.n % 2 == 0 {
                    vec![strong(case.universe, case.structure_seed, case.n)]
                } else {
                    Vec::new()
                }
            }
            WorkItem::ScalingFamilies { spec, n } => vec![
                (
                    StructureKey {
                        kind: StructureKind::Distinguisher,
                        universe: spec.universe,
                        n: *n as u64,
                        seed: spec.seed,
                    },
                    *n,
                ),
                (
                    StructureKey {
                        kind: StructureKind::SelectiveFamily,
                        universe: spec.universe,
                        n: *n as u64,
                        seed: spec.seed,
                    },
                    *n,
                ),
            ],
            WorkItem::ScalingWeakMove { spec, n } => {
                vec![strong(spec.universe, spec.seed, *n)]
            }
            WorkItem::Table2(_) | WorkItem::Lemma5Audit { .. } => Vec::new(),
        }
    }

    /// Whether `other` has the same *shape*: the same experiment family,
    /// ring/set size, universe and structure-key list. Same-shape items
    /// draw exactly the same combinatorial structures and exercise the
    /// same code path, so the engine may batch them through one shared
    /// structure handle per batch (see `SweepEngine::with_batch_limit`)
    /// without changing any case's inputs.
    pub fn same_shape(&self, other: &WorkItem) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(other)
            && self.n() == other.n()
            && self.universe() == other.universe()
            && self.structure_keys() == other.structure_keys()
    }

    /// Executes the item, drawing combinatorial structures from the given
    /// provider. Deterministic: the measurements depend only on the item
    /// (and the provider serving bit-identical structures, which both the
    /// fresh provider and the cache guarantee).
    pub fn run(&self, structures: &SharedStructures) -> Vec<Measurement> {
        match self {
            WorkItem::Table1(case) => table1_case(case, structures),
            WorkItem::Table2(case) => table2_case(case, structures),
            WorkItem::Reductions { case, model } => reductions_case(case, *model, structures),
            WorkItem::RandomizedDaToNm { case, model } => {
                vec![randomized_da_to_nm_case(case, *model, structures)]
            }
            WorkItem::ScalingFamilies { spec, n } => family_sizes_case(spec, *n, structures),
            WorkItem::ScalingWeakMove { spec, n } => {
                weak_nontrivial_move_case(spec, *n, structures)
                    .into_iter()
                    .collect()
            }
            WorkItem::Lemma5Audit {
                n,
                universe,
                samples,
                seed,
            } => vec![lemma5_parity_audit(*n, *universe, *samples, *seed)],
            WorkItem::Lemma6Floors(case) => lemma6_case(case, structures),
            WorkItem::Faults { case, params } => faults_case(case, *params, structures),
        }
    }

    /// Executes the item and wraps the measurements as the record the
    /// engine streams.
    pub fn run_to_record(&self, index: usize, structures: &SharedStructures) -> CaseRecord {
        CaseRecord::new(index, self, self.run(structures))
    }
}

/// One JSONL line of a sweep: everything measured on one work item.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct CaseRecord {
    /// Position of the item in the sweep (JSONL lines are emitted in this
    /// order regardless of scheduling).
    pub case_index: usize,
    /// Experiment family (`table1`, `fig2`, …).
    pub experiment: String,
    /// Ring / set size.
    pub n: usize,
    /// Identifier universe size.
    pub universe: u64,
    /// The case seed.
    pub seed: u64,
    /// Sum of all measured round counts of the case (`None` when the case
    /// measured no solvable quantity).
    pub rounds_total: Option<f64>,
    /// Whether every measurement of the case verified against ground truth.
    pub verified: bool,
    /// The individual measurements: per-problem round counts (the
    /// pipeline's phase accounting) and the paper's predicted bounds from
    /// `ring_combinat::bounds` for shape comparison.
    pub measurements: Vec<Measurement>,
}

impl CaseRecord {
    /// Reconstructs a record from its JSON value (the inverse of the
    /// `Serialize` derive). The distributed layer uses this to render
    /// tables and statistics from merged shard files without re-running
    /// any case.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &serde::Value) -> Result<Self, String> {
        let int = |key: &str| {
            value
                .get(key)
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| format!("record is missing integer `{key}`"))
        };
        let rounds_total = match value.get("rounds_total") {
            None => return Err("record is missing `rounds_total`".into()),
            Some(v) if v.is_null() => None,
            Some(v) => Some(v.as_f64().ok_or("record `rounds_total` is not a number")?),
        };
        let measurements = value
            .get("measurements")
            .and_then(serde::Value::as_array)
            .ok_or("record is missing `measurements` array")?
            .iter()
            .map(Measurement::from_json)
            .collect::<Result<Vec<Measurement>, String>>()?;
        Ok(CaseRecord {
            case_index: int("case_index")? as usize,
            experiment: value
                .get("experiment")
                .and_then(|v| v.as_str())
                .ok_or("record is missing string `experiment`")?
                .to_string(),
            n: int("n")? as usize,
            universe: int("universe")?,
            seed: int("seed")?,
            rounds_total,
            verified: value
                .get("verified")
                .and_then(serde::Value::as_bool)
                .ok_or("record is missing boolean `verified`")?,
            measurements,
        })
    }

    fn new(index: usize, item: &WorkItem, measurements: Vec<Measurement>) -> Self {
        let values: Vec<f64> = measurements.iter().filter_map(|m| m.value).collect();
        CaseRecord {
            case_index: index,
            experiment: item.experiment(),
            n: item.n(),
            universe: item.universe(),
            seed: item.seed(),
            rounds_total: if values.is_empty() {
                None
            } else {
                Some(values.iter().sum())
            },
            verified: measurements.iter().all(|m| m.verified),
            measurements,
        }
    }
}

/// Work items for the Table I experiment over a sweep.
pub fn table1_items(spec: &SweepSpec) -> Vec<WorkItem> {
    spec.cases().into_iter().map(WorkItem::Table1).collect()
}

/// Work items for the Table II experiment over a sweep.
pub fn table2_items(spec: &SweepSpec) -> Vec<WorkItem> {
    spec.cases().into_iter().map(WorkItem::Table2).collect()
}

/// Work items for Figure 1: reduction edges in the lazy and perceptive
/// models on every size, and in the basic model on odd sizes.
pub fn fig1_items(spec: &SweepSpec) -> Vec<WorkItem> {
    let mut items = Vec::new();
    for model in [Model::Lazy, Model::Perceptive] {
        items.extend(
            spec.cases()
                .into_iter()
                .map(move |case| WorkItem::Reductions { case, model }),
        );
    }
    items.extend(
        spec.cases()
            .into_iter()
            .filter(|case| case.n % 2 == 1)
            .map(|case| WorkItem::Reductions {
                case,
                model: Model::Basic,
            }),
    );
    items
}

/// Work items for Figure 2: reduction edges in the basic model on even
/// sizes, plus the randomized Lemma 15 edge.
pub fn fig2_items(spec: &SweepSpec) -> Vec<WorkItem> {
    let even: Vec<Case> = spec
        .cases()
        .into_iter()
        .filter(|case| case.n % 2 == 0)
        .collect();
    let mut items: Vec<WorkItem> = even
        .iter()
        .cloned()
        .map(|case| WorkItem::Reductions {
            case,
            model: Model::Basic,
        })
        .collect();
    items.extend(even.into_iter().map(|case| WorkItem::RandomizedDaToNm {
        case,
        model: Model::Basic,
    }));
    items
}

/// Work items for the distinguisher / selective-family scaling study.
pub fn scaling_items(spec: &ScalingSpec) -> Vec<WorkItem> {
    let mut items: Vec<WorkItem> = spec
        .sizes
        .iter()
        .map(|&n| WorkItem::ScalingFamilies {
            spec: spec.clone(),
            n,
        })
        .collect();
    items.extend(spec.sizes.iter().map(|&n| WorkItem::ScalingWeakMove {
        spec: spec.clone(),
        n,
    }));
    items
}

/// Work items for the lower-bound audits (Lemmas 5 and 6).
pub fn lower_bounds_items(spec: &SweepSpec) -> Vec<WorkItem> {
    let mut items = vec![
        WorkItem::Lemma5Audit {
            n: 16,
            universe: 256,
            samples: 2000,
            seed: 1,
        },
        WorkItem::Lemma5Audit {
            n: 64,
            universe: 4096,
            samples: 2000,
            seed: 2,
        },
    ];
    items.extend(spec.cases().into_iter().map(WorkItem::Lemma6Floors));
    items
}

/// Work items for the fault-degradation experiment: one item per
/// (fault configuration, sweep case), fault-configuration-major so shard
/// boundaries cut through cases, not through configurations. The sweep's
/// fault axes default to [`FaultAxes::standard`] when the spec carries
/// none; crash/churn/adversary knobs apply at every drop rate.
pub fn faults_items(spec: &SweepSpec) -> Vec<WorkItem> {
    let axes = spec.faults.clone().unwrap_or_else(FaultAxes::standard);
    let mut items = Vec::new();
    for &drop_per_mille in &axes.drops {
        let params = FaultParams {
            drop_per_mille,
            crashes: axes.crashes,
            churn: axes.churn,
            adversarial: axes.adversarial,
        };
        items.extend(
            spec.cases()
                .into_iter()
                .map(|case| WorkItem::Faults { case, params }),
        );
    }
    items
}

/// Every experiment of the reproduction over one sweep spec (the `all`
/// subcommand / the former `repro_all` binary).
pub fn all_items(spec: &SweepSpec, scaling: &ScalingSpec) -> Vec<WorkItem> {
    let mut items = table1_items(spec);
    items.extend(table2_items(spec));
    items.extend(fig1_items(spec));
    items.extend(fig2_items(spec));
    items.extend(scaling_items(scaling));
    items.extend(lower_bounds_items(spec));
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_protocols::structures::fresh_structures;

    #[test]
    fn item_builders_cover_the_sweep() {
        let spec = SweepSpec::quick();
        assert_eq!(table1_items(&spec).len(), spec.cases().len());
        // fig1: two models everywhere plus basic on the odd sizes.
        let odd = spec.cases().iter().filter(|c| c.n % 2 == 1).count();
        assert_eq!(fig1_items(&spec).len(), 2 * spec.cases().len() + odd);
        // fig2: two item kinds per even case.
        let even = spec.cases().len() - odd;
        assert_eq!(fig2_items(&spec).len(), 2 * even);
        // faults: one item per (configured drop rate, case), defaulting to
        // the standard axes when the spec carries none.
        assert_eq!(
            faults_items(&spec).len(),
            FaultAxes::standard().drops.len() * spec.cases().len()
        );
        let custom = SweepSpec {
            faults: Some(FaultAxes {
                drops: vec![0, 500],
                crashes: 1,
                churn: 0,
                adversarial: true,
            }),
            ..spec.clone()
        };
        let items = faults_items(&custom);
        assert_eq!(items.len(), 2 * custom.cases().len());
        let WorkItem::Faults { case, params } = &items[custom.cases().len()] else {
            panic!("faults_items built a non-faults item");
        };
        assert_eq!(params.drop_per_mille, 500);
        assert_eq!(params.crashes, 1);
        assert!(params.adversarial);
        assert_eq!(case.n, custom.cases()[0].n);
    }

    #[test]
    fn faults_items_run_and_share_table1_structure_keys() {
        let spec = SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 3,
            structure_seeds: None,
            faults: Some(FaultAxes {
                drops: vec![100],
                crashes: 0,
                churn: 0,
                adversarial: false,
            }),
        };
        let items = faults_items(&spec);
        assert_eq!(items.len(), 2);
        // Even-n faulty cases request the same strong key the clean Table I
        // item does (the nontrivial-move route is shared).
        for (faulty, clean) in items.iter().zip(table1_items(&spec)) {
            assert_eq!(faulty.structure_keys(), clean.structure_keys());
        }
        let record = items[0].run_to_record(0, &fresh_structures());
        assert_eq!(record.experiment, "faults");
        assert!(record.verified);
        assert_eq!(record.measurements.len(), 6);
    }

    #[test]
    fn records_summarise_measurements() {
        let spec = SweepSpec {
            sizes: vec![9],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 3,
            structure_seeds: None,
            faults: None,
        };
        let item = &table1_items(&spec)[0];
        let record = item.run_to_record(7, &fresh_structures());
        assert_eq!(record.case_index, 7);
        assert_eq!(record.experiment, "table1");
        assert_eq!(record.n, 9);
        assert!(record.verified);
        assert_eq!(record.measurements.len(), 4);
        assert!(record.rounds_total.unwrap() > 0.0);
    }

    #[test]
    fn records_round_trip_through_json() {
        let spec = SweepSpec {
            sizes: vec![9],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 3,
            structure_seeds: None,
            faults: None,
        };
        let record = table1_items(&spec)[0].run_to_record(2, &fresh_structures());
        let line = serde_json::to_string(&record).unwrap();
        let parsed = CaseRecord::from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(parsed, record);
        assert!(CaseRecord::from_json(&serde_json::from_str("{}").unwrap()).is_err());
    }
}
