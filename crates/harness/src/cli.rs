//! The `ringlab` command-line interface.
//!
//! One binary drives every experiment of the reproduction through the
//! parallel sweep engine:
//!
//! ```text
//! ringlab <subcommand> [flags]
//!
//! subcommands:
//!   table1         Table I   (general setting)
//!   table2         Table II  (common sense of direction)
//!   fig1           Figure 1  (reductions: odd n / lazy / perceptive)
//!   fig2           Figure 2  (reductions: basic model, even n)
//!   scaling        distinguisher / selective-family scaling (Section IV)
//!   lower-bounds   Lemma 5 / Lemma 6 audits
//!   all            every experiment above
//!   sweep          the full table pipeline over a custom case grid
//!
//! flags:
//!   --quick                   reduced sizes (CI smoke)
//!   --jobs N                  worker threads (default: all cores)
//!   --sizes a,b,…             override ring / set sizes
//!   --universe-factors a,b,…  override universe factors (N = factor·n;
//!                             not applicable to `scaling`)
//!   --reps K                  override repetitions per configuration
//!                             (not applicable to `scaling`)
//!   --seed S                  override the base seed
//!   --jsonl PATH|-            JSONL destination (default results/<sub>.jsonl,
//!                             `-` = stdout)
//!   --no-jsonl                disable the JSONL stream
//! ```
//!
//! Results stream to the JSONL destination incrementally in case order and
//! the markdown tables print at the end, so stdout and the JSONL file are
//! byte-identical for every `--jobs` value (run metadata — jobs, elapsed
//! time, cache statistics — goes to stderr).

use crate::engine::SweepEngine;
use crate::scenario::{
    all_items, fig1_items, fig2_items, lower_bounds_items, scaling_items, table1_items,
    table2_items, WorkItem,
};
use crate::sink::JsonlSink;
use ring_experiments::distinguisher_scaling::ScalingSpec;
use ring_experiments::report::{aggregate, format_markdown_table};
use ring_experiments::{Measurement, SweepSpec};
use std::io::Write;
use std::time::Instant;

const USAGE: &str = "usage: ringlab <table1|table2|fig1|fig2|scaling|lower-bounds|all|sweep> \
[--quick] [--jobs N] [--sizes a,b,..] [--universe-factors a,b,..] [--reps K] [--seed S] \
[--jsonl PATH|-] [--no-jsonl]";

/// Parsed command-line options.
struct Options {
    subcommand: String,
    quick: bool,
    jobs: usize,
    sizes: Option<Vec<usize>>,
    universe_factors: Option<Vec<u64>>,
    reps: Option<u64>,
    seed: Option<u64>,
    jsonl: Option<String>,
    no_jsonl: bool,
}

/// Runs the CLI on explicit arguments (without the program name), returning
/// the process exit code. The wrapper binaries call this with their
/// subcommand prepended.
pub fn run(args: &[String]) -> i32 {
    let options = match parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("ringlab: {message}\n{USAGE}");
            return 2;
        }
    };
    let spec = sweep_spec(&options);
    let scaling = scaling_spec(&options);

    let items = match options.subcommand.as_str() {
        "table1" => table1_items(&spec),
        "table2" => table2_items(&spec),
        "fig1" => fig1_items(&spec),
        "fig2" => fig2_items(&spec),
        "scaling" => scaling_items(&scaling),
        "lower-bounds" => lower_bounds_items(&spec),
        "all" => all_items(&spec, &scaling),
        // The generic sweep: the full Table I + Table II pipeline over the
        // (possibly overridden) case grid.
        "sweep" => {
            let mut items = table1_items(&spec);
            items.extend(table2_items(&spec));
            items
        }
        other => {
            eprintln!("ringlab: unknown subcommand `{other}`\n{USAGE}");
            return 2;
        }
    };

    let engine = SweepEngine::new(options.jobs);
    let start = Instant::now();
    let records = run_items(&engine, &items, &options);
    let elapsed = start.elapsed();

    let measurements: Vec<Measurement> = records
        .iter()
        .flat_map(|r| r.measurements.iter().cloned())
        .collect();
    print!("{}", render_markdown(&measurements));

    let stats = engine.cache_stats();
    eprintln!(
        "ringlab: {} cases in {:.2}s ({} jobs requested, {:.1} cases/s); \
structure cache: {} hits / {} misses ({:.0}% hit rate)",
        items.len(),
        elapsed.as_secs_f64(),
        if options.jobs == 0 { crate::executor::available_jobs() } else { options.jobs },
        items.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
    );
    0
}

/// Executes the items through the engine with the configured JSONL
/// destination.
fn run_items(
    engine: &SweepEngine,
    items: &[WorkItem],
    options: &Options,
) -> Vec<crate::scenario::CaseRecord> {
    if options.no_jsonl {
        return engine.run::<Box<dyn Write + Send>>(items, None);
    }
    let destination = options
        .jsonl
        .clone()
        .unwrap_or_else(|| format!("results/{}.jsonl", options.subcommand.replace('-', "_")));
    let out: Box<dyn Write + Send> = if destination == "-" {
        Box::new(std::io::stdout())
    } else {
        if let Some(parent) = std::path::Path::new(&destination).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create results directory");
            }
        }
        Box::new(std::fs::File::create(&destination).expect("create JSONL file"))
    };
    let sink = JsonlSink::new(out);
    let records = engine.run(items, Some(&sink));
    sink.finish();
    if destination != "-" {
        eprintln!("ringlab: streamed {} records to {destination}", records.len());
    }
    records
}

/// Renders the measurements as the familiar markdown sections, grouped by
/// experiment in canonical order. Table and figure sections compress
/// repetitions via [`aggregate`]; the scaling and audit sections list raw
/// rows, matching the former per-experiment binaries.
pub fn render_markdown(measurements: &[Measurement]) -> String {
    const SECTIONS: [(&str, &str, bool); 6] = [
        ("table1", "Table I — deterministic solutions in the general setting", true),
        (
            "table2",
            "Table II — deterministic solutions with a common sense of direction",
            true,
        ),
        (
            "fig1",
            "Figure 1 — reductions among coordination problems (odd n / lazy / perceptive)",
            true,
        ),
        (
            "fig2",
            "Figure 2 — reductions among coordination problems (basic model, even n)",
            true,
        ),
        (
            "distinguisher_scaling",
            "Distinguisher and selective-family scaling (Section IV)",
            false,
        ),
        ("lower_bounds", "Lower-bound audits (Lemmas 5 and 6)", false),
    ];
    let mut out = String::new();
    for (key, title, aggregated) in SECTIONS {
        let section: Vec<Measurement> = measurements
            .iter()
            .filter(|m| m.experiment == key)
            .cloned()
            .collect();
        if section.is_empty() {
            continue;
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("# {title}\n\n"));
        let rows = if aggregated { aggregate(&section) } else { section };
        out.push_str(&format_markdown_table(&rows));
    }
    out
}

fn sweep_spec(options: &Options) -> SweepSpec {
    let mut spec = if options.quick {
        SweepSpec::quick()
    } else {
        SweepSpec::standard()
    };
    if let Some(sizes) = &options.sizes {
        spec.sizes = sizes.clone();
    }
    if let Some(factors) = &options.universe_factors {
        spec.universe_factors = factors.clone();
    }
    if let Some(reps) = options.reps {
        spec.repetitions = reps;
    }
    if let Some(seed) = options.seed {
        spec.seed = seed;
    }
    spec
}

fn scaling_spec(options: &Options) -> ScalingSpec {
    let mut scaling = if options.quick {
        // Reduced sizes for smoke runs, exercising both family kinds and
        // the protocol-driven measurement.
        ScalingSpec {
            universe: 1 << 10,
            sizes: vec![8, 16],
            seed: 41,
        }
    } else {
        ScalingSpec::standard()
    };
    if let Some(sizes) = &options.sizes {
        scaling.sizes = sizes.clone();
    }
    if let Some(seed) = options.seed {
        scaling.seed = seed;
    }
    scaling
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        subcommand: String::new(),
        quick: false,
        jobs: 0,
        sizes: None,
        universe_factors: None,
        reps: None,
        seed: None,
        jsonl: None,
        no_jsonl: false,
    };
    let mut iter = args.iter();
    let Some(subcommand) = iter.next() else {
        return Err("missing subcommand".into());
    };
    options.subcommand = subcommand.clone();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--no-jsonl" => options.no_jsonl = true,
            "--jobs" => {
                options.jobs = value_of("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs expects a non-negative integer".to_string())?;
            }
            "--sizes" => {
                options.sizes = Some(parse_list(&value_of("--sizes")?, "--sizes")?);
            }
            "--universe-factors" => {
                options.universe_factors = Some(parse_list(
                    &value_of("--universe-factors")?,
                    "--universe-factors",
                )?);
            }
            "--reps" => {
                options.reps = Some(
                    value_of("--reps")?
                        .parse()
                        .map_err(|_| "--reps expects a positive integer".to_string())?,
                );
            }
            "--seed" => {
                options.seed = Some(
                    value_of("--seed")?
                        .parse()
                        .map_err(|_| "--seed expects an integer".to_string())?,
                );
            }
            "--jsonl" => options.jsonl = Some(value_of("--jsonl")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if options.sizes.as_ref().is_some_and(|sizes| sizes.is_empty()) {
        return Err("--sizes expects at least one size".into());
    }
    if options
        .universe_factors
        .as_ref()
        .is_some_and(|factors| factors.is_empty())
    {
        return Err("--universe-factors expects at least one factor".into());
    }
    if options.reps == Some(0) {
        return Err("--reps expects a positive integer".into());
    }
    if options.subcommand == "scaling" && options.universe_factors.is_some() {
        return Err(
            "--universe-factors does not apply to `scaling` (its universe is absolute; \
use --quick for the reduced variant)"
                .into(),
        );
    }
    if options.subcommand == "scaling" && options.reps.is_some() {
        return Err("--reps does not apply to `scaling` (one measurement per set size)".into());
    }
    Ok(options)
}

fn parse_list<T: std::str::FromStr>(text: &str, flag: &str) -> Result<Vec<T>, String> {
    text.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| format!("{flag}: `{part}` is not a number"))
        })
        .collect()
}

/// Entry point shared by `ringlab` and the thin wrapper binaries: prepends
/// `subcommand` (if any) to the process arguments and exits with the CLI's
/// code.
pub fn main_with_subcommand(subcommand: Option<&str>) -> ! {
    let mut args: Vec<String> = Vec::new();
    if let Some(subcommand) = subcommand {
        args.push(subcommand.to_string());
    }
    args.extend(std::env::args().skip(1));
    std::process::exit(run(&args));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_into_options() {
        let options = parse(&args(&[
            "sweep",
            "--quick",
            "--jobs",
            "4",
            "--sizes",
            "15,16",
            "--universe-factors",
            "4,64",
            "--reps",
            "2",
            "--seed",
            "9",
            "--no-jsonl",
        ]))
        .unwrap();
        assert_eq!(options.subcommand, "sweep");
        assert!(options.quick && options.no_jsonl);
        assert_eq!(options.jobs, 4);
        assert_eq!(sweep_spec(&options).sizes, vec![15, 16]);
        assert_eq!(sweep_spec(&options).universe_factors, vec![4, 64]);
        assert_eq!(sweep_spec(&options).repetitions, 2);
        assert_eq!(sweep_spec(&options).seed, 9);
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse(&args(&[])).is_err());
        assert!(parse(&args(&["table1", "--jobs"])).is_err());
        assert!(parse(&args(&["table1", "--sizes", "a,b"])).is_err());
        assert!(parse(&args(&["table1", "--wat"])).is_err());
    }

    #[test]
    fn markdown_renders_sections_in_canonical_order() {
        let sample = |experiment: &str| Measurement {
            experiment: experiment.into(),
            setting: "s".into(),
            quantity: "q".into(),
            n: 8,
            universe: 64,
            value: Some(1.0),
            predicted: Some(1.0),
            verified: true,
        };
        let text = render_markdown(&[sample("lower_bounds"), sample("table1")]);
        let table1_at = text.find("# Table I").unwrap();
        let lower_at = text.find("# Lower-bound audits").unwrap();
        assert!(table1_at < lower_at);
    }
}
