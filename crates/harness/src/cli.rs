//! The `ringlab` command-line interface.
//!
//! One binary drives every experiment of the reproduction through the
//! parallel sweep engine — in one process, or sharded across many:
//!
//! ```text
//! ringlab <subcommand> [flags]
//!
//! subcommands:
//!   table1         Table I   (general setting)
//!   table2         Table II  (common sense of direction)
//!   fig1           Figure 1  (reductions: odd n / lazy / perceptive)
//!   fig2           Figure 2  (reductions: basic model, even n)
//!   scaling        distinguisher / selective-family scaling (Section IV)
//!   lower-bounds   Lemma 5 / Lemma 6 audits
//!   all            every experiment above
//!   sweep          the full table pipeline over a custom case grid
//!   faults         protocol degradation under deterministic fault
//!                  injection (message drop, crash-stop stations, churn,
//!                  adversarial activation)
//!   worker         run one shard of a subcommand, speaking the
//!                  ring-distrib/v1 protocol on stdout (orchestrator use);
//!                  with --connect ADDR: register with a `serve` daemon
//!                  and execute job frames over TCP until dismissed
//!   serve          sweep-as-a-service daemon (--listen ADDR): accept
//!                  sweep specs over HTTP/JSON, dispatch shards to
//!                  registered TCP workers, stream per-case JSONL to
//!                  subscribers; every run directory stays resumable
//!   merge          k-way-merge shard JSONL files by case_index
//!   resume         complete a partially-run sharded run directory
//!   trace          inspect span-trace sidecars:
//!                    trace summarize <RUN_DIR>  aggregate the directory's
//!                      trace-*.jsonl sidecars into a per-span time-budget
//!                      table (count, total, share, p50/p90/p99)
//!   structures     maintain an on-disk structure store:
//!                    structures prebuild <sub> [spec flags] [--format v1|v2]
//!                      construct and publish every structure the
//!                      subcommand will request (v1 writes the legacy
//!                      one-file-per-key layout, for migration fixtures)
//!                    structures verify   validate every store file
//!                    structures gc       drop corrupt files, stale
//!                      tmp/claim leftovers and unreferenced blobs
//!                    structures migrate  rewrite a legacy v1 store in
//!                      place onto the content-addressed v2 layout
//!                    structures stats    per-kind blob counts, bytes and
//!                      logical-keys-per-blob dedup ratios (stderr JSON)
//!
//! flags:
//!   --quick                   reduced sizes (CI smoke)
//!   --jobs N                  worker threads (default: all cores); with
//!                             --shards: concurrent worker processes
//!   --sizes a,b,…             override ring / set sizes
//!   --universe-factors a,b,…  override universe factors (N = factor·n;
//!                             not applicable to `scaling`)
//!   --reps K                  override repetitions per configuration
//!                             (not applicable to `scaling`)
//!   --seed S                  override the base seed
//!   --jsonl PATH|-            JSONL destination (default results/<sub>.jsonl,
//!                             `-` = stdout)
//!   --no-jsonl                disable the JSONL stream
//!   --shards M                shard the sweep over M worker processes and
//!                             merge the results (byte-identical to the
//!                             single-process run)
//!   --shard i/M               run only shard i of an M-way plan in this
//!                             process (manual fleet distribution)
//!   --run-dir DIR             sharded-run directory (manifest + shard
//!                             files; default results/distrib/<sub>)
//!   --retries R               extra worker launches per failing shard
//!                             (default 1)
//!   --structure-store [DIR]   enable the on-disk structure store: every
//!                             thread and every worker process draws its
//!                             combinatorial structures from DIR (default:
//!                             results/structures, or <run-dir>/structures
//!                             for sharded runs), constructing each one
//!                             once per fleet and loading it everywhere
//!                             else; output stays byte-identical
//!   --structure-seed-mode fixed|per-case
//!                             structure-seed schedule of the sweep: fixed
//!                             (default) hands every case the protocol's
//!                             STRUCTURE_SEED; per-case rotates the cases
//!                             through K distinct schedule seeds, so
//!                             repetitions additionally sample structure
//!                             randomness (seed-diverse sweeps). Against a
//!                             v2 store the K seeds share one strong blob
//!                             per universe.
//!   --structure-seeds K       number of schedule seeds in per-case mode
//!                             (default 4; implies per-case)
//!   --fault-drops a,b,…       (`faults` only) per-mille message-drop rates
//!                             to sweep (default 0,50,100,200,400)
//!   --fault-crashes K         (`faults` only) crash-stop stations per case
//!   --fault-churn K           (`faults` only) churning stations per case
//!   --fault-adversarial       (`faults` only) rotate an adversarial
//!                             activation-denial window over the ring
//!   --shard-timeout SECS      wall-clock budget per worker attempt; a
//!                             worker exceeding it is killed and retried
//!                             (recorded in the manifest, so `resume`
//!                             supervises the same way)
//!   --render-fig3 PATH        (`faults`, single-process) additionally
//!                             write the Figure-3-style degradation
//!                             artifact (median rounds and failure % per
//!                             drop rate and ring size) to PATH
//!   --listen ADDR             (`serve`) the daemon's bind address
//!                             (host:port; port 0 picks a free port,
//!                             published in <data-dir>/endpoint)
//!   --data-dir DIR            (`serve`) daemon state directory (default
//!                             results/serve): endpoint file plus one
//!                             runs/run-NNNN/ directory per submission
//!   --lease-timeout SECS      (`serve`) how long a shard attempt waits
//!                             for an idle worker before counting as a
//!                             retryable launch failure (default 600)
//!   --connect ADDR            (`worker`) register with a serve daemon
//!                             and execute its job frames over TCP
//!   --batch N                 schedule up to N consecutive same-shape
//!                             cases as one work unit sharing one
//!                             structure handle (default 1 = off); output
//!                             is byte-identical at every limit —
//!                             runtime-only, orchestrators pass it to
//!                             their workers
//!   --stats                   print structure-cache / structure-store /
//!                             executor statistics as JSON on stderr
//!                             (fleet-wide aggregates for sharded runs)
//!   --trace                   write span-trace sidecars (one
//!                             trace-<pid>.jsonl per process) into the
//!                             trace directory; sweep output stays
//!                             byte-identical — telemetry never touches
//!                             stdout or shard files
//!   --trace-dir DIR           trace sidecar directory (default: the run
//!                             directory for sharded runs, results/trace
//!                             otherwise; implies --trace)
//! ```
//!
//! Results stream to the JSONL destination incrementally in case order and
//! the markdown tables print at the end. When the JSONL stream goes to
//! stdout (`--jsonl -`) the tables are routed to **stderr**, so piped
//! output stays valid JSONL; otherwise tables go to stdout and the JSONL
//! bytes are identical for every `--jobs` and `--shards` value (run
//! metadata — jobs, elapsed time, cache statistics — always goes to
//! stderr).

use crate::engine::SweepEngine;
use crate::scenario::{
    all_items, faults_items, fig1_items, fig2_items, lower_bounds_items, scaling_items,
    table1_items, table2_items, CaseRecord, WorkItem,
};
use crate::sink::JsonlSink;
use crate::store::StructureStore;
use ring_combinat::shared::splitmix64;
use ring_distrib::{
    fail_after_from_env, merge_shards, plan_shards, run_pending_shards, DoneEvent, Manifest,
    OrchestratorOptions, ShardTally, SpecParams, StartEvent,
};
use ring_experiments::distinguisher_scaling::ScalingSpec;
use ring_experiments::report::{aggregate, format_markdown_table};
use ring_experiments::{FaultAxes, Measurement, SweepSpec};
use ring_protocols::structures::StructureProvider;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const USAGE: &str =
    "usage: ringlab <table1|table2|fig1|fig2|scaling|lower-bounds|all|sweep|faults> \
[--quick] [--jobs N] [--sizes a,b,..] [--universe-factors a,b,..] [--reps K] [--seed S] \
[--structure-seed-mode fixed|per-case] [--structure-seeds K] \
[--fault-drops a,b,..] [--fault-crashes K] [--fault-churn K] [--fault-adversarial] \
[--render-fig3 PATH] [--jsonl PATH|-] [--no-jsonl] [--shards M] [--shard i/M] [--run-dir DIR] [--retries R] \
[--shard-timeout SECS] [--structure-store [DIR]] [--batch N] [--stats] [--trace] [--trace-dir DIR]
       ringlab worker <subcommand> --shard i/M [spec flags] [--structure-store DIR]
       ringlab worker --connect ADDR
       ringlab serve --listen ADDR [--data-dir DIR] [--jobs N] [--retries R] \
[--shard-timeout SECS] [--lease-timeout SECS]
       ringlab merge [--run-dir DIR | SHARD.jsonl ..] [--jsonl PATH|-]
       ringlab resume <RUN_DIR> [--jobs N] [--jsonl PATH|-] [--stats]
       ringlab trace summarize <RUN_DIR>
       ringlab structures <prebuild <subcommand> [spec flags] [--format v1|v2]\
|verify|gc|migrate|stats> [--structure-store DIR]";

/// Default structure-store directory for non-sharded invocations (sharded
/// runs default into `<run-dir>/structures` instead).
const DEFAULT_STORE_DIR: &str = "results/structures";

/// Parsed command-line options.
#[derive(Clone)]
struct Options {
    subcommand: String,
    quick: bool,
    jobs: usize,
    sizes: Option<Vec<usize>>,
    universe_factors: Option<Vec<u64>>,
    reps: Option<u64>,
    seed: Option<u64>,
    jsonl: Option<String>,
    no_jsonl: bool,
    shards: usize,
    shard: Option<(usize, usize)>,
    run_dir: Option<String>,
    retries: u32,
    /// `None` = no store; `Some(None)` = store at the context default
    /// directory; `Some(Some(dir))` = store at an explicit directory.
    structure_store: Option<Option<String>>,
    /// `Some(K)` = per-case structure-seed schedule with K schedule seeds;
    /// `None` = the fixed default (resolved from `--structure-seed-mode` /
    /// `--structure-seeds` at parse time).
    structure_seeds: Option<u64>,
    /// `--fault-drops` override (`faults` only; `None` = the standard drop
    /// axes).
    fault_drops: Option<Vec<u64>>,
    /// `--fault-crashes` override (`faults` only).
    fault_crashes: Option<u64>,
    /// `--fault-churn` override (`faults` only).
    fault_churn: Option<u64>,
    /// `--fault-adversarial` (`faults` only).
    fault_adversarial: bool,
    /// `--shard-timeout` in seconds (`None` = unlimited).
    shard_timeout: Option<u64>,
    /// `serve --listen ADDR`: the daemon's bind address.
    listen: Option<String>,
    /// `worker --connect ADDR`: register with a daemon instead of running
    /// one stdio shard.
    connect: Option<String>,
    /// `serve --data-dir DIR`: the daemon's state directory (endpoint file
    /// plus `runs/run-NNNN/` run directories).
    data_dir: Option<String>,
    /// `serve --lease-timeout SECS`: how long a shard attempt waits for an
    /// idle worker before counting as a (retryable) launch failure.
    lease_timeout: Option<u64>,
    /// `faults --render-fig3 PATH`: write the Figure-3-style degradation
    /// artifact alongside the tables (single-process `faults` only).
    render_fig3: Option<String>,
    /// `structures prebuild --format v1`: write the legacy layout.
    v1_format: bool,
    stats: bool,
    /// `--batch N`: schedule up to N consecutive same-shape cases as one
    /// work unit sharing one structure handle. Runtime-only — never part
    /// of the spec fingerprint, never visible in sweep output (batching is
    /// byte-identical at every limit).
    batch: usize,
    /// `--trace`: write span-trace sidecars. Runtime-only — never part of
    /// the spec fingerprint, never visible in sweep output.
    trace: bool,
    /// `--trace-dir DIR`: explicit sidecar directory (implies `--trace`);
    /// orchestrators pass the run directory to their workers through this.
    trace_dir: Option<String>,
    positionals: Vec<String>,
}

/// Subcommands `run` dispatches on (usage errors for anything else).
const SUBCOMMANDS: [&str; 15] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "scaling",
    "lower-bounds",
    "all",
    "sweep",
    "faults",
    "worker",
    "merge",
    "resume",
    "structures",
    "serve",
    "trace",
];

/// The experiment subcommand an invocation's sweep spec resolves to: the
/// positional for `worker <sub>` and `structures prebuild <sub>`, the
/// subcommand itself otherwise. The fault axes key off this, so a worker
/// (or prebuild) of a faulty sweep resolves the same spec — and the same
/// fingerprint — as its orchestrator.
fn effective_subcommand(options: &Options) -> &str {
    match options.subcommand.as_str() {
        "worker" => options
            .positionals
            .first()
            .map(String::as_str)
            .unwrap_or(""),
        "structures" if options.positionals.first().map(String::as_str) == Some("prebuild") => {
            options.positionals.get(1).map(String::as_str).unwrap_or("")
        }
        other => other,
    }
}

/// Runs the CLI on explicit arguments (without the program name), returning
/// the process exit code. The wrapper binaries call this with their
/// subcommand prepended.
pub fn run(args: &[String]) -> i32 {
    let options = match parse(args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("ringlab: {message}\n{USAGE}");
            return 2;
        }
    };
    // Unknown subcommands are usage errors (exit 2, like bad flags), not
    // runtime failures.
    if !SUBCOMMANDS.contains(&options.subcommand.as_str()) {
        eprintln!(
            "ringlab: unknown subcommand `{}`\n{USAGE}",
            options.subcommand
        );
        return 2;
    }
    if let Err(message) = init_trace(&options) {
        eprintln!("ringlab: {message}");
        return 1;
    }
    let result = match options.subcommand.as_str() {
        "worker" => cmd_worker(&options),
        "serve" => cmd_serve(&options),
        "merge" => cmd_merge(&options),
        "resume" => cmd_resume(&options),
        "structures" => cmd_structures(&options),
        "trace" => cmd_trace(&options),
        _ => cmd_experiment(&options),
    };
    // Flush and close the sidecar whatever the outcome: a failed run's
    // spans are exactly the ones worth reading.
    ring_obs::trace::shutdown();
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("ringlab: {message}");
            1
        }
    }
}

/// Switches the span-trace layer on when `--trace` (or `--trace-dir`) was
/// given, resolving the sidecar directory against the invocation context:
/// an explicit `--trace-dir` wins, sharded runs and resumes default into
/// their run directory (next to the manifest the sidecars explain), and
/// everything else into `results/trace`. Telemetry is strictly additive —
/// sweep bytes are identical with tracing on or off.
fn init_trace(options: &Options) -> Result<(), String> {
    if !options.trace {
        return Ok(());
    }
    let dir = options.trace_dir.clone().unwrap_or_else(|| {
        if options.subcommand == "resume" {
            options
                .run_dir
                .clone()
                .or_else(|| options.positionals.first().cloned())
                .unwrap_or_else(|| "results/trace".to_string())
        } else if options.shards > 0 {
            options.run_dir.clone().unwrap_or_else(|| {
                format!("results/distrib/{}", options.subcommand.replace('-', "_"))
            })
        } else {
            "results/trace".to_string()
        }
    });
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let path = ring_obs::trace::init(Path::new(&dir))
        .map_err(|e| format!("cannot start the trace sidecar in {dir}: {e}"))?;
    eprintln!("ringlab: tracing spans to {}", path.display());
    Ok(())
}

/// The item list of an experiment subcommand.
fn items_for(
    subcommand: &str,
    spec: &SweepSpec,
    scaling: &ScalingSpec,
) -> Result<Vec<WorkItem>, String> {
    Ok(match subcommand {
        "table1" => table1_items(spec),
        "table2" => table2_items(spec),
        "fig1" => fig1_items(spec),
        "fig2" => fig2_items(spec),
        "scaling" => scaling_items(scaling),
        "lower-bounds" => lower_bounds_items(spec),
        "all" => all_items(spec, scaling),
        // The generic sweep: the full Table I + Table II pipeline over the
        // (possibly overridden) case grid.
        "sweep" => {
            let mut items = table1_items(spec);
            items.extend(table2_items(spec));
            items
        }
        "faults" => faults_items(spec),
        other => return Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    })
}

/// Fingerprint of the case enumeration a subcommand resolves to, pinning
/// run manifests to the spec (and binary) that produced them.
fn spec_fingerprint(subcommand: &str, spec: &SweepSpec, scaling: &ScalingSpec) -> String {
    let mut h = splitmix64(0x41_6e_67_65_6c_69_6b_61);
    for b in subcommand.bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    h = splitmix64(h ^ spec.fingerprint());
    h = splitmix64(h ^ scaling.fingerprint());
    format!("0x{h:016x}")
}

/// The structure-store directory the invocation asked for (`None` = no
/// store), with a bare `--structure-store` resolving to the context's
/// default location.
fn resolve_store_dir(options: &Options, default: impl FnOnce() -> String) -> Option<String> {
    options
        .structure_store
        .as_ref()
        .map(|explicit| explicit.clone().unwrap_or_else(default))
}

/// The flags every engine-running subcommand shares — `--jobs`, `--quick`,
/// `--stats`, `--structure-store` and the JSONL destination — resolved
/// against the invocation context in one place, so the per-subcommand
/// handlers stop repeating the store/destination/engine plumbing.
struct CommonArgs {
    jobs: usize,
    batch: usize,
    stats: bool,
    store_dir: Option<String>,
    destination: Option<String>,
}

impl Options {
    /// Resolves the shared flags. `store_default` supplies the directory a
    /// bare `--structure-store` means in this context; `jsonl_default` the
    /// stream destination when `--jsonl` was not given (`None` = no
    /// stream). `--no-jsonl` wins over both.
    fn common(
        &self,
        store_default: impl FnOnce() -> String,
        jsonl_default: impl FnOnce() -> Option<String>,
    ) -> CommonArgs {
        CommonArgs {
            jobs: self.jobs,
            batch: self.batch,
            stats: self.stats,
            store_dir: resolve_store_dir(self, store_default),
            destination: if self.no_jsonl {
                None
            } else {
                self.jsonl.clone().or_else(jsonl_default)
            },
        }
    }
}

impl CommonArgs {
    /// An engine over a disk-backed store (when a directory was resolved)
    /// or a fresh memory-only store.
    fn engine(&self) -> Result<SweepEngine, String> {
        let engine = match self.store_dir.as_deref() {
            None => SweepEngine::new(self.jobs),
            Some(dir) => {
                let store = StructureStore::at(dir)
                    .map_err(|e| format!("cannot open structure store {dir}: {e}"))?;
                SweepEngine::with_store(self.jobs, Arc::new(store))
            }
        };
        Ok(engine.with_batch_limit(self.batch))
    }
}

/// An experiment subcommand: single-process, one local shard, or the full
/// multi-process orchestration.
fn cmd_experiment(options: &Options) -> Result<i32, String> {
    if !options.positionals.is_empty() {
        return Err(format!("unexpected argument `{}`", options.positionals[0]));
    }
    let spec = sweep_spec(options);
    let scaling = scaling_spec(options);
    let items = items_for(&options.subcommand, &spec, &scaling)?;
    if options.shards > 0 {
        return cmd_sharded(options, &spec, &scaling, &items);
    }
    if let Some((shard, of)) = options.shard {
        return cmd_shard_slice(options, &spec, &scaling, &items, shard, of);
    }

    let common = options.common(
        || DEFAULT_STORE_DIR.to_string(),
        || {
            Some(format!(
                "results/{}.jsonl",
                options.subcommand.replace('-', "_")
            ))
        },
    );
    let engine = common.engine()?;
    let start = Instant::now();
    let destination = common.destination.clone();
    let records = run_items_with_offset(&engine, &items, 0, destination.as_deref())?;
    let elapsed = start.elapsed();

    let measurements: Vec<Measurement> = records
        .iter()
        .flat_map(|r| r.measurements.iter().cloned())
        .collect();
    print_tables(&render_markdown(&measurements), destination.as_deref());
    if let Some(path) = &options.render_fig3 {
        write_fig3(path, &measurements)?;
        eprintln!("ringlab: wrote the Figure 3 degradation artifact to {path}");
    }

    let stats = engine.cache_stats();
    let store_note = common
        .store_dir
        .as_deref()
        .map(|dir| {
            let store = engine.store_stats();
            format!(
                "; structure store: {} loads / {} constructions at {dir}",
                store.hits, store.misses
            )
        })
        .unwrap_or_default();
    eprintln!(
        "ringlab: {} cases in {:.2}s ({} jobs requested, {:.1} cases/s); \
structure cache: {} hits / {} misses ({:.0}% hit rate){store_note}",
        items.len(),
        elapsed.as_secs_f64(),
        if common.jobs == 0 {
            crate::executor::available_jobs()
        } else {
            common.jobs
        },
        items.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
    );
    if common.stats {
        print_engine_stats(&engine);
    }
    Ok(0)
}

/// Prints the markdown tables on stdout, or on stderr when the JSONL
/// stream already owns stdout (so `ringlab … --jsonl - | tool` stays valid
/// JSONL).
fn print_tables(markdown: &str, destination: Option<&str>) {
    if destination == Some("-") {
        eprint!("{markdown}");
    } else {
        print!("{markdown}");
    }
}

/// One engine's run as a registry snapshot (ring-obs/v1): the global
/// registry's counters and histograms with the engine's own cache / store
/// / executor counters overlaid under their canonical names. Every stats
/// consumer — `--stats`, the worker done event, the daemon — reports from
/// this one schema.
fn engine_snapshot(engine: &SweepEngine) -> ring_obs::Snapshot {
    let mut snapshot = ring_obs::global().snapshot();
    let cache = engine.cache_stats();
    let store = engine.store_stats();
    let exec = engine.exec_stats();
    snapshot.set_counter("cache_hits", cache.hits);
    snapshot.set_counter("cache_misses", cache.misses);
    snapshot.set_counter("store_hits", store.hits);
    snapshot.set_counter("store_misses", store.misses);
    snapshot.set_counter("executor_executed", exec.executed);
    snapshot.set_counter("executor_steals", exec.steals);
    snapshot
}

/// The engine's cache + store + executor statistics as one stderr JSON
/// line, sourced from the [`engine_snapshot`] schema.
fn print_engine_stats(engine: &SweepEngine) {
    #[derive(serde::Serialize)]
    struct Stats {
        cache: EngineCacheBlock,
        store: crate::store::StoreStats,
        executor: crate::executor::ExecutorStats,
    }
    // The fleet variant in `print_fleet_stats` mirrors this block minus
    // `structures` (per-worker memo sizes do not sum meaningfully); keep
    // the shared field names in step — CI and the verify recipe grep them.
    #[derive(serde::Serialize)]
    struct EngineCacheBlock {
        hits: u64,
        misses: u64,
        hit_rate: f64,
        structures: usize,
    }
    let snapshot = engine_snapshot(engine);
    let hits = snapshot.counter("cache_hits");
    let misses = snapshot.counter("cache_misses");
    let total = hits + misses;
    let stats = Stats {
        cache: EngineCacheBlock {
            hits,
            misses,
            hit_rate: if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            },
            structures: engine.cache().len(),
        },
        store: crate::store::StoreStats {
            hits: snapshot.counter("store_hits"),
            misses: snapshot.counter("store_misses"),
        },
        executor: crate::executor::ExecutorStats {
            executed: snapshot.counter("executor_executed"),
            steals: snapshot.counter("executor_steals"),
        },
    };
    eprintln!(
        "ringlab: stats {}",
        serde_json::to_string(&stats).expect("serializable stats")
    );
}

/// Fleet-wide aggregates of a sharded run — the sum over every completed
/// shard's worker counters, printed as one stderr JSON line (the per-shard
/// breakdown stays in the manifest).
fn print_fleet_stats(manifest: &Manifest) {
    #[derive(serde::Serialize)]
    struct FleetStats {
        shards: usize,
        completed_shards: usize,
        records: usize,
        cache: CacheBlock,
        store: StoreBlock,
        executor: StealsBlock,
    }
    // Field names mirror `print_engine_stats`'s cache block (sans the
    // per-process `structures` count).
    #[derive(serde::Serialize)]
    struct CacheBlock {
        hits: u64,
        misses: u64,
        hit_rate: f64,
    }
    #[derive(serde::Serialize)]
    struct StoreBlock {
        hits: u64,
        misses: u64,
    }
    #[derive(serde::Serialize)]
    struct StealsBlock {
        steals: u64,
    }
    // Aggregated from the completed shards' ring-obs/v1 snapshots (the
    // final successful attempt of each shard — a retried shard's earlier
    // attempts never double-count), synthesizing from legacy counters for
    // manifests that predate the snapshots.
    let snapshot = manifest.aggregate_metrics();
    let hits = snapshot.counter("cache_hits");
    let misses = snapshot.counter("cache_misses");
    let cache_total = hits + misses;
    let stats = FleetStats {
        shards: manifest.shards.len(),
        completed_shards: manifest
            .shards
            .iter()
            .filter(|s| s.status == ring_distrib::ShardStatus::Complete)
            .count(),
        records: manifest.aggregate_stats().records,
        cache: CacheBlock {
            hits,
            misses,
            hit_rate: if cache_total == 0 {
                0.0
            } else {
                hits as f64 / cache_total as f64
            },
        },
        store: StoreBlock {
            hits: snapshot.counter("store_hits"),
            misses: snapshot.counter("store_misses"),
        },
        executor: StealsBlock {
            steals: snapshot.counter("executor_steals"),
        },
    };
    eprintln!(
        "ringlab: stats {}",
        serde_json::to_string(&stats).expect("serializable stats")
    );
}

/// The resolved JSONL destination (`None` = disabled).
fn jsonl_destination(options: &Options) -> Option<String> {
    if options.no_jsonl {
        return None;
    }
    Some(
        options
            .jsonl
            .clone()
            .unwrap_or_else(|| format!("results/{}.jsonl", options.subcommand.replace('-', "_"))),
    )
}

/// Opens a JSONL destination for writing (`-` = stdout).
fn open_destination(destination: &str) -> Result<Box<dyn Write + Send>, String> {
    if destination == "-" {
        return Ok(Box::new(std::io::stdout()));
    }
    if let Some(parent) = Path::new(destination).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    Ok(Box::new(std::fs::File::create(destination).map_err(
        |e| format!("cannot create {destination}: {e}"),
    )?))
}

// ---------------------------------------------------------------------
// Sharded execution.
// ---------------------------------------------------------------------

/// `--shard i/M`: runs one shard of the plan in this process, writing the
/// shard's records (with their global case indices) as plain JSONL. The
/// shard files of all M runs merge — `ringlab merge` — into the exact
/// single-process stream.
fn cmd_shard_slice(
    options: &Options,
    spec: &SweepSpec,
    scaling: &ScalingSpec,
    items: &[WorkItem],
    shard: usize,
    of: usize,
) -> Result<i32, String> {
    let ranges = plan_shards(items.len(), of);
    let range = ranges[shard];
    // Fleet mode: a shared store directory is how hand-partitioned workers
    // on one filesystem avoid rebuilding each other's structures.
    let common = options.common(
        || DEFAULT_STORE_DIR.to_string(),
        || {
            Some(format!(
                "results/{}.shard-{shard}-of-{of}.jsonl",
                options.subcommand.replace('-', "_")
            ))
        },
    );
    let engine = common.engine()?;
    let start = Instant::now();
    let records = run_items_with_offset(
        &engine,
        &items[range.start..range.end],
        range.start,
        common.destination.as_deref(),
    )?;
    eprintln!(
        "ringlab: shard {shard}/{of} ({} of {} cases, [{}, {})) in {:.2}s; fingerprint {}",
        range.len(),
        items.len(),
        range.start,
        range.end,
        start.elapsed().as_secs_f64(),
        spec_fingerprint(&options.subcommand, spec, scaling),
    );
    if common.stats {
        print_engine_stats(&engine);
    }
    let _ = records;
    Ok(0)
}

/// Executes items through the engine with the configured JSONL
/// destination; item `i` is case `offset + i` of the overall sweep.
fn run_items_with_offset(
    engine: &SweepEngine,
    items: &[WorkItem],
    offset: usize,
    destination: Option<&str>,
) -> Result<Vec<CaseRecord>, String> {
    let Some(destination) = destination else {
        return Ok(engine.run_with_offset::<Box<dyn Write + Send>>(items, offset, None));
    };
    let out = open_destination(destination)?;
    let sink = JsonlSink::new(out);
    let records = engine.run_with_offset(items, offset, Some(&sink));
    sink.finish();
    if destination != "-" {
        eprintln!(
            "ringlab: streamed {} records to {destination}",
            records.len()
        );
    }
    Ok(records)
}

/// `worker`: one shard of an experiment subcommand over stdio, or — with
/// `--connect ADDR` — a long-lived TCP worker registered with a `ringlab
/// serve` daemon. Either way the shard payload is the ring-distrib/v1
/// protocol; stderr stays human-readable.
fn cmd_worker(options: &Options) -> Result<i32, String> {
    if let Some(addr) = options.connect.clone() {
        return cmd_worker_connect(options, &addr);
    }
    run_worker_shard(options, std::io::stdout(), std::io::stdout())?;
    Ok(0)
}

/// Runs one worker shard, writing the ring-distrib/v1 protocol — start
/// event, record lines, done event — to the given writers (`event_out` and
/// `record_out` are two handles onto the same stream: stdout twice for the
/// child-process path, the daemon socket twice for `--connect`).
fn run_worker_shard<E: Write, R: Write + Send>(
    options: &Options,
    mut event_out: E,
    record_out: R,
) -> Result<(), String> {
    let Some(subcommand) = options.positionals.first() else {
        return Err(format!("worker needs a subcommand\n{USAGE}"));
    };
    let Some((shard, of)) = options.shard else {
        return Err("worker requires --shard i/M".into());
    };
    let spec = sweep_spec(options);
    let scaling = scaling_spec(options);
    let items = items_for(subcommand, &spec, &scaling)?;
    let range = plan_shards(items.len(), of)[shard];
    let fingerprint = spec_fingerprint(subcommand, &spec, &scaling);

    let start = StartEvent::new(shard, of, range.start, range.end, &fingerprint);
    writeln!(
        event_out,
        "{}",
        serde_json::to_string(&start).expect("serializable event")
    )
    .and_then(|()| event_out.flush())
    .map_err(|e| format!("cannot write the start event: {e}"))?;

    // Orchestrated workers receive the run's store directory explicitly;
    // a hand-launched worker may also point itself at a shared one. The
    // protocol owns the stream, so the shared JSONL destination is unused.
    let common = options.common(|| DEFAULT_STORE_DIR.to_string(), || None);
    let engine = common.engine()?;
    // The done event reports this job's metrics as a delta against the
    // process registry, so a long-lived TCP worker serving many jobs (or a
    // retried shard in one process) never re-reports earlier attempts.
    let baseline = ring_obs::global().snapshot();
    let tally = ShardTally::new(record_out, fail_after_from_env());
    let sink = JsonlSink::new(tally);
    engine.run_with_offset(&items[range.start..range.end], range.start, Some(&sink));
    let tally = sink.finish();

    let cache = engine.cache_stats();
    let store = engine.store_stats();
    let exec = engine.exec_stats();
    let mut metrics = ring_obs::global().snapshot().delta(&baseline);
    // The engine's own counters are per-engine (fresh every job), so they
    // overlay the delta exactly under their canonical registry names.
    metrics.set_counter("cache_hits", cache.hits);
    metrics.set_counter("cache_misses", cache.misses);
    metrics.set_counter("store_hits", store.hits);
    metrics.set_counter("store_misses", store.misses);
    metrics.set_counter("executor_executed", exec.executed);
    metrics.set_counter("executor_steals", exec.steals);
    let done = DoneEvent::new(
        shard,
        tally.lines() as usize,
        tally.checksum(),
        cache.hits,
        cache.misses,
        exec.steals,
    )
    .with_store(store.hits, store.misses)
    .with_metrics(metrics);
    writeln!(
        event_out,
        "{}",
        serde_json::to_string(&done).expect("serializable event")
    )
    .and_then(|()| event_out.flush())
    .map_err(|e| format!("cannot write the done event: {e}"))?;
    Ok(())
}

/// `worker --connect ADDR`: dial the daemon, register with a hello frame,
/// and serve job frames until dismissed. A broken daemon socket mid-job
/// abandons the shard (the orchestrator already counts it as a retryable
/// failure) and reconnects; once the daemon is gone for good the worker
/// exits cleanly.
fn cmd_worker_connect(options: &Options, addr: &str) -> Result<i32, String> {
    use std::io::{BufRead, BufReader};

    if !options.positionals.is_empty() || options.shard.is_some() {
        return Err(
            "worker --connect takes no subcommand or --shard: jobs arrive as daemon frames".into(),
        );
    }
    let name = format!("worker-{}", std::process::id());
    let mut registered_before = false;
    loop {
        let stream = match connect_with_retry(addr) {
            Ok(stream) => stream,
            Err(e) if registered_before => {
                eprintln!("ringlab: worker {name}: daemon at {addr} is gone ({e}); exiting");
                return Ok(0);
            }
            Err(e) => return Err(format!("cannot connect to {addr}: {e}")),
        };
        let hello = serde::Value::Object(vec![
            ("event".to_string(), serde::Value::Str("hello".to_string())),
            (
                "schema".to_string(),
                serde::Value::Str(ring_serve::SCHEMA.to_string()),
            ),
            ("worker".to_string(), serde::Value::Str(name.clone())),
        ]);
        let mut hello_out = &stream;
        if writeln!(
            hello_out,
            "{}",
            serde_json::to_string(&hello).expect("serializable frame")
        )
        .and_then(|()| hello_out.flush())
        .is_err()
        {
            continue;
        }
        registered_before = true;
        eprintln!("ringlab: worker {name}: registered with {addr}");
        let reader = BufReader::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => continue,
        });
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let Ok(frame) = serde_json::from_str(&line) else {
                break;
            };
            match frame.get("event").and_then(serde::Value::as_str) {
                Some("job") => {
                    let argv: Vec<String> = frame
                        .get("argv")
                        .and_then(serde::Value::as_array)
                        .map(|items| {
                            items
                                .iter()
                                .filter_map(|v| v.as_str().map(str::to_string))
                                .collect()
                        })
                        .unwrap_or_default();
                    if let Err(e) = run_tcp_job(&argv, &stream) {
                        // The stream may hold a half-written shard: poison
                        // the connection and re-register on a fresh one.
                        eprintln!("ringlab: worker {name}: job failed: {e}");
                        break;
                    }
                }
                Some("shutdown") => {
                    eprintln!("ringlab: worker {name}: dismissed by the daemon");
                    return Ok(0);
                }
                _ => break,
            }
        }
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Connects to the daemon, retrying for ~5 seconds (a worker fleet often
/// starts before — or reconnects across — the daemon's listener).
fn connect_with_retry(addr: &str) -> Result<std::net::TcpStream, String> {
    let mut last = String::from("no attempt made");
    for attempt in 0..20 {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(250));
        }
        match std::net::TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = e.to_string(),
        }
    }
    Err(last)
}

/// Executes one daemon job frame: parse the argv exactly like the
/// child-process worker would have, then run the shard with the daemon
/// socket as the protocol stream. Panics are caught so a poisoned case
/// cannot take the whole worker down silently.
fn run_tcp_job(argv: &[String], stream: &std::net::TcpStream) -> Result<(), String> {
    let parsed = parse(argv).map_err(|e| format!("bad job argv: {e}"))?;
    if parsed.subcommand != "worker" || parsed.connect.is_some() {
        return Err("job frames must carry a plain `worker` argv".into());
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_worker_shard(&parsed, stream, stream)
    })) {
        Ok(result) => result,
        Err(_) => Err("the shard panicked".into()),
    }
}

/// `serve`: the sweep-as-a-service daemon. Accepts sweep specs over
/// HTTP/JSON, dispatches shards to registered `worker --connect` processes
/// over TCP, and streams per-case JSONL to subscribers; every run
/// directory stays `ringlab resume`-able.
fn cmd_serve(options: &Options) -> Result<i32, String> {
    if !options.positionals.is_empty() {
        return Err(format!("unexpected argument `{}`", options.positionals[0]));
    }
    let Some(listen) = options.listen.clone() else {
        return Err(format!("serve requires --listen ADDR\n{USAGE}"));
    };
    let data_dir = PathBuf::from(
        options
            .data_dir
            .clone()
            .unwrap_or_else(|| "results/serve".to_string()),
    );
    // The resolver replays a submitted spec through the exact same
    // enumeration pipeline the CLI uses, so a daemon run records the same
    // fingerprint (and case count) a `ringlab sweep` of the spec would.
    let runtime = options.clone();
    let resolver: ring_serve::SpecResolver = Box::new(move |spec: &SpecParams| {
        let resolved = options_from_spec(spec, &runtime);
        let sweep = sweep_spec(&resolved);
        let scaling = scaling_spec(&resolved);
        let items = items_for(&spec.subcommand, &sweep, &scaling)?;
        Ok(ring_serve::ResolvedSpec {
            total_cases: items.len(),
            fingerprint: spec_fingerprint(&spec.subcommand, &sweep, &scaling),
        })
    });
    ring_serve::serve(ring_serve::ServeConfig {
        listen,
        data_dir,
        jobs_per_worker: if options.jobs == 0 { 1 } else { options.jobs },
        retries: options.retries,
        shard_timeout: options.shard_timeout.map(std::time::Duration::from_secs),
        lease_timeout: std::time::Duration::from_secs(options.lease_timeout.unwrap_or(600)),
        resolver,
    })?;
    Ok(0)
}

/// `--shards M`: plans, orchestrates M worker processes, merges, and
/// renders — one command, output byte-identical to the single-process run.
fn cmd_sharded(
    options: &Options,
    spec: &SweepSpec,
    scaling: &ScalingSpec,
    items: &[WorkItem],
) -> Result<i32, String> {
    let run_dir =
        PathBuf::from(options.run_dir.clone().unwrap_or_else(|| {
            format!("results/distrib/{}", options.subcommand.replace('-', "_"))
        }));
    let ranges = plan_shards(items.len(), options.shards);
    let fingerprint = spec_fingerprint(&options.subcommand, spec, scaling);
    let destination = jsonl_destination(options);
    // The fleet's shared structure store defaults into the run directory,
    // next to the shard files it accelerates.
    let store_dir = resolve_store_dir(options, || {
        run_dir.join("structures").to_string_lossy().into_owned()
    });
    let manifest = Manifest::new(
        SpecParams {
            subcommand: options.subcommand.clone(),
            quick: options.quick,
            sizes: options.sizes.clone(),
            universe_factors: options.universe_factors.clone(),
            reps: options.reps,
            seed: options.seed,
            structure_seeds: options.structure_seeds,
            fault_drops: options.fault_drops.clone(),
            fault_crashes: options.fault_crashes,
            fault_churn: options.fault_churn,
            fault_adversarial: options.fault_adversarial,
        },
        fingerprint,
        items.len(),
        &ranges,
        1,
        // Empty = no JSONL output (`--no-jsonl`): a resume of this run
        // must not invent a stream the original invocation suppressed.
        destination.clone().unwrap_or_default(),
    )
    .with_structure_store(store_dir.unwrap_or_default())
    .with_shard_timeout(options.shard_timeout);
    std::fs::create_dir_all(&run_dir)
        .map_err(|e| format!("cannot create {}: {e}", run_dir.display()))?;
    let manifest = Mutex::new(manifest);
    orchestrate_and_finish(options, &run_dir, &manifest, destination)
}

/// `resume`: revalidates a run directory against its manifest, re-runs
/// only the shards whose files do not match, and finishes the run.
fn cmd_resume(options: &Options) -> Result<i32, String> {
    let run_dir = match (&options.run_dir, options.positionals.as_slice()) {
        (Some(dir), []) => PathBuf::from(dir),
        (None, [dir]) => PathBuf::from(dir),
        (None, []) => return Err(format!("resume needs a run directory\n{USAGE}")),
        _ => return Err("resume takes exactly one run directory".into()),
    };
    let mut manifest = Manifest::load(&run_dir)?;

    // The manifest must describe a case enumeration this binary reproduces.
    let resumed = options_from_spec(&manifest.spec, options);
    let spec = sweep_spec(&resumed);
    let scaling = scaling_spec(&resumed);
    let items = items_for(&manifest.spec.subcommand, &spec, &scaling)?;
    let fingerprint = spec_fingerprint(&manifest.spec.subcommand, &spec, &scaling);
    if fingerprint != manifest.spec_fingerprint || items.len() != manifest.total_cases {
        return Err(format!(
            "manifest fingerprint {} does not match this binary's enumeration {} \
             ({} cases vs {}): refusing to mix shards across specs",
            manifest.spec_fingerprint,
            fingerprint,
            manifest.total_cases,
            items.len(),
        ));
    }

    let demoted = manifest
        .revalidate_completed(&run_dir)
        .map_err(|e| format!("cannot revalidate {}: {e}", run_dir.display()))?;
    if !demoted.is_empty() {
        eprintln!(
            "ringlab: shards {demoted:?} no longer match their recorded checksums; re-running"
        );
    }
    // The run's structure store revalidates like its shard files: any file
    // that no longer proves itself (checksum, canonical form, key) is
    // dropped here and rebuilt by the re-launched workers — and the dead
    // fleet's orphaned claim/tmp files are swept so no re-launched worker
    // waits out a claim nobody holds.
    if !manifest.structure_store.is_empty() {
        let store_path = PathBuf::from(&manifest.structure_store);
        let swept = crate::store::sweep_stale_files(&store_path)
            .map_err(|e| format!("cannot sweep store {}: {e}", store_path.display()))?;
        if swept > 0 {
            eprintln!("ringlab: swept {swept} stale claim/tmp file(s) from the structure store");
        }
        let removed = crate::store::revalidate_store_dir(&store_path)
            .map_err(|e| format!("cannot revalidate store {}: {e}", store_path.display()))?;
        if !removed.is_empty() {
            eprintln!(
                "ringlab: {} structure file(s) failed revalidation and will be rebuilt: {:?}",
                removed.len(),
                removed
            );
        }
    }
    let pending = manifest.incomplete_shards().len();
    eprintln!(
        "ringlab: resuming {}: {pending} of {} shards to run",
        run_dir.display(),
        manifest.shards.len()
    );
    let destination = if options.jsonl.is_some() || options.no_jsonl {
        jsonl_destination(&Options {
            subcommand: manifest.spec.subcommand.clone(),
            ..options.clone()
        })
    } else if manifest.output.is_empty() {
        // The run was started with --no-jsonl; keep suppressing the stream.
        None
    } else {
        Some(manifest.output.clone())
    };
    let manifest = Mutex::new(manifest);
    orchestrate_and_finish(&resumed, &run_dir, &manifest, destination)
}

/// Shared tail of `--shards` and `resume`: run the incomplete shards,
/// merge, render tables, report statistics.
fn orchestrate_and_finish(
    options: &Options,
    run_dir: &Path,
    manifest: &Mutex<Manifest>,
    destination: Option<String>,
) -> Result<i32, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate ringlab: {e}"))?;
    let (spec_params, jobs_per_worker, shard_count, store_dir, recorded_timeout) = {
        let m = manifest.lock().expect("manifest lock");
        (
            m.spec.clone(),
            m.jobs_per_worker,
            m.shards.len(),
            m.structure_store.clone(),
            m.shard_timeout,
        )
    };
    let orchestration = OrchestratorOptions {
        concurrency: if options.jobs == 0 {
            crate::executor::available_jobs()
        } else {
            options.jobs
        },
        retries: options.retries,
        // An explicit flag wins; otherwise `resume` supervises with the
        // budget the original run recorded.
        shard_timeout: options
            .shard_timeout
            .or(recorded_timeout)
            .map(std::time::Duration::from_secs),
    };
    let start = Instant::now();
    let outcome = run_pending_shards(run_dir, manifest, &orchestration, &|range| {
        let mut cmd = Command::new(&exe);
        cmd.args(spec_params.worker_args(jobs_per_worker, range, shard_count, &store_dir));
        // Tracing and batching ride along runtime-only: worker sidecars
        // land next to the shard files, batching only reshapes worker
        // scheduling — the protocol stream stays byte-identical either way.
        if options.trace {
            cmd.arg("--trace-dir").arg(run_dir);
        }
        if options.batch > 1 {
            cmd.arg("--batch").arg(options.batch.to_string());
        }
        cmd
    })
    .map_err(|e| format!("orchestration failed: {e}"))?;
    let elapsed = start.elapsed();

    let manifest = manifest.lock().expect("manifest lock");
    if !outcome.failed.is_empty() {
        return Err(format!(
            "shards {:?} failed after {} attempt(s) each; fix the cause and run \
             `ringlab resume {}`",
            outcome.failed,
            options.retries + 1,
            run_dir.display(),
        ));
    }

    // Merge the shard files into the destination, parsing each record
    // line as it streams past so only the measurements (for the tables)
    // are retained — never the whole merged byte stream.
    let inputs = manifest.shard_files(run_dir);
    let out: Box<dyn Write + Send> = match destination.as_deref() {
        Some(dest) => open_destination(dest)?,
        None => Box::new(std::io::sink()),
    };
    let mut collector = MeasurementCollector::new(out);
    let report = merge_shards(&inputs, &mut collector, Some(manifest.total_cases))
        .map_err(|e| format!("merge failed: {e}"))?;
    let measurements = collector.finish()?;
    print_tables(&render_markdown(&measurements), destination.as_deref());

    let stats = manifest.aggregate_stats();
    let store_note = if manifest.structure_store.is_empty() {
        String::new()
    } else {
        format!(
            ", {} store loads / {} constructions",
            stats.store_hits, stats.store_misses
        )
    };
    eprintln!(
        "ringlab: {} cases over {} shards ({} run now, {} concurrent workers) in {:.2}s; \
merged {} records (checksum {}); workers: {} cache hits / {} misses, {} steals{store_note}; \
manifest {}",
        manifest.total_cases,
        manifest.shards.len(),
        outcome.completed.len(),
        orchestration.concurrency,
        elapsed.as_secs_f64(),
        report.records,
        report.checksum,
        stats.cache_hits,
        stats.cache_misses,
        stats.steals,
        Manifest::path_in(run_dir).display(),
    );
    if let Some(dest) = destination.as_deref() {
        if dest != "-" {
            eprintln!("ringlab: merged output at {dest}");
        }
    }
    if options.stats {
        print_fleet_stats(&manifest);
    }
    Ok(0)
}

/// `structures`: maintenance of an on-disk structure store — `prebuild`
/// constructs and publishes every structure a subcommand will request,
/// `verify` validates every file, `gc` drops what no longer proves itself
/// plus unreferenced blobs, `migrate` rewrites a v1 store onto the v2
/// layout, `stats` reports per-kind dedup ratios.
fn cmd_structures(options: &Options) -> Result<i32, String> {
    let Some(action) = options.positionals.first() else {
        return Err(format!("structures needs an action\n{USAGE}"));
    };
    let dir = resolve_store_dir(options, || DEFAULT_STORE_DIR.to_string())
        .unwrap_or_else(|| DEFAULT_STORE_DIR.to_string());
    let dir_path = PathBuf::from(&dir);
    match action.as_str() {
        "prebuild" => {
            let Some(subcommand) = options.positionals.get(1) else {
                return Err(format!("structures prebuild needs a subcommand\n{USAGE}"));
            };
            if options.positionals.len() > 2 {
                return Err(format!("unexpected argument `{}`", options.positionals[2]));
            }
            let spec = sweep_spec(options);
            let scaling = scaling_spec(options);
            let items = items_for(subcommand, &spec, &scaling)?;
            // One entry per distinct key, materialisation hint maximised
            // over every item that will request it.
            let mut keys: Vec<(ring_combinat::StructureKey, usize)> = Vec::new();
            for item in &items {
                for (key, hint) in item.structure_keys() {
                    match keys.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, existing)) => *existing = (*existing).max(hint),
                        None => keys.push((key, hint)),
                    }
                }
            }
            if options.v1_format {
                // The legacy one-file-per-key layout — the fixture path for
                // `structures migrate` (and its CI smoke).
                for (key, hint) in &keys {
                    crate::store::write_v1_file(&dir_path, key, *hint)
                        .map_err(|e| format!("cannot write v1 file into {dir}: {e}"))?;
                }
                eprintln!(
                    "ringlab: prebuilt {} legacy v1 structure file(s) for `{subcommand}` \
into {dir}",
                    keys.len(),
                );
                return Ok(0);
            }
            let store = StructureStore::at(&dir_path)
                .map_err(|e| format!("cannot open structure store {dir}: {e}"))?;
            for (key, hint) in &keys {
                match key.kind {
                    ring_combinat::StructureKind::StrongDistinguisher => {
                        let strong = store
                            .try_strong_distinguisher(key.universe, key.seed)
                            .map_err(|e| e.to_string())?;
                        let prefix = strong.prefix_size_for((*hint).max(2));
                        for i in 0..prefix {
                            strong.set(i);
                        }
                    }
                    ring_combinat::StructureKind::Distinguisher => {
                        store
                            .try_distinguisher(key.universe, key.n as usize, key.seed)
                            .map_err(|e| e.to_string())?;
                    }
                    ring_combinat::StructureKind::SelectiveFamily => {
                        store
                            .try_selective_family(key.universe, key.n as usize, key.seed)
                            .map_err(|e| e.to_string())?;
                    }
                }
            }
            store.flush().map_err(|e| e.to_string())?;
            let stats = store.stats();
            eprintln!(
                "ringlab: prebuilt {} structure(s) for `{subcommand}` into {dir} \
({} constructed, {} already present)",
                keys.len(),
                stats.misses,
                stats.hits,
            );
            Ok(0)
        }
        "migrate" => {
            let store = StructureStore::at(&dir_path)
                .map_err(|e| format!("cannot open structure store {dir}: {e}"))?;
            let report = store
                .migrate()
                .map_err(|e| format!("cannot migrate {dir}: {e}"))?;
            eprintln!(
                "ringlab: migrated {dir} to {}: {} materialised file(s) re-encoded, \
{} strong file(s) replaced by universal blobs, {} corrupt file(s) dropped",
                ring_combinat::STORE_SCHEMA_V2,
                report.materialised,
                report.strong,
                report.dropped,
            );
            Ok(0)
        }
        "stats" => {
            let stats = crate::store::store_dir_stats(&dir_path)
                .map_err(|e| format!("cannot stat {dir}: {e}"))?;
            eprintln!(
                "ringlab: structures stats {}",
                serde_json::to_string(&stats).expect("serializable stats")
            );
            Ok(0)
        }
        "verify" => {
            let reports = crate::store::scan_store_dir(&dir_path)
                .map_err(|e| format!("cannot scan {dir}: {e}"))?;
            let mut corrupt = 0usize;
            for report in &reports {
                match &report.error {
                    None => eprintln!(
                        "ringlab: ok      {} ({} sets)",
                        report.path.display(),
                        report.sets
                    ),
                    Some(error) => {
                        corrupt += 1;
                        eprintln!("ringlab: CORRUPT {}: {error}", report.path.display());
                    }
                }
            }
            eprintln!(
                "ringlab: verified {dir}: {} file(s), {corrupt} corrupt",
                reports.len()
            );
            Ok(if corrupt == 0 { 0 } else { 1 })
        }
        "gc" => {
            let report = crate::store::gc_store_dir(&dir_path)
                .map_err(|e| format!("cannot gc {dir}: {e}"))?;
            eprintln!(
                "ringlab: gc {dir}: kept {} file(s), removed {} corrupt, {} stale tmp/claim, \
{} unreferenced blob(s)",
                report.kept, report.corrupt, report.stale, report.unreferenced
            );
            Ok(0)
        }
        other => Err(format!("unknown structures action `{other}`\n{USAGE}")),
    }
}

/// `merge`: standalone k-way merge of shard files (or of a run directory's
/// shards) into one JSONL stream.
fn cmd_merge(options: &Options) -> Result<i32, String> {
    let destination = options.jsonl.clone().unwrap_or_else(|| "-".into());
    let (inputs, expect_total) = if let Some(dir) = &options.run_dir {
        if !options.positionals.is_empty() {
            return Err("merge takes either --run-dir or shard files, not both".into());
        }
        let run_dir = PathBuf::from(dir);
        let manifest = Manifest::load(&run_dir)?;
        if !manifest.is_complete() {
            return Err(format!(
                "run directory {} has incomplete shards; run `ringlab resume {}` first",
                run_dir.display(),
                run_dir.display(),
            ));
        }
        (manifest.shard_files(&run_dir), Some(manifest.total_cases))
    } else {
        if options.positionals.is_empty() {
            return Err(format!("merge needs shard files or --run-dir\n{USAGE}"));
        }
        // Hand-listed shard files: indices must be strictly ascending, but
        // the full 0..total sequence is only enforced when the caller
        // merges a complete run directory.
        (
            options.positionals.iter().map(PathBuf::from).collect(),
            None,
        )
    };
    let mut out = open_destination(&destination)?;
    let report =
        merge_shards(&inputs, &mut out, expect_total).map_err(|e| format!("merge failed: {e}"))?;
    eprintln!(
        "ringlab: merged {} records from {} shard file(s) (checksum {})",
        report.records,
        inputs.len(),
        report.checksum,
    );
    Ok(0)
}

/// `trace`: span-trace sidecar inspection. `summarize <RUN_DIR>` scans the
/// directory's `trace-*.jsonl` files and renders a per-span time-budget
/// table — where a run's wall-clock actually went, without re-running it.
fn cmd_trace(options: &Options) -> Result<i32, String> {
    match options.positionals.first().map(String::as_str) {
        Some("summarize") => {
            let dir = match (options.positionals.get(1), &options.run_dir) {
                (Some(dir), None) => PathBuf::from(dir),
                (None, Some(dir)) => PathBuf::from(dir),
                (None, None) => {
                    return Err(format!("trace summarize needs a run directory\n{USAGE}"))
                }
                _ => return Err("trace summarize takes exactly one run directory".into()),
            };
            let (table, files, events) = summarize_traces(&dir)?;
            print!("{table}");
            eprintln!(
                "ringlab: summarized {events} span(s) from {files} trace file(s) in {}",
                dir.display()
            );
            Ok(0)
        }
        Some(other) => Err(format!("unknown trace action `{other}`\n{USAGE}")),
        None => Err(format!("trace needs an action\n{USAGE}")),
    }
}

/// Aggregates every `trace-*.jsonl` sidecar under `dir` into one markdown
/// time-budget table (one row per span name, heaviest first), returning
/// the table plus the file and span-end counts. Durations funnel through
/// [`ring_obs::Histogram`]s, so the percentiles are the same log2-bucket
/// upper bounds `/v1/metrics` reports.
fn summarize_traces(dir: &Path) -> Result<(String, usize, u64), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files = 0usize;
    let mut spans: std::collections::BTreeMap<String, ring_obs::Histogram> = Default::default();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("trace-") && name.ends_with(".jsonl")) {
            continue;
        }
        files += 1;
        let text = std::fs::read_to_string(entry.path())
            .map_err(|e| format!("cannot read {}: {e}", entry.path().display()))?;
        for line in text.lines().filter(|line| !line.trim().is_empty()) {
            let value: serde::Value = serde_json::from_str(line)
                .map_err(|e| format!("corrupt trace line in {name}: {e}"))?;
            if value.get("event").and_then(serde::Value::as_str) != Some("end") {
                continue;
            }
            let Some(span) = value.get("span").and_then(serde::Value::as_str) else {
                continue;
            };
            let dur = value
                .get("dur_ns")
                .and_then(serde::Value::as_u64)
                .unwrap_or(0);
            spans.entry(span.to_string()).or_default().record(dur);
        }
    }
    if files == 0 {
        return Err(format!(
            "no trace-*.jsonl sidecars in {} (run with --trace first)",
            dir.display()
        ));
    }
    let mut snapshots: Vec<ring_obs::HistogramSnapshot> = spans
        .iter()
        .map(|(name, histogram)| histogram.snapshot(name))
        .collect();
    snapshots.sort_by(|a, b| b.sum_ns.cmp(&a.sum_ns).then_with(|| a.name.cmp(&b.name)));
    // Shares are of the summed span time, not wall-clock: spans nest
    // (a `case` contains its `construct_structure`s) and processes run in
    // parallel, so the column answers "which stage dominates", not "how
    // long did the run take".
    let total: u64 = snapshots.iter().map(|s| s.sum_ns).sum();
    let events: u64 = snapshots.iter().map(|s| s.count).sum();
    let mut out = String::from(
        "| span | count | total | share | p50 | p90 | p99 |\n|---|---|---|---|---|---|---|\n",
    );
    for snapshot in &snapshots {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1}% | {} | {} | {} |\n",
            snapshot.name,
            snapshot.count,
            format_ns(snapshot.sum_ns),
            100.0 * snapshot.sum_ns as f64 / total.max(1) as f64,
            format_ns(snapshot.p50()),
            format_ns(snapshot.p90()),
            format_ns(snapshot.p99()),
        ));
    }
    Ok((out, files, events))
}

/// Renders a nanosecond quantity with a human-scaled unit (the span table
/// mixes sub-microsecond lock probes with multi-second shard attempts).
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Rebuilds the spec-affecting options recorded in a manifest, keeping the
/// caller's runtime flags (jobs, retries, stats).
fn options_from_spec(spec: &SpecParams, runtime: &Options) -> Options {
    Options {
        subcommand: spec.subcommand.clone(),
        quick: spec.quick,
        sizes: spec.sizes.clone(),
        universe_factors: spec.universe_factors.clone(),
        reps: spec.reps,
        seed: spec.seed,
        structure_seeds: spec.structure_seeds,
        fault_drops: spec.fault_drops.clone(),
        fault_crashes: spec.fault_crashes,
        fault_churn: spec.fault_churn,
        fault_adversarial: spec.fault_adversarial,
        jsonl: None,
        no_jsonl: false,
        shards: 0,
        shard: None,
        run_dir: None,
        positionals: Vec::new(),
        ..runtime.clone()
    }
}

/// A writer that forwards every byte to its destination while parsing each
/// completed JSONL line into the measurements the tables need — so a merge
/// stays streaming (only the current partial line and the parsed
/// measurements are retained, never the merged byte stream).
struct MeasurementCollector<W: Write> {
    inner: W,
    partial: Vec<u8>,
    measurements: Vec<Measurement>,
    error: Option<String>,
}

impl<W: Write> MeasurementCollector<W> {
    fn new(inner: W) -> Self {
        MeasurementCollector {
            inner,
            partial: Vec::new(),
            measurements: Vec::new(),
            error: None,
        }
    }

    fn absorb(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        self.partial.extend_from_slice(bytes);
        while let Some(pos) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=pos).collect();
            let parsed = std::str::from_utf8(&line[..line.len() - 1])
                .map_err(|_| "merged record is not UTF-8".to_string())
                .and_then(|text| {
                    serde_json::from_str(text).map_err(|e| format!("merged record: {e}"))
                })
                .and_then(|value| CaseRecord::from_json(&value));
            match parsed {
                Ok(record) => self.measurements.extend(record.measurements),
                Err(e) => {
                    self.error = Some(e);
                    return;
                }
            }
        }
    }

    fn finish(self) -> Result<Vec<Measurement>, String> {
        if let Some(error) = self.error {
            return Err(error);
        }
        if !self.partial.is_empty() {
            return Err("merged stream ended mid-record".into());
        }
        Ok(self.measurements)
    }
}

impl<W: Write> Write for MeasurementCollector<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.absorb(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Renders the measurements as the familiar markdown sections, grouped by
/// experiment in canonical order. Table and figure sections compress
/// repetitions via [`aggregate`]; the scaling and audit sections list raw
/// rows, matching the former per-experiment binaries.
pub fn render_markdown(measurements: &[Measurement]) -> String {
    const SECTIONS: [(&str, &str, bool); 6] = [
        (
            "table1",
            "Table I — deterministic solutions in the general setting",
            true,
        ),
        (
            "table2",
            "Table II — deterministic solutions with a common sense of direction",
            true,
        ),
        (
            "fig1",
            "Figure 1 — reductions among coordination problems (odd n / lazy / perceptive)",
            true,
        ),
        (
            "fig2",
            "Figure 2 — reductions among coordination problems (basic model, even n)",
            true,
        ),
        (
            "distinguisher_scaling",
            "Distinguisher and selective-family scaling (Section IV)",
            false,
        ),
        ("lower_bounds", "Lower-bound audits (Lemmas 5 and 6)", false),
    ];
    let mut out = String::new();
    for (key, title, aggregated) in SECTIONS {
        let section: Vec<Measurement> = measurements
            .iter()
            .filter(|m| m.experiment == key)
            .cloned()
            .collect();
        if section.is_empty() {
            continue;
        }
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("# {title}\n\n"));
        let rows = if aggregated {
            aggregate(&section)
        } else {
            section
        };
        out.push_str(&format_markdown_table(&rows));
    }
    let faults: Vec<&Measurement> = measurements
        .iter()
        .filter(|m| m.experiment == "faults")
        .collect();
    if !faults.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("# Fault degradation — rounds and failure rates under injected faults\n\n");
        out.push_str(&render_faults_table(&faults));
    }
    out
}

/// The degradation table of the `faults` experiment: per (fault setting,
/// protocol, n, universe) group, the p50/p90 rounds over completed runs and
/// the failure / timeout percentages over all runs. The raw measurement
/// pairs per run are a `rounds` row (`None` = failed or timed out) and a
/// 0/1 `timeout` row; repetitions land in the same group.
fn render_faults_table(measurements: &[&Measurement]) -> String {
    #[derive(Default)]
    struct Bucket {
        completed_rounds: Vec<f64>,
        runs: usize,
        timeouts: u64,
    }
    // Keyed by the numeric drop rate first, so the table reads in
    // increasing-severity order rather than lexicographic label order.
    let drop_rate = |setting: &str| -> u64 {
        setting
            .strip_prefix("drop ")
            .and_then(|rest| rest.split('/').next())
            .and_then(|digits| digits.parse().ok())
            .unwrap_or(u64::MAX)
    };
    let mut groups: std::collections::BTreeMap<(u64, String, String, usize, u64), Bucket> =
        std::collections::BTreeMap::new();
    for m in measurements {
        let Some((problem, kind)) = m.quantity.rsplit_once(": ") else {
            continue;
        };
        let key = (
            drop_rate(&m.setting),
            m.setting.clone(),
            problem.to_string(),
            m.n,
            m.universe,
        );
        let bucket = groups.entry(key).or_default();
        match kind {
            "rounds" => {
                bucket.runs += 1;
                if let Some(rounds) = m.value {
                    bucket.completed_rounds.push(rounds);
                }
            }
            "timeout" => bucket.timeouts += m.value.unwrap_or(0.0) as u64,
            _ => {}
        }
    }
    let mut out = String::from(
        "| setting | protocol | n | universe | runs | p50 rounds | p90 rounds \
| failure % | timeout % |\n|---|---|---|---|---|---|---|---|---|\n",
    );
    for ((_, setting, problem, n, universe), mut bucket) in groups {
        bucket
            .completed_rounds
            .sort_by(|a, b| a.partial_cmp(b).expect("finite round counts"));
        let percentile = |p: f64| -> String {
            if bucket.completed_rounds.is_empty() {
                "-".into()
            } else {
                let idx = ((bucket.completed_rounds.len() - 1) as f64 * p).round() as usize;
                format!("{:.0}", bucket.completed_rounds[idx])
            }
        };
        let runs = bucket.runs.max(1) as f64;
        let failures = bucket.runs - bucket.completed_rounds.len();
        out.push_str(&format!(
            "| {setting} | {problem} | {n} | {universe} | {} | {} | {} | {:.0} | {:.0} |\n",
            bucket.runs,
            percentile(0.5),
            percentile(0.9),
            100.0 * failures as f64 / runs,
            100.0 * bucket.timeouts as f64 / runs,
        ));
    }
    out
}

/// The Figure-3-style degradation artifact: per protocol, the median
/// rounds to completion as the message-drop rate grows — one row per drop
/// rate, one column per ring size, the failure percentage of runs in
/// parentheses. Built from the same measurement pairs as the faults table,
/// aggregated over universes and repetitions (and over the crash/churn
/// axes, so render it from a drop-only sweep for a clean Figure 3).
fn render_fig3(measurements: &[Measurement]) -> String {
    use std::collections::{BTreeMap, BTreeSet};
    #[derive(Default)]
    struct Cell {
        completed_rounds: Vec<f64>,
        runs: usize,
    }
    let drop_rate = |setting: &str| -> Option<u64> {
        setting
            .strip_prefix("drop ")
            .and_then(|rest| rest.split('/').next())
            .and_then(|digits| digits.parse().ok())
    };
    let mut cells: BTreeMap<(String, u64, usize), Cell> = BTreeMap::new();
    let mut sizes: BTreeSet<usize> = BTreeSet::new();
    for m in measurements.iter().filter(|m| m.experiment == "faults") {
        let Some((problem, kind)) = m.quantity.rsplit_once(": ") else {
            continue;
        };
        if kind != "rounds" {
            continue;
        }
        let Some(drop) = drop_rate(&m.setting) else {
            continue;
        };
        sizes.insert(m.n);
        let cell = cells.entry((problem.to_string(), drop, m.n)).or_default();
        cell.runs += 1;
        if let Some(rounds) = m.value {
            cell.completed_rounds.push(rounds);
        }
    }
    let mut out = String::from(
        "# Figure 3 — protocol degradation under message loss\n\n\
         Median rounds to completion per per-mille message-drop rate; the\n\
         failure percentage of runs (round-limit hits) in parentheses. `-`\n\
         marks a cell where no run completed.\n",
    );
    for cell in cells.values_mut() {
        cell.completed_rounds
            .sort_by(|a, b| a.partial_cmp(b).expect("finite round counts"));
    }
    let problems: BTreeSet<String> = cells.keys().map(|(p, _, _)| p.clone()).collect();
    let drops: BTreeSet<u64> = cells.keys().map(|&(_, d, _)| d).collect();
    for problem in problems {
        out.push_str(&format!("\n## {problem}\n\n| drop (per mille) |"));
        for &n in &sizes {
            out.push_str(&format!(" n={n} |"));
        }
        out.push_str("\n|---|");
        out.push_str(&"---|".repeat(sizes.len()));
        out.push('\n');
        for &drop in &drops {
            out.push_str(&format!("| {drop} |"));
            for &n in &sizes {
                match cells.get(&(problem.clone(), drop, n)) {
                    None => out.push_str(" · |"),
                    Some(cell) => {
                        let failures = cell.runs - cell.completed_rounds.len();
                        let failure_pct = 100.0 * failures as f64 / cell.runs.max(1) as f64;
                        let p50 = if cell.completed_rounds.is_empty() {
                            "-".to_string()
                        } else {
                            let idx =
                                ((cell.completed_rounds.len() - 1) as f64 * 0.5).round() as usize;
                            format!("{:.0}", cell.completed_rounds[idx])
                        };
                        out.push_str(&format!(" {p50} ({failure_pct:.0}%) |"));
                    }
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Writes the `--render-fig3` artifact atomically (tmp + rename), creating
/// parent directories as needed.
fn write_fig3(path: &str, measurements: &[Measurement]) -> Result<(), String> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, render_fig3(measurements))
        .map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot finalize {path}: {e}"))?;
    Ok(())
}

fn sweep_spec(options: &Options) -> SweepSpec {
    let mut spec = if options.quick {
        SweepSpec::quick()
    } else {
        SweepSpec::standard()
    };
    if let Some(sizes) = &options.sizes {
        spec.sizes = sizes.clone();
    }
    if let Some(factors) = &options.universe_factors {
        spec.universe_factors = factors.clone();
    }
    if let Some(reps) = options.reps {
        spec.repetitions = reps;
    }
    if let Some(seed) = options.seed {
        spec.seed = seed;
    }
    spec.structure_seeds = options.structure_seeds;
    // Only a faulty sweep carries fault axes: clean subcommands must keep
    // their pre-fault-layer fingerprints, and the parser already rejects
    // fault flags anywhere else.
    if effective_subcommand(options) == "faults" {
        let standard = FaultAxes::standard();
        spec.faults = Some(FaultAxes {
            drops: options.fault_drops.clone().unwrap_or(standard.drops),
            crashes: options.fault_crashes.unwrap_or(standard.crashes),
            churn: options.fault_churn.unwrap_or(standard.churn),
            adversarial: options.fault_adversarial || standard.adversarial,
        });
    }
    spec
}

fn scaling_spec(options: &Options) -> ScalingSpec {
    let mut scaling = if options.quick {
        // Reduced sizes for smoke runs, exercising both family kinds and
        // the protocol-driven measurement.
        ScalingSpec {
            universe: 1 << 10,
            sizes: vec![8, 16],
            seed: 41,
        }
    } else {
        ScalingSpec::standard()
    };
    if let Some(sizes) = &options.sizes {
        scaling.sizes = sizes.clone();
    }
    if let Some(seed) = options.seed {
        scaling.seed = seed;
    }
    scaling
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        subcommand: String::new(),
        quick: false,
        jobs: 0,
        sizes: None,
        universe_factors: None,
        reps: None,
        seed: None,
        jsonl: None,
        no_jsonl: false,
        shards: 0,
        shard: None,
        run_dir: None,
        retries: 1,
        structure_store: None,
        structure_seeds: None,
        fault_drops: None,
        fault_crashes: None,
        fault_churn: None,
        fault_adversarial: false,
        shard_timeout: None,
        listen: None,
        connect: None,
        data_dir: None,
        lease_timeout: None,
        render_fig3: None,
        v1_format: false,
        stats: false,
        batch: 1,
        trace: false,
        trace_dir: None,
        positionals: Vec::new(),
    };
    let mut seed_mode: Option<String> = None;
    let mut seed_count: Option<u64> = None;
    let mut iter = args.iter();
    let Some(subcommand) = iter.next() else {
        return Err("missing subcommand".into());
    };
    options.subcommand = subcommand.clone();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} expects a value"))
        };
        match arg.as_str() {
            "--quick" => options.quick = true,
            "--no-jsonl" => options.no_jsonl = true,
            "--stats" => options.stats = true,
            "--trace" => options.trace = true,
            "--trace-dir" => {
                options.trace_dir = Some(value_of("--trace-dir")?);
                options.trace = true;
            }
            "--jobs" => {
                options.jobs = value_of("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs expects a non-negative integer".to_string())?;
            }
            "--batch" => {
                options.batch = value_of("--batch")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--batch expects a positive integer".to_string())?;
            }
            "--shards" => {
                options.shards = value_of("--shards")?
                    .parse()
                    .map_err(|_| "--shards expects a positive integer".to_string())?;
            }
            "--shard" => {
                let text = value_of("--shard")?;
                let Some((i, m)) = text.split_once('/') else {
                    return Err("--shard expects i/M (e.g. 0/4)".into());
                };
                let shard: usize = i
                    .parse()
                    .map_err(|_| "--shard expects i/M with integer i".to_string())?;
                let of: usize = m
                    .parse()
                    .map_err(|_| "--shard expects i/M with integer M".to_string())?;
                options.shard = Some((shard, of));
            }
            "--run-dir" => options.run_dir = Some(value_of("--run-dir")?),
            "--structure-store" => {
                // The directory operand is optional: a bare flag means "at
                // the context's default location".
                match iter.clone().next() {
                    Some(next) if !next.starts_with("--") => {
                        iter.next();
                        options.structure_store = Some(Some(next.clone()));
                    }
                    _ => options.structure_store = Some(None),
                }
            }
            "--retries" => {
                options.retries = value_of("--retries")?
                    .parse()
                    .map_err(|_| "--retries expects a non-negative integer".to_string())?;
            }
            "--structure-seed-mode" => {
                seed_mode = Some(value_of("--structure-seed-mode")?);
            }
            "--structure-seeds" => {
                seed_count = Some(
                    value_of("--structure-seeds")?
                        .parse()
                        .map_err(|_| "--structure-seeds expects a positive integer".to_string())?,
                );
            }
            "--fault-drops" => {
                options.fault_drops =
                    Some(parse_list(&value_of("--fault-drops")?, "--fault-drops")?);
            }
            "--fault-crashes" => {
                options.fault_crashes =
                    Some(value_of("--fault-crashes")?.parse().map_err(|_| {
                        "--fault-crashes expects a non-negative integer".to_string()
                    })?);
            }
            "--fault-churn" => {
                options.fault_churn = Some(
                    value_of("--fault-churn")?
                        .parse()
                        .map_err(|_| "--fault-churn expects a non-negative integer".to_string())?,
                );
            }
            "--fault-adversarial" => options.fault_adversarial = true,
            "--shard-timeout" => {
                options.shard_timeout = Some(
                    value_of("--shard-timeout")?
                        .parse()
                        .map_err(|_| "--shard-timeout expects seconds".to_string())?,
                );
            }
            "--format" => {
                let format = value_of("--format")?;
                match format.as_str() {
                    "v1" => options.v1_format = true,
                    "v2" => options.v1_format = false,
                    other => return Err(format!("--format expects v1 or v2, not `{other}`")),
                }
            }
            "--sizes" => {
                options.sizes = Some(parse_list(&value_of("--sizes")?, "--sizes")?);
            }
            "--universe-factors" => {
                options.universe_factors = Some(parse_list(
                    &value_of("--universe-factors")?,
                    "--universe-factors",
                )?);
            }
            "--reps" => {
                options.reps = Some(
                    value_of("--reps")?
                        .parse()
                        .map_err(|_| "--reps expects a positive integer".to_string())?,
                );
            }
            "--seed" => {
                options.seed = Some(
                    value_of("--seed")?
                        .parse()
                        .map_err(|_| "--seed expects an integer".to_string())?,
                );
            }
            "--jsonl" => options.jsonl = Some(value_of("--jsonl")?),
            "--listen" => options.listen = Some(value_of("--listen")?),
            "--connect" => options.connect = Some(value_of("--connect")?),
            "--data-dir" => options.data_dir = Some(value_of("--data-dir")?),
            "--lease-timeout" => {
                options.lease_timeout = Some(
                    value_of("--lease-timeout")?
                        .parse()
                        .map_err(|_| "--lease-timeout expects seconds".to_string())?,
                );
            }
            "--render-fig3" => options.render_fig3 = Some(value_of("--render-fig3")?),
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            other => options.positionals.push(other.to_string()),
        }
    }
    if options.sizes.as_ref().is_some_and(|sizes| sizes.is_empty()) {
        return Err("--sizes expects at least one size".into());
    }
    if options
        .universe_factors
        .as_ref()
        .is_some_and(|factors| factors.is_empty())
    {
        return Err("--universe-factors expects at least one factor".into());
    }
    if options.reps == Some(0) {
        return Err("--reps expects a positive integer".into());
    }
    // Resolve the structure-seed schedule: an explicit mode wins; a bare
    // `--structure-seeds K` implies per-case.
    options.structure_seeds = match (seed_mode.as_deref(), seed_count) {
        (Some("fixed"), None) | (None, None) => None,
        (Some("fixed"), Some(_)) => {
            return Err("--structure-seeds contradicts --structure-seed-mode fixed".into())
        }
        (Some("per-case"), count) => Some(count.unwrap_or(4)),
        (None, Some(count)) => Some(count),
        (Some(other), _) => {
            return Err(format!(
                "--structure-seed-mode expects fixed or per-case, not `{other}`"
            ))
        }
    };
    if options.structure_seeds == Some(0) {
        return Err("--structure-seeds expects a positive integer".into());
    }
    // Beyond the window count, schedule slots would wrap onto already-used
    // strong windows and silently repeat bit-identical strong sequences —
    // refuse rather than mislabel collapsed diversity as K distinct seeds.
    if options
        .structure_seeds
        .is_some_and(|k| k > ring_combinat::STRONG_WINDOW)
    {
        return Err(format!(
            "--structure-seeds supports at most {} distinct seeds (strong sequences \
are windows into one universal sequence with {} window offsets)",
            ring_combinat::STRONG_WINDOW,
            ring_combinat::STRONG_WINDOW,
        ));
    }
    if let Some((shard, of)) = options.shard {
        if of == 0 || shard >= of {
            return Err(format!("--shard {shard}/{of} is out of range (need i < M)"));
        }
        if options.shards != 0 && options.shards != of {
            return Err("--shards and --shard disagree on the shard count".into());
        }
    }
    if options.subcommand == "scaling" && options.universe_factors.is_some() {
        return Err(
            "--universe-factors does not apply to `scaling` (its universe is absolute; \
use --quick for the reduced variant)"
                .into(),
        );
    }
    if options.subcommand == "scaling" && options.reps.is_some() {
        return Err("--reps does not apply to `scaling` (one measurement per set size)".into());
    }
    if options.subcommand == "scaling" && options.structure_seeds.is_some() {
        return Err(
            "the structure-seed schedule does not apply to `scaling` (its structures are \
keyed by the scaling seed; use --seed)"
                .into(),
        );
    }
    let fault_flags_given = options.fault_drops.is_some()
        || options.fault_crashes.is_some()
        || options.fault_churn.is_some()
        || options.fault_adversarial;
    if fault_flags_given && effective_subcommand(&options) != "faults" {
        return Err("fault flags apply only to the `faults` subcommand".into());
    }
    if options
        .fault_drops
        .as_ref()
        .is_some_and(|drops| drops.is_empty())
    {
        return Err("--fault-drops expects at least one rate".into());
    }
    if options
        .fault_drops
        .as_ref()
        .is_some_and(|drops| drops.iter().any(|&d| d > 1000))
    {
        return Err("--fault-drops rates are per mille (at most 1000)".into());
    }
    if options.shard_timeout == Some(0) {
        return Err("--shard-timeout expects a positive number of seconds".into());
    }
    if options.listen.is_some() && options.subcommand != "serve" {
        return Err("--listen applies only to the `serve` subcommand".into());
    }
    if options.connect.is_some() && options.subcommand != "worker" {
        return Err("--connect applies only to the `worker` subcommand".into());
    }
    if (options.data_dir.is_some() || options.lease_timeout.is_some())
        && options.subcommand != "serve"
    {
        return Err("--data-dir and --lease-timeout apply only to the `serve` subcommand".into());
    }
    if options.lease_timeout == Some(0) {
        return Err("--lease-timeout expects a positive number of seconds".into());
    }
    if options.render_fig3.is_some()
        && (options.subcommand != "faults" || options.shards != 0 || options.shard.is_some())
    {
        return Err(
            "--render-fig3 applies only to a single-process `faults` run \
             (render it from the merged stream after a sharded run)"
                .into(),
        );
    }
    Ok(options)
}

fn parse_list<T: std::str::FromStr>(text: &str, flag: &str) -> Result<Vec<T>, String> {
    text.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| format!("{flag}: `{part}` is not a number"))
        })
        .collect()
}

/// Entry point shared by `ringlab` and the thin wrapper binaries: prepends
/// `subcommand` (if any) to the process arguments and exits with the CLI's
/// code.
pub fn main_with_subcommand(subcommand: Option<&str>) -> ! {
    let mut args: Vec<String> = Vec::new();
    if let Some(subcommand) = subcommand {
        args.push(subcommand.to_string());
    }
    args.extend(std::env::args().skip(1));
    std::process::exit(run(&args));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_distrib::ShardRange;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_into_options() {
        let options = parse(&args(&[
            "sweep",
            "--quick",
            "--jobs",
            "4",
            "--sizes",
            "15,16",
            "--universe-factors",
            "4,64",
            "--reps",
            "2",
            "--seed",
            "9",
            "--no-jsonl",
        ]))
        .unwrap();
        assert_eq!(options.subcommand, "sweep");
        assert!(options.quick && options.no_jsonl);
        assert_eq!(options.jobs, 4);
        assert_eq!(sweep_spec(&options).sizes, vec![15, 16]);
        assert_eq!(sweep_spec(&options).universe_factors, vec![4, 64]);
        assert_eq!(sweep_spec(&options).repetitions, 2);
        assert_eq!(sweep_spec(&options).seed, 9);
    }

    #[test]
    fn sharding_flags_parse() {
        let options = parse(&args(&[
            "sweep",
            "--shards",
            "4",
            "--run-dir",
            "/tmp/x",
            "--retries",
            "2",
            "--stats",
        ]))
        .unwrap();
        assert_eq!(options.shards, 4);
        assert_eq!(options.run_dir.as_deref(), Some("/tmp/x"));
        assert_eq!(options.retries, 2);
        assert!(options.stats);

        let options = parse(&args(&["worker", "sweep", "--shard", "1/3"])).unwrap();
        assert_eq!(options.subcommand, "worker");
        assert_eq!(options.positionals, vec!["sweep".to_string()]);
        assert_eq!(options.shard, Some((1, 3)));

        assert!(parse(&args(&["sweep", "--shard", "3/3"])).is_err());
        assert!(parse(&args(&["sweep", "--shard", "0/0"])).is_err());
        assert!(parse(&args(&["sweep", "--shard", "nope"])).is_err());
        assert!(parse(&args(&["sweep", "--shards", "2", "--shard", "0/3"])).is_err());
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse(&args(&[])).is_err());
        assert!(parse(&args(&["table1", "--jobs"])).is_err());
        assert!(parse(&args(&["table1", "--sizes", "a,b"])).is_err());
        assert!(parse(&args(&["table1", "--wat"])).is_err());
    }

    #[test]
    fn worker_args_round_trip_through_the_parser() {
        let spec = SpecParams {
            subcommand: "sweep".into(),
            quick: true,
            sizes: Some(vec![9, 8]),
            universe_factors: Some(vec![4]),
            reps: Some(2),
            seed: Some(77),
            structure_seeds: Some(3),
            fault_drops: None,
            fault_crashes: None,
            fault_churn: None,
            fault_adversarial: false,
        };
        let range = ShardRange {
            shard: 1,
            start: 4,
            end: 8,
        };
        let argv = spec.worker_args(1, &range, 3, "run/structures");
        let parsed = parse(&argv).unwrap();
        assert_eq!(parsed.subcommand, "worker");
        assert_eq!(parsed.positionals, vec!["sweep".to_string()]);
        assert_eq!(parsed.shard, Some((1, 3)));
        assert_eq!(parsed.jobs, 1);
        assert_eq!(
            parsed.structure_store,
            Some(Some("run/structures".to_string()))
        );
        assert_eq!(parsed.structure_seeds, Some(3));
        let rebuilt = sweep_spec(&parsed);
        assert_eq!(rebuilt.sizes, vec![9, 8]);
        assert_eq!(rebuilt.universe_factors, vec![4]);
        assert_eq!(rebuilt.repetitions, 2);
        assert_eq!(rebuilt.seed, 77);
        assert_eq!(rebuilt.structure_seeds, Some(3));

        // A storeless run adds no flag.
        let argv = spec.worker_args(1, &range, 3, "");
        assert!(!argv.iter().any(|a| a == "--structure-store"));
        // A clean spec adds no fault flags.
        assert!(!argv.iter().any(|a| a.starts_with("--fault")));
    }

    #[test]
    fn fault_flags_parse_validate_and_round_trip() {
        let options = parse(&args(&[
            "faults",
            "--quick",
            "--fault-drops",
            "0,100,400",
            "--fault-crashes",
            "1",
            "--fault-churn",
            "2",
            "--fault-adversarial",
        ]))
        .unwrap();
        assert_eq!(options.fault_drops, Some(vec![0, 100, 400]));
        assert_eq!(options.fault_crashes, Some(1));
        assert_eq!(options.fault_churn, Some(2));
        assert!(options.fault_adversarial);
        let spec = sweep_spec(&options);
        assert_eq!(
            spec.faults,
            Some(FaultAxes {
                drops: vec![0, 100, 400],
                crashes: 1,
                churn: 2,
                adversarial: true,
            })
        );

        // A bare `faults` run sweeps the standard axes.
        let bare = parse(&args(&["faults", "--quick"])).unwrap();
        assert_eq!(sweep_spec(&bare).faults, Some(FaultAxes::standard()));
        // Clean subcommands stay fault-free (stable fingerprints) and
        // reject fault flags outright.
        assert_eq!(sweep_spec(&parse(&args(&["sweep"])).unwrap()).faults, None);
        assert!(parse(&args(&["sweep", "--fault-drops", "100"])).is_err());
        assert!(parse(&args(&["table1", "--fault-adversarial"])).is_err());
        // Rates are per mille; nonsense is rejected.
        assert!(parse(&args(&["faults", "--fault-drops", "1001"])).is_err());
        assert!(parse(&args(&["faults", "--fault-drops", ","])).is_err());
        assert!(parse(&args(&["faults", "--shard-timeout", "0"])).is_err());

        // The worker round trip: a worker of a faulty sweep resolves the
        // same axes — and the same fingerprint — as its orchestrator.
        let spec_params = SpecParams {
            subcommand: "faults".into(),
            quick: true,
            sizes: None,
            universe_factors: None,
            reps: None,
            seed: None,
            structure_seeds: None,
            fault_drops: Some(vec![0, 100, 400]),
            fault_crashes: Some(1),
            fault_churn: Some(2),
            fault_adversarial: true,
        };
        let range = ShardRange {
            shard: 0,
            start: 0,
            end: 2,
        };
        let argv = spec_params.worker_args(1, &range, 2, "");
        let worker = parse(&argv).unwrap();
        assert_eq!(effective_subcommand(&worker), "faults");
        assert_eq!(sweep_spec(&worker).faults, spec.faults);
        let scaling = ScalingSpec::standard();
        assert_eq!(
            spec_fingerprint("faults", &sweep_spec(&worker), &scaling),
            spec_fingerprint("faults", &spec, &scaling)
        );
        // Fault axes are spec-affecting: defaults and overrides differ.
        assert_ne!(
            spec_fingerprint("faults", &sweep_spec(&bare), &scaling),
            spec_fingerprint("faults", &spec, &scaling)
        );
    }

    #[test]
    fn faults_markdown_reports_degradation_statistics() {
        let row = |setting: &str, quantity: &str, value: Option<f64>| Measurement {
            experiment: "faults".into(),
            setting: setting.into(),
            quantity: quantity.into(),
            n: 8,
            universe: 64,
            value,
            predicted: None,
            verified: true,
        };
        let text = render_markdown(&[
            // Two reps clean: both complete.
            row("drop 0/1000", "leader election: rounds", Some(10.0)),
            row("drop 0/1000", "leader election: timeout", Some(0.0)),
            row("drop 0/1000", "leader election: rounds", Some(30.0)),
            row("drop 0/1000", "leader election: timeout", Some(0.0)),
            // Two reps at heavy drop: one fails by timeout.
            row("drop 400/1000", "leader election: rounds", Some(50.0)),
            row("drop 400/1000", "leader election: timeout", Some(0.0)),
            row("drop 400/1000", "leader election: rounds", None),
            row("drop 400/1000", "leader election: timeout", Some(1.0)),
        ]);
        assert!(text.contains("# Fault degradation"));
        let clean_at = text.find("| drop 0/1000 |").unwrap();
        let heavy_at = text.find("| drop 400/1000 |").unwrap();
        assert!(clean_at < heavy_at);
        // Nearest-rank percentiles: with two samples p50 rounds up to the
        // larger one.
        assert!(text.contains("| drop 0/1000 | leader election | 8 | 64 | 2 | 30 | 30 | 0 | 0 |"));
        assert!(
            text.contains("| drop 400/1000 | leader election | 8 | 64 | 2 | 50 | 50 | 50 | 50 |")
        );
    }

    #[test]
    fn structure_store_flag_takes_an_optional_directory() {
        let explicit = parse(&args(&[
            "sweep",
            "--structure-store",
            "some/dir",
            "--quick",
        ]))
        .unwrap();
        assert_eq!(explicit.structure_store, Some(Some("some/dir".into())));
        assert!(explicit.quick);

        // Bare flag followed by another flag: default directory.
        let bare = parse(&args(&["sweep", "--structure-store", "--jobs", "2"])).unwrap();
        assert_eq!(bare.structure_store, Some(None));
        assert_eq!(bare.jobs, 2);

        // Bare flag at the end of the line.
        let trailing = parse(&args(&["sweep", "--structure-store"])).unwrap();
        assert_eq!(trailing.structure_store, Some(None));

        let off = parse(&args(&["sweep"])).unwrap();
        assert_eq!(off.structure_store, None);
        assert_eq!(
            resolve_store_dir(&explicit, || "default".into()).as_deref(),
            Some("some/dir")
        );
        assert_eq!(
            resolve_store_dir(&bare, || "default".into()).as_deref(),
            Some("default")
        );
        assert_eq!(resolve_store_dir(&off, || "default".into()), None);
    }

    #[test]
    fn structure_seed_schedule_flags_parse_and_validate() {
        // Fixed by default; bare --structure-seeds implies per-case.
        assert_eq!(parse(&args(&["sweep"])).unwrap().structure_seeds, None);
        assert_eq!(
            parse(&args(&["sweep", "--structure-seed-mode", "per-case"]))
                .unwrap()
                .structure_seeds,
            Some(4)
        );
        assert_eq!(
            parse(&args(&["sweep", "--structure-seeds", "7"]))
                .unwrap()
                .structure_seeds,
            Some(7)
        );
        assert_eq!(
            parse(&args(&[
                "sweep",
                "--structure-seed-mode",
                "per-case",
                "--structure-seeds",
                "2"
            ]))
            .unwrap()
            .structure_seeds,
            Some(2)
        );
        assert_eq!(
            parse(&args(&["sweep", "--structure-seed-mode", "fixed"]))
                .unwrap()
                .structure_seeds,
            None
        );
        // Contradictions and nonsense are usage errors.
        assert!(parse(&args(&[
            "sweep",
            "--structure-seed-mode",
            "fixed",
            "--structure-seeds",
            "2"
        ]))
        .is_err());
        assert!(parse(&args(&["sweep", "--structure-seed-mode", "maybe"])).is_err());
        assert!(parse(&args(&["sweep", "--structure-seeds", "0"])).is_err());
        // K beyond the strong-window count would wrap onto repeated
        // windows; the boundary itself is fine.
        assert!(parse(&args(&["sweep", "--structure-seeds", "65"])).is_err());
        assert!(parse(&args(&["sweep", "--structure-seeds", "64"])).is_ok());
        assert!(parse(&args(&["scaling", "--structure-seeds", "2"])).is_err());
        // The schedule is spec-affecting: it must move the fingerprint.
        let fixed = parse(&args(&["sweep", "--quick"])).unwrap();
        let diverse = parse(&args(&["sweep", "--quick", "--structure-seeds", "4"])).unwrap();
        let scaling = ScalingSpec::standard();
        assert_ne!(
            spec_fingerprint("sweep", &sweep_spec(&fixed), &scaling),
            spec_fingerprint("sweep", &sweep_spec(&diverse), &scaling)
        );
    }

    #[test]
    fn fingerprints_separate_specs_and_subcommands() {
        let spec = SweepSpec::quick();
        let scaling = ScalingSpec::standard();
        let base = spec_fingerprint("sweep", &spec, &scaling);
        assert_ne!(base, spec_fingerprint("table1", &spec, &scaling));
        let mut reseeded = spec.clone();
        reseeded.seed ^= 1;
        assert_ne!(base, spec_fingerprint("sweep", &reseeded, &scaling));
        assert_eq!(base, spec_fingerprint("sweep", &spec.clone(), &scaling));
    }

    #[test]
    fn markdown_renders_sections_in_canonical_order() {
        let sample = |experiment: &str| Measurement {
            experiment: experiment.into(),
            setting: "s".into(),
            quantity: "q".into(),
            n: 8,
            universe: 64,
            value: Some(1.0),
            predicted: Some(1.0),
            verified: true,
        };
        let text = render_markdown(&[sample("lower_bounds"), sample("table1")]);
        let table1_at = text.find("# Table I").unwrap();
        let lower_at = text.find("# Lower-bound audits").unwrap();
        assert!(table1_at < lower_at);
    }
}
