//! The streaming results sink.
//!
//! Worker threads finish cases out of order; consumers (files, pipes, CI
//! logs) want one JSON-lines record per case, incrementally, in case
//! order. [`JsonlSink`] reconciles the two with a reorder buffer: a
//! completed record is written immediately if it is the next expected
//! index, and parked otherwise; every write drains the park as far as the
//! contiguous prefix reaches. The emitted byte stream is therefore
//! identical for every job count — the property the determinism tests pin
//! down.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::Mutex;

struct Reorder<W: Write> {
    next: usize,
    pending: BTreeMap<usize, String>,
    out: W,
}

/// An ordered, incremental JSON-lines writer shared by reference across
/// worker threads.
pub struct JsonlSink<W: Write> {
    inner: Mutex<Reorder<W>>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer; records are expected for indices `0, 1, 2, …`.
    pub fn new(out: W) -> Self {
        JsonlSink {
            inner: Mutex::new(Reorder {
                next: 0,
                pending: BTreeMap::new(),
                out,
            }),
        }
    }

    /// Hands the record for case `index` to the sink. The line (without
    /// trailing newline) is written as soon as every earlier index has
    /// been emitted.
    ///
    /// # Panics
    ///
    /// Panics if the underlying writer fails or if an index is emitted
    /// twice (both indicate harness bugs, not data conditions).
    pub fn emit(&self, index: usize, line: &str) {
        let mut inner = self.inner.lock().expect("results sink");
        if index != inner.next {
            assert!(
                index > inner.next && !inner.pending.contains_key(&index),
                "case {index} emitted twice"
            );
            inner.pending.insert(index, line.to_string());
            return;
        }
        writeln!(inner.out, "{line}").expect("results sink write");
        inner.next += 1;
        loop {
            let next = inner.next;
            let Some(buffered) = inner.pending.remove(&next) else {
                break;
            };
            writeln!(inner.out, "{buffered}").expect("results sink write");
            inner.next += 1;
        }
        inner.out.flush().expect("results sink flush");
    }

    /// Unwraps the writer after the run.
    ///
    /// # Panics
    ///
    /// Panics if records are still parked (an earlier index never
    /// arrived), which would mean the executor lost a case.
    pub fn finish(self) -> W {
        let inner = self.inner.into_inner().expect("results sink");
        assert!(
            inner.pending.is_empty(),
            "cases {:?} were emitted but never flushed (missing earlier records)",
            inner.pending.keys().collect::<Vec<_>>()
        );
        inner.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_emission_is_reordered() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(2, "c");
        sink.emit(0, "a");
        sink.emit(1, "b");
        sink.emit(3, "d");
        let bytes = sink.finish();
        assert_eq!(String::from_utf8(bytes).unwrap(), "a\nb\nc\nd\n");
    }

    #[test]
    #[should_panic(expected = "never flushed")]
    fn missing_records_are_detected() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(1, "b");
        let _ = sink.finish();
    }
}
