//! The two-tier, content-addressed structure store (`structure-store/v2`).
//!
//! [`StructureStore`] is the structure pathway of every sweep: **tier 1**
//! is the in-memory sharded [`StructureCache`] (one per engine, shared by
//! every worker thread), **tier 2** an optional on-disk directory shared by
//! every worker *process* of a run — threads, shards on this machine, and
//! workers on other machines pointed at the same directory.
//!
//! The v2 disk layout separates **payload** from **identity**:
//!
//! ```text
//! <dir>/blobs/<digest:016x>.blob   content-addressed payloads (codec v2)
//! <dir>/index/<key>.idx            one logical key → (blob digest, count)
//! <dir>/index/<key>.claim          advisory single-constructor claims
//! <dir>/<key>.struct               legacy structure-store/v1 files (read)
//! ```
//!
//! Blobs are named by their own digest, so identical structures constructed
//! under different logical keys dedup to one file; index entries are tiny
//! and rewritten atomically (temp + rename), so **longer strong prefixes
//! supersede shorter ones** without ever mutating a published blob. The
//! strong-distinguisher kind stores **one prefix-extendable blob per
//! universe**: seeds are windows into one universal sequence
//! ([`ring_combinat::StrongBase`]), so a K-seed-diverse sweep shares one
//! blob per `N` instead of publishing K near-full copies.
//!
//! A request walks the tiers in order: tier-1 hit → `Arc` clone; tier-1
//! miss → resolve the key's index entry and load its blob (a **store
//! hit**), falling back to a legacy v1 file; nothing on disk → construct (a
//! **store miss**) and publish so the rest of the fleet loads instead of
//! constructing. Publication is atomic and guarded by PR 4's advisory
//! **single-constructor claim** discipline: the first worker to create the
//! key's `.claim` file constructs, everyone else polls briefly; a stale
//! claim delays a waiter by at most [`CLAIM_WAIT`] and can never wedge a
//! sweep.
//!
//! Legacy `structure-store/v1` files remain **readable** for the
//! materialised kinds (their constructions are unchanged); v1 strong files
//! predate the universal-sequence definition and are ignored by the read
//! path — [`StructureStore::migrate`] rewrites a v1 store in place,
//! regenerating the strong universal blobs it needs.
//!
//! Correctness never depends on the disk tier: every load is digest- and
//! canonical-form-validated (a corrupt file is discarded and reconstructed,
//! surfaced as an error only on the fallible [`StructureProvider`] path),
//! and a loaded structure is bit-identical to a fresh construction, so
//! merged sweep output is byte-identical with or without a store.

use crate::cache::{CacheStats, CachedStructure, StructureCache};
use ring_combinat::codec::{self, IndexEntry};
use ring_combinat::{
    strong_offset, Distinguisher, IdSet, SelectiveFamily, SharedStrongDistinguisher, StrongBase,
    StructureKey, StructureKind,
};
use ring_protocols::structures::{StructureError, StructureProvider};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// File extension of legacy v1 structure files (still readable).
pub const STORE_EXTENSION: &str = "struct";

/// File extension of content-addressed payload blobs.
pub const BLOB_EXTENSION: &str = "blob";

/// File extension of per-key index entries.
pub const INDEX_EXTENSION: &str = "idx";

/// Longest a worker waits for another constructor's publication before
/// constructing the structure itself. Doubles as the grace age below which
/// `gc` never touches an unreferenced blob (its publisher may still be
/// about to write the index entry).
pub const CLAIM_WAIT: Duration = Duration::from_secs(10);

/// Poll interval while waiting on a claimed key.
const CLAIM_POLL: Duration = Duration::from_millis(25);

thread_local! {
    /// Nanoseconds the calling thread has spent inside [`StructureProvider`]
    /// calls since the last [`reset_structure_wait`]. The engine brackets
    /// each case with reset/take to split case time into structure-wait
    /// vs. protocol execution.
    static STRUCTURE_WAIT_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Zeroes the calling thread's structure-wait accumulator.
pub(crate) fn reset_structure_wait() {
    STRUCTURE_WAIT_NS.with(|cell| cell.set(0));
}

/// Reads the calling thread's structure-wait accumulator.
pub(crate) fn take_structure_wait_ns() -> u64 {
    STRUCTURE_WAIT_NS.with(|cell| cell.get())
}

/// Runs one provider call, adding its duration to the calling thread's
/// structure-wait accumulator.
fn timed_wait<T>(body: impl FnOnce() -> T) -> T {
    let started = std::time::Instant::now();
    let value = body();
    STRUCTURE_WAIT_NS
        .with(|cell| cell.set(cell.get().saturating_add(ring_obs::elapsed_ns(started))));
    value
}

/// Short stable label for a structure kind (trace-field friendly).
fn kind_name(kind: StructureKind) -> &'static str {
    match kind {
        StructureKind::StrongDistinguisher => "strong",
        StructureKind::Distinguisher => "distinguisher",
        StructureKind::SelectiveFamily => "selective",
    }
}

/// Disk-tier effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize)]
pub struct StoreStats {
    /// Tier-2 lookups served by loading a published payload.
    pub hits: u64,
    /// Tier-2 lookups that fell through to construction.
    pub misses: u64,
}

/// The two-tier structure store (in-memory cache + optional disk tier).
#[derive(Debug)]
pub struct StructureStore {
    cache: StructureCache,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// One universal strong sequence per universe, shared by every seed's
    /// view — the in-memory counterpart of the one-blob-per-universe disk
    /// layout.
    strong_bases: Mutex<HashMap<u64, Arc<StrongBase>>>,
    /// Universal prefix lengths already on disk, so `flush` republishes
    /// only sequences that grew.
    persisted_strong: Mutex<HashMap<u64, usize>>,
}

impl Default for StructureStore {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl StructureStore {
    /// A memory-only store (tier 1 alone) — the behaviour of the engine
    /// before the disk tier existed, and the default of
    /// [`SweepEngine::new`](crate::engine::SweepEngine::new).
    pub fn in_memory() -> Self {
        StructureStore {
            cache: StructureCache::new(),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            strong_bases: Mutex::new(HashMap::new()),
            persisted_strong: Mutex::new(HashMap::new()),
        }
    }

    /// A store backed by `dir` (created, with its `blobs/` and `index/`
    /// subdirectories, if missing).
    ///
    /// # Errors
    ///
    /// Propagates the directory creation failure.
    pub fn at(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("blobs"))?;
        std::fs::create_dir_all(dir.join("index"))?;
        Ok(StructureStore {
            dir: Some(dir),
            ..Self::in_memory()
        })
    }

    /// The disk-tier directory (`None` for a memory-only store).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The in-memory tier.
    pub fn cache(&self) -> &StructureCache {
        &self.cache
    }

    /// Tier-1 counters (thread-level sharing).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Tier-2 counters (process-level sharing); all zero for a memory-only
    /// store.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Counts a tier-2 hit and records the latency of the disk walk that
    /// produced it (from entering the walk to the successful decode).
    fn note_tier2_hit(&self, started: std::time::Instant) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        ring_obs::global()
            .histogram("store_tier2_hit_ns")
            .record(ring_obs::elapsed_ns(started));
    }

    /// The short tag of a kind used in file names.
    fn kind_tag(kind: StructureKind) -> &'static str {
        match kind {
            StructureKind::StrongDistinguisher => "strong",
            StructureKind::Distinguisher => "dist",
            StructureKind::SelectiveFamily => "select",
        }
    }

    /// The legacy v1 file name a key was published under (still consulted
    /// on the read path for materialised kinds).
    pub fn file_name(key: &StructureKey) -> String {
        format!(
            "{}-u{}-n{}-s{:016x}.{STORE_EXTENSION}",
            Self::kind_tag(key.kind),
            key.universe,
            key.n,
            key.seed
        )
    }

    /// The index-entry file name of a materialised key.
    pub fn index_name(key: &StructureKey) -> String {
        format!(
            "{}-u{}-n{}-s{:016x}.{INDEX_EXTENSION}",
            Self::kind_tag(key.kind),
            key.universe,
            key.n,
            key.seed
        )
    }

    /// The index-entry file name of a universe's **universal** strong
    /// sequence — the one entry every strong seed of that universe resolves
    /// through.
    pub fn strong_index_name(universe: u64) -> String {
        format!("strong-u{universe}.{INDEX_EXTENSION}")
    }

    /// The logical key recorded in a universal strong index entry.
    pub fn strong_universal_key(universe: u64) -> StructureKey {
        StructureKey {
            kind: StructureKind::StrongDistinguisher,
            universe,
            n: 0,
            seed: 0,
        }
    }

    /// The blob path of a digest inside a store directory.
    pub fn blob_path(dir: &Path, digest: u64) -> PathBuf {
        dir.join("blobs")
            .join(format!("{digest:016x}.{BLOB_EXTENSION}"))
    }

    /// Reads and parses an index entry (`Ok(None)` when absent).
    fn read_index_entry(path: &Path) -> Result<Option<IndexEntry>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        IndexEntry::parse(&text)
            .map(Some)
            .map_err(|e| format!("corrupt index entry {}: {e}", path.display()))
    }

    /// Loads and fully validates the blob an index entry references
    /// (streaming single-pass decode — blobs run to hundreds of megabytes,
    /// so no whole-file buffer is ever materialised).
    fn load_blob(dir: &Path, entry: &IndexEntry) -> Result<Vec<IdSet>, String> {
        let path = Self::blob_path(dir, entry.digest);
        let file = std::fs::File::open(&path)
            .map_err(|e| format!("cannot read blob {}: {e}", path.display()))?;
        let len = file
            .metadata()
            .map_err(|e| format!("cannot stat {}: {e}", path.display()))?
            .len();
        codec::decode_blob_stream(file, len, entry.key.universe, entry.count, entry.digest)
            .map_err(|e| format!("corrupt blob {}: {e}", path.display()))
    }

    /// Atomically publishes a payload blob (skipping the write when the
    /// digest is already on disk — the dedup fast path) and then the index
    /// entry that makes it resolvable. Returns the blob digest.
    fn publish(
        &self,
        dir: &Path,
        entry_path: &Path,
        key: StructureKey,
        sets: &[impl std::borrow::Borrow<IdSet>],
    ) -> io::Result<u64> {
        let (bytes, digest) = codec::encode_blob(key.universe, sets);
        let blob = Self::blob_path(dir, digest);
        if !blob.exists() {
            write_atomic(&blob, &bytes)?;
        }
        let entry = IndexEntry {
            key,
            digest,
            count: sets.len(),
        };
        write_atomic(entry_path, entry.format().as_bytes())?;
        Ok(digest)
    }

    /// Resolves a materialised key from the disk tier: v2 index entry
    /// first, then a legacy v1 file. `Ok(None)` = nothing usable on disk.
    /// A file that fails validation is removed (the store self-heals by
    /// republication) and reported as the error.
    ///
    /// A load failure is re-checked against the *current* entry before
    /// anything is condemned: a concurrent supersede (flush publishing a
    /// longer strong prefix and reclaiming the old blob) makes a stale
    /// entry's blob vanish mid-read, and removing "the entry" at that point
    /// would delete the just-published live one. Only an entry that still
    /// references the failed digest is dropped; a changed entry is simply
    /// retried.
    fn try_load_keyed(
        &self,
        dir: &Path,
        key: &StructureKey,
        entry_path: &Path,
    ) -> Result<Option<Vec<IdSet>>, String> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            match Self::read_index_entry(entry_path) {
                Ok(Some(entry)) => {
                    if entry.key != *key {
                        remove_entry_if_unchanged(entry_path, &entry);
                        return Err(format!(
                            "index entry {} names a different key",
                            entry_path.display()
                        ));
                    }
                    match Self::load_blob(dir, &entry) {
                        Ok(sets) => return Ok(Some(sets)),
                        Err(e) => {
                            // Superseded mid-read? Retry against the new
                            // entry instead of condemning anything.
                            if attempts < 4 && entry_changed(entry_path, &entry) {
                                continue;
                            }
                            // A dangling or corrupt reference must never
                            // win over reconstruction; drop the entry (and
                            // the blob, if it is provably bad) so
                            // republication heals it.
                            remove_entry_if_unchanged(entry_path, &entry);
                            let blob = Self::blob_path(dir, entry.digest);
                            if blob_is_corrupt(&blob) {
                                std::fs::remove_file(&blob).ok();
                            }
                            return Err(e);
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Unparsable bytes: drop them unless a concurrent
                    // publisher already replaced the file with something
                    // that parses.
                    if attempts < 4 {
                        if let Ok(Some(_)) = Self::read_index_entry(entry_path) {
                            continue;
                        }
                    }
                    std::fs::remove_file(entry_path).ok();
                    return Err(e);
                }
            }
        }
        // Legacy v1 fallback (materialised kinds only — the constructions
        // are unchanged, so v1 payloads are still bit-exact).
        let legacy = dir.join(Self::file_name(key));
        let file = match std::fs::File::open(&legacy) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", legacy.display())),
        };
        let len = file
            .metadata()
            .map_err(|e| format!("cannot stat {}: {e}", legacy.display()))?
            .len();
        match codec::decode_stream_for_key(key, file, len) {
            Ok(sets) => Ok(Some(sets)),
            Err(e) => {
                std::fs::remove_file(&legacy).ok();
                Err(format!("corrupt structure file {}: {e}", legacy.display()))
            }
        }
    }

    /// The tier-2 walk for a materialised structure: load, or wait out
    /// another constructor's claim, or construct-and-publish. Returns the
    /// structure plus the first tier error (corrupt file, failed publish) —
    /// which the infallible provider path logs and the fallible path
    /// surfaces.
    fn disk_or_construct<T>(
        &self,
        key: &StructureKey,
        decode: impl Fn(Vec<IdSet>) -> T,
        construct: impl FnOnce() -> T,
        payload: impl Fn(&T) -> Vec<Arc<IdSet>>,
    ) -> (T, Option<String>) {
        let Some(dir) = self.dir.clone() else {
            let _span = ring_obs::span!(
                "construct_structure",
                kind = kind_name(key.kind),
                universe = key.universe,
                n = key.n
            );
            return (construct(), None);
        };
        let started = std::time::Instant::now();
        let entry_path = dir.join("index").join(Self::index_name(key));
        let mut tier_error = None;
        match self.try_load_keyed(&dir, key, &entry_path) {
            Ok(Some(sets)) => {
                self.note_tier2_hit(started);
                return (decode(sets), None);
            }
            Ok(None) => {}
            Err(e) => tier_error = Some(e),
        }

        // Single-constructor discipline: first claimant constructs, the
        // rest poll for its publication (bounded — a stale claim only
        // delays, never blocks).
        let claim = claim_path(&entry_path);
        let claimed = try_claim(&claim);
        if claimed && tier_error.is_none() {
            // A racing constructor may have published (and cleared its own
            // claim) between our lookup and our claim; one re-check turns
            // that race into a load instead of a duplicate construction.
            if let Ok(Some(sets)) = self.try_load_keyed(&dir, key, &entry_path) {
                std::fs::remove_file(&claim).ok();
                self.note_tier2_hit(started);
                return (decode(sets), None);
            }
        }
        if !claimed && tier_error.is_none() {
            let deadline = std::time::Instant::now() + CLAIM_WAIT;
            loop {
                std::thread::sleep(CLAIM_POLL);
                match self.try_load_keyed(&dir, key, &entry_path) {
                    Ok(Some(sets)) => {
                        self.note_tier2_hit(started);
                        return (decode(sets), None);
                    }
                    Ok(None) => {}
                    Err(_) => break, // constructor published garbage; rebuild
                }
                if !claim.exists() || std::time::Instant::now() >= deadline {
                    break;
                }
            }
            // Last look before doing the work ourselves: the claimant may
            // have published between the poll and the deadline.
            if let Ok(Some(sets)) = self.try_load_keyed(&dir, key, &entry_path) {
                self.note_tier2_hit(started);
                return (decode(sets), None);
            }
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = {
            let _span = ring_obs::span!(
                "construct_structure",
                kind = kind_name(key.kind),
                universe = key.universe,
                n = key.n
            );
            construct()
        };
        let sets = payload(&value);
        let published = self
            .publish(&dir, &entry_path, *key, &sets)
            .map_err(|e| format!("cannot publish {}: {e}", entry_path.display()));
        // Whether or not the publication landed, this constructor is done
        // with the key: clear the claim so no other process waits out the
        // full CLAIM_WAIT. (A successful publish makes the claim moot; a
        // failed one must not leave it behind.)
        std::fs::remove_file(&claim).ok();
        if let Err(e) = published {
            tier_error.get_or_insert(e);
        }
        (value, tier_error)
    }

    /// The universal strong sequence of a universe, loading its published
    /// blob on first touch (a **store hit**) or starting empty (a **store
    /// miss**). Every seed's view of this universe shares the returned
    /// base — in memory and on disk.
    fn strong_base(&self, universe: u64) -> (Arc<StrongBase>, Option<String>) {
        if let Some(base) = self
            .strong_bases
            .lock()
            .expect("strong bases map")
            .get(&universe)
        {
            return (Arc::clone(base), None);
        }
        // Resolve outside the map lock (the load may read a large blob);
        // racing threads resolve independently and the first insert wins.
        let mut tier_error = None;
        let mut loaded = None;
        if let Some(dir) = &self.dir {
            let started = std::time::Instant::now();
            let entry_path = dir.join("index").join(Self::strong_index_name(universe));
            let mut attempts = 0;
            loop {
                attempts += 1;
                match Self::read_index_entry(&entry_path) {
                    Ok(Some(entry)) if entry.key == Self::strong_universal_key(universe) => {
                        match Self::load_blob(dir, &entry) {
                            Ok(sets) => {
                                self.note_tier2_hit(started);
                                self.persisted_strong
                                    .lock()
                                    .expect("persisted map")
                                    .insert(universe, sets.len());
                                loaded = Some(StrongBase::with_prefix(universe, sets));
                            }
                            Err(e) => {
                                // A concurrent flush may have superseded
                                // the entry (and reclaimed the old blob)
                                // mid-read: retry against the new entry
                                // rather than condemning the live one.
                                if attempts < 4 && entry_changed(&entry_path, &entry) {
                                    continue;
                                }
                                remove_entry_if_unchanged(&entry_path, &entry);
                                let blob = Self::blob_path(dir, entry.digest);
                                if blob_is_corrupt(&blob) {
                                    std::fs::remove_file(&blob).ok();
                                }
                                self.misses.fetch_add(1, Ordering::Relaxed);
                                tier_error = Some(e);
                            }
                        }
                    }
                    Ok(Some(entry)) => {
                        remove_entry_if_unchanged(&entry_path, &entry);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        tier_error = Some(format!(
                            "index entry {} names a different key",
                            entry_path.display()
                        ));
                    }
                    Ok(None) => {
                        self.misses.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        if attempts < 4 {
                            if let Ok(Some(_)) = Self::read_index_entry(&entry_path) {
                                continue;
                            }
                        }
                        std::fs::remove_file(&entry_path).ok();
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        tier_error = Some(e);
                    }
                }
                break;
            }
        }
        let candidate = Arc::new(loaded.unwrap_or_else(|| StrongBase::new(universe)));
        let mut map = self.strong_bases.lock().expect("strong bases map");
        let base = map.entry(universe).or_insert(candidate);
        (Arc::clone(base), tier_error)
    }

    /// Persists every universal strong prefix that grew beyond what the
    /// store holds. Called by the engine after each run; safe to call
    /// concurrently from many processes: prefixes are prefixes of one
    /// deterministic universal sequence, blob writes are atomic and
    /// content-addressed (never mutated), and the index-entry rewrite is
    /// claim-guarded with an on-disk length re-check under the claim — a
    /// shorter prefix never replaces a longer published one. Returns the
    /// number of blobs published.
    ///
    /// # Errors
    ///
    /// Returns the first publication failure (remaining entries are still
    /// attempted).
    pub fn flush(&self) -> Result<usize, StructureError> {
        let Some(dir) = self.dir.clone() else {
            return Ok(0);
        };
        let mut written = 0;
        let mut first_error = None;
        let bases: Vec<(u64, Arc<StrongBase>)> = {
            let map = self.strong_bases.lock().expect("strong bases map");
            map.iter().map(|(u, b)| (*u, Arc::clone(b))).collect()
        };
        for (universe, base) in bases {
            let sets = base.materialized();
            if sets.is_empty() {
                continue;
            }
            let persisted = {
                let map = self.persisted_strong.lock().expect("persisted map");
                map.get(&universe).copied().unwrap_or(0)
            };
            if sets.len() <= persisted {
                continue;
            }
            let entry_path = dir.join("index").join(Self::strong_index_name(universe));
            // Serialise concurrent flushers of this universe: the loser
            // defers — unless the claim has outlived [`CLAIM_WAIT`], in
            // which case its holder is dead (strong entries are published
            // only by flush, so nothing else would ever clear it) and it is
            // broken here.
            let claim = claim_path(&entry_path);
            let mut claimed = try_claim(&claim);
            if !claimed && claim_is_stale(&claim) {
                std::fs::remove_file(&claim).ok();
                claimed = try_claim(&claim);
            }
            if !claimed {
                continue;
            }
            // Under the claim, check what is actually on disk so a short
            // prefix never clobbers a longer one — and remember the old
            // blob so the superseded bytes can be reclaimed.
            let old = Self::read_index_entry(&entry_path).ok().flatten();
            if let Some(entry) = &old {
                if entry.key == Self::strong_universal_key(universe) && sets.len() <= entry.count {
                    self.persisted_strong
                        .lock()
                        .expect("persisted map")
                        .insert(universe, entry.count);
                    std::fs::remove_file(&claim).ok();
                    continue;
                }
            }
            match self.publish(
                &dir,
                &entry_path,
                Self::strong_universal_key(universe),
                &sets,
            ) {
                Ok(digest) => {
                    written += 1;
                    self.persisted_strong
                        .lock()
                        .expect("persisted map")
                        .insert(universe, sets.len());
                    // The superseded blob is referenced by nothing (strong
                    // blobs are only ever named by this one entry, which now
                    // points at the longer prefix): reclaim it.
                    if let Some(entry) = old {
                        if entry.digest != digest {
                            std::fs::remove_file(Self::blob_path(&dir, entry.digest)).ok();
                        }
                    }
                }
                Err(e) => {
                    first_error.get_or_insert(StructureError::new(format!(
                        "cannot publish {}: {e}",
                        entry_path.display()
                    )));
                }
            }
            std::fs::remove_file(&claim).ok();
        }
        match first_error {
            None => Ok(written),
            Some(e) => Err(e),
        }
    }

    /// The strong-distinguisher walk: tier-1 memo, then the shared
    /// universal base (loaded from its per-universe blob on first touch),
    /// then a seed-windowed view onto it. Publication happens in
    /// [`StructureStore::flush`].
    fn strong(&self, universe: u64, seed: u64) -> (Arc<SharedStrongDistinguisher>, Option<String>) {
        let key = StructureKey {
            kind: StructureKind::StrongDistinguisher,
            universe,
            n: 0,
            seed,
        };
        if let Some(cached) = self.cache.peek(&key) {
            match cached {
                CachedStructure::Strong(s) => return (s, None),
                _ => unreachable!("kind is part of the key"),
            }
        }
        let (base, tier_error) = self.strong_base(universe);
        let value = Arc::new(SharedStrongDistinguisher::with_base(seed, base));
        match self
            .cache
            .get_or_insert(key, || CachedStructure::Strong(value))
        {
            CachedStructure::Strong(s) => (s, tier_error),
            _ => unreachable!("kind is part of the key"),
        }
    }

    fn materialised_distinguisher(
        &self,
        universe: u64,
        n: usize,
        seed: u64,
    ) -> (Arc<Distinguisher>, Option<String>) {
        let key = StructureKey {
            kind: StructureKind::Distinguisher,
            universe,
            n: n as u64,
            seed,
        };
        if let Some(cached) = self.cache.peek(&key) {
            match cached {
                CachedStructure::Distinguisher(d) => return (d, None),
                _ => unreachable!("kind is part of the key"),
            }
        }
        // Resolved outside any shard lock: the disk walk may sleep waiting
        // on another process's claim, and that must never block unrelated
        // keys of the same cache shard.
        let (value, tier_error) = self.disk_or_construct(
            &key,
            |sets| Arc::new(Distinguisher::from_sets(universe, n, sets)),
            || Arc::new(Distinguisher::random(universe, n, seed)),
            |d| d.sets().iter().cloned().map(Arc::new).collect(),
        );
        match self
            .cache
            .get_or_insert(key, || CachedStructure::Distinguisher(value))
        {
            CachedStructure::Distinguisher(d) => (d, tier_error),
            _ => unreachable!("kind is part of the key"),
        }
    }

    fn materialised_selective_family(
        &self,
        universe: u64,
        n: usize,
        seed: u64,
    ) -> (Arc<SelectiveFamily>, Option<String>) {
        let key = StructureKey {
            kind: StructureKind::SelectiveFamily,
            universe,
            n: n as u64,
            seed,
        };
        if let Some(cached) = self.cache.peek(&key) {
            match cached {
                CachedStructure::Selective(f) => return (f, None),
                _ => unreachable!("kind is part of the key"),
            }
        }
        let (value, tier_error) = self.disk_or_construct(
            &key,
            |sets| Arc::new(SelectiveFamily::from_sets(universe, n, sets)),
            || Arc::new(SelectiveFamily::random(universe, n, seed)),
            |f| f.sets().iter().cloned().map(Arc::new).collect(),
        );
        match self
            .cache
            .get_or_insert(key, || CachedStructure::Selective(value))
        {
            CachedStructure::Selective(f) => (f, tier_error),
            _ => unreachable!("kind is part of the key"),
        }
    }

    /// Rewrites a legacy v1 store in place onto the v2 layout: materialised
    /// payloads are re-encoded byte-exactly into content-addressed blobs;
    /// v1 strong files (whose per-seed sequences predate the universal
    /// windowed definition) are replaced by regenerated universal blobs
    /// covering at least the window each v1 file's seed demands. Corrupt v1
    /// files are dropped, exactly like resume's revalidation. Idempotent:
    /// a second run finds no v1 files and rewrites nothing.
    ///
    /// # Errors
    ///
    /// Returns the first I/O or publication failure.
    pub fn migrate(&self) -> Result<MigrateReport, String> {
        let dir = self
            .dir
            .clone()
            .ok_or("a memory-only store has nothing to migrate")?;
        let mut report = MigrateReport::default();
        let mut strong_demand: HashMap<u64, usize> = HashMap::new();
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(STORE_EXTENSION) {
                continue;
            }
            let validated = std::fs::File::open(&path)
                .and_then(|file| Ok((file.metadata()?.len(), file)))
                .map_err(|e| format!("unreadable: {e}"))
                .and_then(|(len, file)| {
                    codec::validate_stream(file, len).map_err(|e| e.to_string())
                });
            let (key, count) = match validated {
                Ok(ok) => ok,
                Err(_) => {
                    // Like resume revalidation: a v1 file that no longer
                    // proves itself is dropped, never trusted.
                    std::fs::remove_file(&path).map_err(|e| e.to_string())?;
                    report.dropped += 1;
                    continue;
                }
            };
            match key.kind {
                StructureKind::StrongDistinguisher => {
                    // The v1 payload used the per-seed sequence definition;
                    // regenerate the universal prefix its window needs.
                    let demand = strong_offset(key.seed) + count;
                    let slot = strong_demand.entry(key.universe).or_insert(0);
                    *slot = (*slot).max(demand);
                    report.strong += 1;
                }
                StructureKind::Distinguisher | StructureKind::SelectiveFamily => {
                    let file = std::fs::File::open(&path).map_err(|e| e.to_string())?;
                    let len = file.metadata().map_err(|e| e.to_string())?.len();
                    let sets = codec::decode_stream_for_key(&key, file, len)
                        .map_err(|e| format!("corrupt {}: {e}", path.display()))?;
                    let entry_path = dir.join("index").join(Self::index_name(&key));
                    self.publish(&dir, &entry_path, key, &sets)
                        .map_err(|e| format!("cannot publish {}: {e}", entry_path.display()))?;
                    report.materialised += 1;
                }
            }
            std::fs::remove_file(&path).map_err(|e| e.to_string())?;
        }
        for (universe, demand) in strong_demand {
            let (base, _) = self.strong_base(universe);
            if demand > 0 {
                base.set(demand - 1);
            }
        }
        self.flush().map_err(|e| e.to_string())?;
        Ok(report)
    }
}

/// What [`StructureStore::migrate`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrateReport {
    /// Materialised v1 files re-encoded byte-exactly into blobs.
    pub materialised: usize,
    /// Strong v1 files replaced by regenerated universal blobs.
    pub strong: usize,
    /// Corrupt v1 files dropped.
    pub dropped: usize,
}

/// Logs a non-fatal disk-tier problem (the infallible provider path: the
/// structure was still served, from reconstruction).
fn log_tier_error(error: &Option<String>) {
    if let Some(error) = error {
        eprintln!("ring-harness: structure store: {error} (reconstructed)");
    }
}

fn fail_on_tier_error<T>(value: T, error: Option<String>) -> Result<T, StructureError> {
    match error {
        None => Ok(value),
        Some(e) => Err(StructureError::new(e)),
    }
}

impl StructureProvider for StructureStore {
    fn strong_distinguisher(&self, universe: u64, seed: u64) -> Arc<SharedStrongDistinguisher> {
        timed_wait(|| {
            let (value, error) = self.strong(universe, seed);
            log_tier_error(&error);
            value
        })
    }

    fn distinguisher(&self, universe: u64, n: usize, seed: u64) -> Arc<Distinguisher> {
        timed_wait(|| {
            let (value, error) = self.materialised_distinguisher(universe, n, seed);
            log_tier_error(&error);
            value
        })
    }

    fn selective_family(&self, universe: u64, n: usize, seed: u64) -> Arc<SelectiveFamily> {
        timed_wait(|| {
            let (value, error) = self.materialised_selective_family(universe, n, seed);
            log_tier_error(&error);
            value
        })
    }

    fn try_strong_distinguisher(
        &self,
        universe: u64,
        seed: u64,
    ) -> Result<Arc<SharedStrongDistinguisher>, StructureError> {
        timed_wait(|| {
            let (value, error) = self.strong(universe, seed);
            fail_on_tier_error(value, error)
        })
    }

    fn try_distinguisher(
        &self,
        universe: u64,
        n: usize,
        seed: u64,
    ) -> Result<Arc<Distinguisher>, StructureError> {
        timed_wait(|| {
            let (value, error) = self.materialised_distinguisher(universe, n, seed);
            fail_on_tier_error(value, error)
        })
    }

    fn try_selective_family(
        &self,
        universe: u64,
        n: usize,
        seed: u64,
    ) -> Result<Arc<SelectiveFamily>, StructureError> {
        timed_wait(|| {
            let (value, error) = self.materialised_selective_family(universe, n, seed);
            fail_on_tier_error(value, error)
        })
    }
}

/// Writes bytes atomically next to `path` (process-unique temp + rename).
/// The temp name is unique per call — pid plus a process-wide sequence
/// number — so concurrent publishers never write through the same path.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    static PUBLISH_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = PUBLISH_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("{}-{seq}.tmp", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Whether the entry file no longer holds `seen` (a concurrent publisher
/// superseded it — the caller should retry, never condemn).
fn entry_changed(entry_path: &Path, seen: &IndexEntry) -> bool {
    !matches!(
        StructureStore::read_index_entry(entry_path),
        Ok(Some(current)) if current == *seen
    )
}

/// Removes an index entry **only if it still holds the bytes the caller
/// judged** — a concurrent supersede must never lose its freshly published
/// entry to a reader that was looking at the old one.
fn remove_entry_if_unchanged(entry_path: &Path, seen: &IndexEntry) {
    if !entry_changed(entry_path, seen) {
        std::fs::remove_file(entry_path).ok();
    }
}

/// Whether a present blob file fails its own validation (used to decide if
/// a load failure should take the blob down with the entry — a blob that
/// still proves itself may be serving other keys, and a *missing* one
/// leaves nothing to remove).
fn blob_is_corrupt(path: &Path) -> bool {
    if !path.exists() {
        return false;
    }
    blob_is_unusable(path)
}

/// Whether a blob file is missing, unreadable or invalid — i.e. cannot
/// serve the entries that reference it (the strict complement of a fresh
/// successful validation; used before condemning an index entry).
fn blob_is_unusable(path: &Path) -> bool {
    let Ok(file) = std::fs::File::open(path) else {
        return true;
    };
    let Ok(meta) = file.metadata() else {
        return true;
    };
    match codec::validate_blob_stream(file, meta.len()) {
        Ok(summary) => Some(summary.digest) != digest_from_name(path),
        Err(_) => true,
    }
}

/// The digest a blob file's name claims.
fn digest_from_name(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    u64::from_str_radix(stem, 16).ok()
}

/// The claim-file path guarding a key's construction.
fn claim_path(entry_path: &Path) -> PathBuf {
    entry_path.with_extension("claim")
}

/// Attempts to create the claim file atomically; `true` = this caller now
/// holds the claim.
fn try_claim(claim: &Path) -> bool {
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(claim)
        .is_ok()
}

/// Whether a claim file has outlived [`CLAIM_WAIT`] (its holder is
/// presumed dead). A claim whose age cannot be determined is treated as
/// live — waiting is always safe, wrongly breaking a claim is not.
fn claim_is_stale(claim: &Path) -> bool {
    std::fs::metadata(claim)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|modified| std::time::SystemTime::now().duration_since(modified).ok())
        .is_some_and(|age| age > CLAIM_WAIT)
}

/// Whether a file is older than [`CLAIM_WAIT`] (the gc grace below which a
/// just-published, not-yet-indexed blob must not be reclaimed).
fn older_than_grace(path: &Path) -> bool {
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|modified| std::time::SystemTime::now().duration_since(modified).ok())
        .is_some_and(|age| age > CLAIM_WAIT)
}

/// One file's verdict from a store-directory scan.
#[derive(Clone, Debug)]
pub struct StoreFileReport {
    /// The file scanned.
    pub path: PathBuf,
    /// The decoded logical key (index entries and valid v1 files; `None`
    /// for payload blobs, which deliberately carry no identity).
    pub key: Option<StructureKey>,
    /// Number of sets the file holds or resolves to (valid files only).
    pub sets: usize,
    /// Why the file is invalid (`None` = fully valid).
    pub error: Option<String>,
}

/// Validates every file of a store directory — content-addressed blobs
/// (streamed, constant memory), index entries (parsed, their referenced
/// blob required to be present and valid) and legacy v1 files — reporting
/// each file's validity. A missing directory scans as empty (a run that
/// never published is a valid, empty store).
///
/// # Errors
///
/// Propagates directory-listing I/O failures (per-file problems are
/// reported, not raised).
pub fn scan_store_dir(dir: &Path) -> io::Result<Vec<StoreFileReport>> {
    let mut reports = Vec::new();
    let mut valid_blobs: HashSet<u64> = HashSet::new();

    // 1. Blobs: self-validating; the file name must equal the content
    //    digest (a mis-filed blob would be unresolvable or worse).
    for path in list_with_extension(&dir.join("blobs"), BLOB_EXTENSION)? {
        let validated = std::fs::File::open(&path)
            .and_then(|file| Ok((file.metadata()?.len(), file)))
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|(len, file)| {
                codec::validate_blob_stream(file, len).map_err(|e| e.to_string())
            });
        let report = match validated {
            Ok(summary) => {
                let named = digest_from_name(&path);
                let error = (named != Some(summary.digest)).then(|| {
                    format!(
                        "blob file name does not match its content digest {}",
                        codec::format_checksum(summary.digest)
                    )
                });
                if error.is_none() {
                    valid_blobs.insert(summary.digest);
                }
                StoreFileReport {
                    path,
                    key: None,
                    sets: summary.count,
                    error,
                }
            }
            Err(error) => StoreFileReport {
                path,
                key: None,
                sets: 0,
                error: Some(error),
            },
        };
        reports.push(report);
    }

    // 2. Index entries: must parse, must be filed under their key's name,
    //    and must reference a present, valid blob.
    for path in list_with_extension(&dir.join("index"), INDEX_EXTENSION)? {
        let parsed = std::fs::read_to_string(&path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|text| IndexEntry::parse(&text).map_err(|e| e.to_string()));
        let report = match parsed {
            Ok(entry) => {
                let expected = expected_index_name(&entry);
                let actual = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                let error = if actual != expected {
                    Some(format!(
                        "index entry is not filed under its key (expected {expected})"
                    ))
                } else if !valid_blobs.contains(&entry.digest)
                    // The blob listing above is a snapshot; a publisher may
                    // have landed blob + entry since. Never condemn an
                    // entry without re-checking its blob on disk right now.
                    && blob_is_unusable(&StructureStore::blob_path(dir, entry.digest))
                {
                    Some(format!(
                        "entry references blob {} which is missing or invalid",
                        codec::format_checksum(entry.digest)
                    ))
                } else {
                    None
                };
                StoreFileReport {
                    path,
                    key: Some(entry.key),
                    sets: entry.count,
                    error,
                }
            }
            Err(error) => StoreFileReport {
                path,
                key: None,
                sets: 0,
                error: Some(error),
            },
        };
        reports.push(report);
    }

    // 3. Legacy v1 files at the top level.
    for path in list_with_extension(dir, STORE_EXTENSION)? {
        let validated = std::fs::File::open(&path)
            .and_then(|file| Ok((file.metadata()?.len(), file)))
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|(len, file)| codec::validate_stream(file, len).map_err(|e| e.to_string()));
        let report = match validated {
            Ok((key, sets)) => StoreFileReport {
                error: expected_name_mismatch(&path, &key),
                path,
                key: Some(key),
                sets,
            },
            Err(error) => StoreFileReport {
                path,
                key: None,
                sets: 0,
                error: Some(error),
            },
        };
        reports.push(report);
    }
    reports.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(reports)
}

/// The index-file name an entry must be filed under.
fn expected_index_name(entry: &IndexEntry) -> String {
    if entry.key.kind == StructureKind::StrongDistinguisher {
        StructureStore::strong_index_name(entry.key.universe)
    } else {
        StructureStore::index_name(&entry.key)
    }
}

/// Lists the files of one extension in a directory (missing directory =
/// empty).
fn list_with_extension(dir: &Path, extension: &str) -> io::Result<Vec<PathBuf>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some(extension) {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Removes the `*.tmp` / `*.claim` leftovers of crashed constructors from a
/// store directory and its `blobs/` / `index/` subdirectories. `resume`
/// runs this before re-launching workers — an orphaned claim would
/// otherwise stall every re-launched worker's first lookup of that key for
/// the full [`CLAIM_WAIT`]. Only files older than that same grace period
/// are touched: a *young* temp file may be a concurrent publisher's
/// in-flight write (gc is safe to run against a live fleet), and a young
/// claim delays nobody beyond the wait it already bounds. Returns the
/// number removed; a missing directory sweeps as zero.
///
/// # Errors
///
/// Propagates directory-listing and removal I/O failures.
pub fn sweep_stale_files(dir: &Path) -> io::Result<usize> {
    let mut removed = 0;
    for sub in [dir.to_path_buf(), dir.join("blobs"), dir.join("index")] {
        let entries = match std::fs::read_dir(&sub) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if (name.ends_with(".claim") || name.ends_with(".tmp")) && older_than_grace(&path) {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

/// A decoded v1 file published under a name that names a different key is
/// as corrupt as a bad checksum: a keyed lookup would load the wrong
/// structure's bytes (the codec's key check catches it, but the file is
/// garbage and should be reported).
fn expected_name_mismatch(path: &Path, key: &StructureKey) -> Option<String> {
    let expected = StructureStore::file_name(key);
    let actual = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    (actual != expected).then(|| format!("file name does not match its key (expected {expected})"))
}

/// Removes every invalid file in `dir` (what `resume` runs before
/// re-launching workers — like shard revalidation, a file that no longer
/// proves itself is dropped and rebuilt, never trusted). Returns the
/// removed paths.
///
/// # Errors
///
/// Propagates directory-listing and removal I/O failures.
pub fn revalidate_store_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut removed = Vec::new();
    for report in scan_store_dir(dir)? {
        if report.error.is_some() {
            std::fs::remove_file(&report.path)?;
            removed.push(report.path);
        }
    }
    Ok(removed)
}

/// Garbage-collection report of [`gc_store_dir`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Invalid blobs, index entries and v1 files removed.
    pub corrupt: usize,
    /// Stale `*.tmp` / `*.claim` leftovers removed.
    pub stale: usize,
    /// Valid blobs no index entry references (superseded strong prefixes,
    /// keys whose entries were dropped) removed — only past the
    /// [`CLAIM_WAIT`] grace age, and judged against a fresh re-read of the
    /// index taken immediately before removal, so a blob superseded by a
    /// flush *during* the gc pass is reclaimed in that same pass instead of
    /// lingering until the next one.
    pub unreferenced: usize,
    /// Valid files kept.
    pub kept: usize,
}

/// Cleans a store directory: removes invalid files, the `*.tmp` /
/// `*.claim` leftovers of crashed constructors, and unreferenced payload
/// blobs; keeps everything that still proves itself and is still
/// reachable.
///
/// GC never deletes a blob a live index entry references: candidates are
/// every aged valid blob from one validated scan (the age gate covers
/// publishers, who write their blob moments before its entry), and each
/// removal is decided against a re-read of the index taken immediately
/// before the removal pass. Judging *every* aged blob against that re-read
/// — not only the ones the scan saw unreferenced — means a strong blob
/// superseded by a concurrent flush after the scan is reclaimed in this
/// pass rather than surviving as an orphan until the next one.
///
/// # Errors
///
/// Propagates directory-listing and removal I/O failures.
pub fn gc_store_dir(dir: &Path) -> io::Result<GcReport> {
    gc_store_dir_with(dir, || {})
}

/// [`gc_store_dir`] with a seam between the validating scan and the
/// condemnation re-read, so tests can interleave a flush at exactly the
/// point where the old candidate logic went stale.
fn gc_store_dir_with(dir: &Path, after_scan: impl FnOnce()) -> io::Result<GcReport> {
    let mut report = GcReport {
        stale: sweep_stale_files(dir)?,
        ..GcReport::default()
    };
    let mut valid_blobs: Vec<(PathBuf, u64)> = Vec::new();
    for file in scan_store_dir(dir)? {
        if file.error.is_some() {
            std::fs::remove_file(&file.path)?;
            report.corrupt += 1;
            continue;
        }
        report.kept += 1;
        if file.path.extension().and_then(|e| e.to_str()) == Some(BLOB_EXTENSION) {
            if let Some(digest) = digest_from_name(&file.path) {
                valid_blobs.push((file.path.clone(), digest));
            }
        }
    }
    // Every aged valid blob is a candidate; liveness is decided solely by
    // one fresh re-read of the index after the candidate list is fixed. A
    // blob whose entry landed after the scan is never reclaimed, and a blob
    // whose entry was *replaced* after the scan (a flush superseding a
    // strong prefix) no longer lingers to the next gc. (The age gate
    // already protects publishers between the re-read and the removals;
    // re-reading per candidate would make gc O(blobs × entries) for no
    // additional guarantee.)
    let candidates: Vec<(PathBuf, u64)> = valid_blobs
        .into_iter()
        .filter(|(path, _)| older_than_grace(path))
        .collect();
    after_scan();
    if !candidates.is_empty() {
        let referenced_now = current_referenced_digests(dir)?;
        for (path, digest) in candidates {
            if referenced_now.contains(&digest) {
                continue;
            }
            match std::fs::remove_file(&path) {
                Ok(()) => report.unreferenced += 1,
                // A superseding flush reclaims the blob it replaced itself;
                // losing that race to it is success, not failure.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
            report.kept -= 1;
        }
    }
    Ok(report)
}

/// The digests the index directory references right now (parse failures
/// reference nothing).
fn current_referenced_digests(dir: &Path) -> io::Result<HashSet<u64>> {
    let mut digests = HashSet::new();
    for path in list_with_extension(&dir.join("index"), INDEX_EXTENSION)? {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(entry) = IndexEntry::parse(&text) {
                digests.insert(entry.digest);
            }
        }
    }
    Ok(digests)
}

/// Per-kind usage statistics of a store directory (the `ringlab structures
/// stats` report).
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct KindStats {
    /// Logical keys resolvable through the v2 index (unmigrated legacy v1
    /// files are tallied separately in
    /// [`StoreDirStats::legacy_v1_files`]).
    pub logical_keys: usize,
    /// Distinct blobs those keys resolve to.
    pub blobs: usize,
    /// Total bytes of those blobs.
    pub bytes: u64,
    /// `logical_keys / blobs` — the content-addressing dedup ratio (1.0 =
    /// no sharing; the strong kind's ratio grows with every extra seed).
    pub dedup_ratio: f64,
}

/// Store-wide usage statistics, per kind plus totals.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize)]
pub struct StoreDirStats {
    /// Strong-distinguisher entries (logical keys counted per universal
    /// entry; seed views share them).
    pub strong: KindStats,
    /// Materialised distinguisher entries.
    pub dist: KindStats,
    /// Selective-family entries.
    pub select: KindStats,
    /// Legacy v1 files still unmigrated.
    pub legacy_v1_files: usize,
    /// Total on-disk bytes (blobs + index entries + v1 files).
    pub total_bytes: u64,
}

/// Computes per-kind blob counts, byte totals and dedup ratios over a
/// store directory (valid files only; corrupt files are ignored, as
/// `verify` reports them separately).
///
/// # Errors
///
/// Propagates directory-listing I/O failures.
pub fn store_dir_stats(dir: &Path) -> io::Result<StoreDirStats> {
    let mut stats = StoreDirStats::default();
    let mut per_kind: HashMap<StructureKind, (usize, HashSet<u64>)> = HashMap::new();
    let mut blob_sizes: HashMap<u64, u64> = HashMap::new();
    for path in list_with_extension(&dir.join("blobs"), BLOB_EXTENSION)? {
        if let (Some(digest), Ok(meta)) = (digest_from_name(&path), std::fs::metadata(&path)) {
            blob_sizes.insert(digest, meta.len());
            stats.total_bytes += meta.len();
        }
    }
    for path in list_with_extension(&dir.join("index"), INDEX_EXTENSION)? {
        stats.total_bytes += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(entry) = IndexEntry::parse(&text) else {
            continue;
        };
        let slot = per_kind.entry(entry.key.kind).or_default();
        slot.0 += 1;
        slot.1.insert(entry.digest);
    }
    for path in list_with_extension(dir, STORE_EXTENSION)? {
        stats.legacy_v1_files += 1;
        stats.total_bytes += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    }
    let finish = |kind: StructureKind| {
        let (keys, digests) = per_kind.get(&kind).cloned().unwrap_or_default();
        let bytes = digests.iter().filter_map(|d| blob_sizes.get(d)).sum();
        KindStats {
            logical_keys: keys,
            blobs: digests.len(),
            bytes,
            dedup_ratio: if digests.is_empty() {
                0.0
            } else {
                keys as f64 / digests.len() as f64
            },
        }
    };
    stats.strong = finish(StructureKind::StrongDistinguisher);
    stats.dist = finish(StructureKind::Distinguisher);
    stats.select = finish(StructureKind::SelectiveFamily);
    Ok(stats)
}

/// Writes a key's structure as a **legacy v1 file** into `dir` — the
/// fixture path for migration tooling and tests (`structures prebuild
/// --format v1`). Strong keys encode the seed's windowed view, exactly
/// what a v1 store held for that key.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_v1_file(dir: &Path, key: &StructureKey, prefix_hint: usize) -> io::Result<PathBuf> {
    let path = dir.join(StructureStore::file_name(key));
    let bytes = match key.kind {
        StructureKind::StrongDistinguisher => {
            let strong = SharedStrongDistinguisher::new(key.universe, key.seed);
            let len = strong.prefix_size_for(prefix_hint.max(2));
            let sets: Vec<Arc<IdSet>> = (0..len).map(|i| strong.set(i)).collect();
            codec::encode(key, &sets)
        }
        StructureKind::Distinguisher => codec::encode(
            key,
            Distinguisher::random(key.universe, key.n as usize, key.seed).sets(),
        ),
        StructureKind::SelectiveFamily => codec::encode(
            key,
            SelectiveFamily::random(key.universe, key.n as usize, key.seed).sets(),
        ),
    };
    std::fs::create_dir_all(dir)?;
    std::fs::write(&path, bytes)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_protocols::structures::FreshStructures;

    fn temp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ring-harness-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn memory_only_store_behaves_like_the_cache() {
        let store = StructureStore::in_memory();
        let a = store.distinguisher(256, 4, 9);
        let b = store.distinguisher(256, 4, 9);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.cache_stats().hits, 1);
        assert_eq!(store.stats(), StoreStats::default());
        assert!(store.dir().is_none());
        assert_eq!(store.flush().unwrap(), 0);
    }

    #[test]
    fn disk_tier_publishes_and_second_store_loads() {
        let dir = temp_store("publish");
        let first = StructureStore::at(&dir).unwrap();
        let constructed = first.distinguisher(512, 4, 7);
        let family = first.selective_family(512, 4, 7);
        assert_eq!(first.stats(), StoreStats { hits: 0, misses: 2 });

        // A second store (a second worker process) loads instead of
        // constructing, bit-identically.
        let second = StructureStore::at(&dir).unwrap();
        let loaded = second.distinguisher(512, 4, 7);
        assert_eq!(*loaded, *constructed);
        assert_eq!(*second.selective_family(512, 4, 7), *family);
        assert_eq!(second.stats(), StoreStats { hits: 2, misses: 0 });

        // And everything equals a fresh construction.
        let fresh = FreshStructures;
        assert_eq!(*loaded, *fresh.distinguisher(512, 4, 7));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strong_prefixes_flush_and_reload_shared_across_seeds() {
        let dir = temp_store("strong");
        let first = StructureStore::at(&dir).unwrap();
        let strong = first.strong_distinguisher(1 << 10, 3);
        for i in 0..6 {
            strong.set(i);
        }
        assert_eq!(first.stats(), StoreStats { hits: 0, misses: 1 });
        assert_eq!(first.flush().unwrap(), 1);
        // Nothing grew: the second flush writes nothing.
        assert_eq!(first.flush().unwrap(), 0);
        strong.set(9);
        assert_eq!(first.flush().unwrap(), 1);

        let second = StructureStore::at(&dir).unwrap();
        let reloaded = second.strong_distinguisher(1 << 10, 3);
        assert_eq!(second.stats(), StoreStats { hits: 1, misses: 0 });
        assert_eq!(reloaded.materialized_len(), 10);
        // Prefix sets and lazily generated continuations both match.
        let fresh = FreshStructures.strong_distinguisher(1 << 10, 3);
        for i in 0..12 {
            assert_eq!(*reloaded.set(i), *fresh.set(i), "set {i}");
        }
        // A *different* seed of the same universe is served from the same
        // universal blob — no extra disk event, no extra blob.
        let other = second.strong_distinguisher(1 << 10, 77);
        assert_eq!(second.stats(), StoreStats { hits: 1, misses: 0 });
        assert_eq!(
            *other.set(0),
            *FreshStructures.strong_distinguisher(1 << 10, 77).set(0)
        );
        let blobs = list_with_extension(&dir.join("blobs"), BLOB_EXTENSION).unwrap();
        assert_eq!(blobs.len(), 1, "one universal blob per universe");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_never_replaces_a_longer_stored_prefix() {
        let dir = temp_store("prefix-race");
        // Two workers start before any file exists (both miss), then
        // materialise different prefix lengths of the same universal
        // sequence.
        let a = StructureStore::at(&dir).unwrap();
        let b = StructureStore::at(&dir).unwrap();
        let sa = a.strong_distinguisher(512, 5);
        let sb = b.strong_distinguisher(512, 5);
        for i in 0..12 {
            sa.set(i);
        }
        for i in 0..3 {
            sb.set(i);
        }
        assert_eq!(a.flush().unwrap(), 1);
        // The shorter prefix must not clobber the longer published one.
        assert_eq!(b.flush().unwrap(), 0);
        let c = StructureStore::at(&dir).unwrap();
        let reloaded = c.strong_distinguisher(512, 5);
        assert!(reloaded.materialized_len() >= 12);
        // Superseding left exactly one strong blob (the shorter one was
        // reclaimed by the flush that published the longer prefix).
        let blobs = list_with_extension(&dir.join("blobs"), BLOB_EXTENSION).unwrap();
        assert_eq!(blobs.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_files_are_rebuilt_and_surfaced_on_the_fallible_path() {
        let dir = temp_store("corrupt");
        let first = StructureStore::at(&dir).unwrap();
        let good = first.distinguisher(256, 4, 5);
        let entry = StructureStore::read_index_entry(&dir.join("index").join(
            StructureStore::index_name(&StructureKey {
                kind: StructureKind::Distinguisher,
                universe: 256,
                n: 4,
                seed: 5,
            }),
        ))
        .unwrap()
        .unwrap();
        let blob = StructureStore::blob_path(&dir, entry.digest);
        // Flip one payload byte.
        let mut bytes = std::fs::read(&blob).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x40;
        std::fs::write(&blob, &bytes).unwrap();

        // The fallible path reports the corruption; the returned structure
        // is still the correct reconstruction.
        let second = StructureStore::at(&dir).unwrap();
        let err = second.try_distinguisher(256, 4, 5).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        assert_eq!(second.stats(), StoreStats { hits: 0, misses: 1 });

        // ...and it republished a healthy blob: a third store loads.
        let third = StructureStore::at(&dir).unwrap();
        assert_eq!(*third.try_distinguisher(256, 4, 5).unwrap(), *good);
        assert_eq!(third.stats(), StoreStats { hits: 1, misses: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_files_are_served_and_migrate_in_place() {
        let dir = temp_store("v1-compat");
        std::fs::create_dir_all(&dir).unwrap();
        let key = StructureKey {
            kind: StructureKind::Distinguisher,
            universe: 256,
            n: 4,
            seed: 21,
        };
        write_v1_file(&dir, &key, 4).unwrap();
        let strong_key = StructureKey {
            kind: StructureKind::StrongDistinguisher,
            universe: 512,
            n: 0,
            seed: 9,
        };
        write_v1_file(&dir, &strong_key, 8).unwrap();

        // V1 materialised files are served directly (a store hit).
        let store = StructureStore::at(&dir).unwrap();
        let served = store.try_distinguisher(256, 4, 21).unwrap();
        assert_eq!(*served, *FreshStructures.distinguisher(256, 4, 21));
        assert_eq!(store.stats().hits, 1);

        // Migration rewrites everything onto the v2 layout and removes the
        // v1 files; a post-migration store serves every key from v2 with
        // zero misses.
        let migrator = StructureStore::at(&dir).unwrap();
        let report = migrator.migrate().unwrap();
        assert_eq!(report.materialised, 1);
        assert_eq!(report.strong, 1);
        assert_eq!(report.dropped, 0);
        assert!(list_with_extension(&dir, STORE_EXTENSION)
            .unwrap()
            .is_empty());
        // Idempotent.
        assert_eq!(
            StructureStore::at(&dir).unwrap().migrate().unwrap(),
            MigrateReport::default()
        );

        let warm = StructureStore::at(&dir).unwrap();
        assert_eq!(
            *warm.try_distinguisher(256, 4, 21).unwrap(),
            *FreshStructures.distinguisher(256, 4, 21)
        );
        let strong = warm.try_strong_distinguisher(512, 9).unwrap();
        assert!(strong.materialized_len() >= strong.prefix_size_for(8));
        assert_eq!(
            *strong.set(3),
            *FreshStructures.strong_distinguisher(512, 9).set(3)
        );
        assert_eq!(warm.stats().misses, 0);
        // Everything verifies clean.
        for report in scan_store_dir(&dir).unwrap() {
            assert!(report.error.is_none(), "{:?}", report);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_revalidate_and_gc_partition_the_directory() {
        let dir = temp_store("scan");
        let store = StructureStore::at(&dir).unwrap();
        store.distinguisher(128, 4, 1);
        store.selective_family(128, 4, 1);
        // A corrupt legacy file, a corrupt blob, a dangling entry, a stale
        // claim and a stale temp file.
        std::fs::write(
            dir.join(format!("dist-u64-n2-s{:016x}.{STORE_EXTENSION}", 3)),
            b"not a structure",
        )
        .unwrap();
        std::fs::write(
            dir.join("blobs")
                .join(format!("{:016x}.{BLOB_EXTENSION}", 0xbad)),
            b"not a blob",
        )
        .unwrap();
        std::fs::write(
            dir.join("index")
                .join(format!("dist-u64-n2-s{:016x}.{INDEX_EXTENSION}", 5)),
            IndexEntry {
                key: StructureKey {
                    kind: StructureKind::Distinguisher,
                    universe: 64,
                    n: 2,
                    seed: 5,
                },
                digest: 0xdead,
                count: 1,
            }
            .format(),
        )
        .unwrap();
        let claim = dir.join("index").join("dist-u64-n2-s03.claim");
        let leftover = dir.join("leftover.tmp");
        std::fs::write(&claim, b"").unwrap();
        std::fs::write(&leftover, b"").unwrap();
        // Backdate the leftovers past the claim grace: young tmp/claim
        // files belong to live publishers and must survive a sweep.
        assert_eq!(sweep_stale_files(&dir).unwrap(), 0);
        for stale in [&claim, &leftover] {
            assert!(std::process::Command::new("touch")
                .args(["-m", "-d", "2 hours ago"])
                .arg(stale)
                .status()
                .map(|s| s.success())
                .unwrap_or(false));
        }

        let reports = scan_store_dir(&dir).unwrap();
        // 2 blobs + 2 entries from the real structures, plus 3 bad files.
        assert_eq!(reports.len(), 7);
        assert_eq!(reports.iter().filter(|r| r.error.is_some()).count(), 3);

        let gc = gc_store_dir(&dir).unwrap();
        assert_eq!(
            gc,
            GcReport {
                corrupt: 3,
                stale: 2,
                unreferenced: 0,
                kept: 4
            }
        );
        // Post-gc the directory verifies clean.
        assert!(revalidate_store_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_reclaims_blobs_superseded_between_scan_and_condemnation() {
        let dir = temp_store("gc-flush-race");
        let store = StructureStore::at(&dir).unwrap();
        let strong = store.strong_distinguisher(512, 5);
        for i in 0..3 {
            strong.set(i);
        }
        assert_eq!(store.flush().unwrap(), 1);
        let old_blob = {
            let blobs = list_with_extension(&dir.join("blobs"), BLOB_EXTENSION).unwrap();
            assert_eq!(blobs.len(), 1);
            blobs[0].clone()
        };
        // Age the published blob past the claim grace so gc may judge it.
        assert!(std::process::Command::new("touch")
            .args(["-m", "-d", "2 hours ago"])
            .arg(&old_blob)
            .status()
            .map(|s| s.success())
            .unwrap_or(false));
        // A flush supersedes the scanned blob *between* gc's validating
        // scan and its condemnation re-read — the exact interleaving that
        // used to leave the old blob orphaned until the next gc run. The
        // hand publish (rather than `flush`) models the fleet race where
        // the superseding flusher's own best-effort reclaim lost out.
        let base = StrongBase::new(512);
        let longer: Vec<Arc<IdSet>> = (0..12).map(|j| base.set(j)).collect();
        let gc = gc_store_dir_with(&dir, || {
            store
                .publish(
                    &dir,
                    &dir.join("index")
                        .join(StructureStore::strong_index_name(512)),
                    StructureStore::strong_universal_key(512),
                    &longer,
                )
                .unwrap();
        })
        .unwrap();
        assert_eq!(gc.unreferenced, 1, "the superseded blob is reclaimed");
        assert!(!old_blob.exists());
        // The longer prefix survives, loads, and verifies clean.
        let reloaded = StructureStore::at(&dir)
            .unwrap()
            .try_strong_distinguisher(512, 5)
            .unwrap();
        assert!(reloaded.base().materialized_len() >= 12);
        assert!(revalidate_store_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_payloads_under_different_keys_share_one_blob() {
        let dir = temp_store("dedup");
        let store = StructureStore::at(&dir).unwrap();
        let d = store.distinguisher(128, 4, 9);
        // Publish the same payload under a second logical key by hand (the
        // situation content addressing exists for).
        let other = StructureKey {
            kind: StructureKind::Distinguisher,
            universe: 128,
            n: 4,
            seed: 1234,
        };
        let sets: Vec<Arc<IdSet>> = d.sets().iter().cloned().map(Arc::new).collect();
        store
            .publish(
                &dir,
                &dir.join("index").join(StructureStore::index_name(&other)),
                other,
                &sets,
            )
            .unwrap();
        let blobs = list_with_extension(&dir.join("blobs"), BLOB_EXTENSION).unwrap();
        assert_eq!(blobs.len(), 1, "identical payloads must dedup to one blob");
        let stats = store_dir_stats(&dir).unwrap();
        assert_eq!(stats.dist.logical_keys, 2);
        assert_eq!(stats.dist.blobs, 1);
        assert!((stats.dist.dedup_ratio - 2.0).abs() < 1e-9);
        // Both keys load the shared payload. (The loaded structure carries
        // the requesting key's parameters; only the payload is shared.)
        let second = StructureStore::at(&dir).unwrap();
        assert_eq!(*second.try_distinguisher(128, 4, 1234).unwrap(), *d);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_stores_converge_with_one_construction_fleetwide() {
        let dir = temp_store("fleet");
        // Several "processes" (independent stores sharing one directory)
        // race on the same key; the claim discipline lets one construct and
        // the rest load, and everyone agrees bit for bit.
        let stores: Vec<_> = (0..4)
            .map(|_| Arc::new(StructureStore::at(&dir).unwrap()))
            .collect();
        let handles: Vec<_> = stores
            .iter()
            .map(|store| {
                let store = Arc::clone(store);
                std::thread::spawn(move || store.distinguisher(1 << 12, 8, 42))
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.windows(2).all(|w| *w[0] == *w[1]));
        let misses: u64 = stores.iter().map(|s| s.stats().misses).sum();
        let hits: u64 = stores.iter().map(|s| s.stats().hits).sum();
        assert_eq!(hits + misses, 4);
        assert!(misses >= 1, "someone must have constructed");
        assert_eq!(
            misses, 1,
            "the claim discipline must keep construction fleet-unique"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
