//! The two-tier structure store.
//!
//! [`StructureStore`] is the structure pathway of every sweep: **tier 1**
//! is the in-memory sharded [`StructureCache`] (one per engine, shared by
//! every worker thread), **tier 2** an optional on-disk directory of
//! `structure-store/v1` files (see [`ring_combinat::codec`]) shared by
//! every worker *process* of a run — threads, shards on this machine, and
//! workers on other machines pointed at the same directory.
//!
//! A request walks the tiers in order: tier-1 hit → `Arc` clone; tier-1
//! miss → try to load the key's file (a **store hit**); no file → construct
//! (a **store miss**) and publish so the rest of the fleet loads instead of
//! constructing. Publication is atomic (a process-unique temp file renamed
//! into place) and guarded by a **single-constructor claim**: the first
//! worker to create the key's `.claim` file constructs, everyone else polls
//! briefly for the published file instead of burning CPU on a duplicate
//! construction. Claims are advisory — a stale claim (crashed constructor)
//! delays a waiter by at most [`CLAIM_WAIT`] and is cleaned up by the next
//! publisher — so the store can never deadlock a sweep.
//!
//! Strong-distinguisher sequences materialise lazily while protocols run,
//! so they cannot be published at construction time; [`StructureStore::flush`]
//! (called by the engine after every run) persists each sequence's
//! materialised prefix when it grew beyond what the file holds. Loading a
//! prefix seeds [`SharedStrongDistinguisher::with_prefix`]; sets beyond the
//! stored prefix regenerate lazily and bit-identically.
//!
//! Correctness never depends on the disk tier: decoded payloads are
//! checksum- and canonical-form-validated (a corrupt file is discarded and
//! reconstructed, surfaced as an error only on the fallible
//! [`StructureProvider`] path), and a loaded structure is bit-identical to
//! a fresh construction, so merged sweep output is byte-identical with or
//! without a store.

use crate::cache::{CacheStats, CachedStructure, StructureCache};
use ring_combinat::codec;
use ring_combinat::{
    Distinguisher, SelectiveFamily, SharedStrongDistinguisher, StructureKey, StructureKind,
};
use ring_protocols::structures::{StructureError, StructureProvider};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// File extension of published structure files.
pub const STORE_EXTENSION: &str = "struct";

/// Longest a worker waits for another constructor's publication before
/// constructing the structure itself.
pub const CLAIM_WAIT: Duration = Duration::from_secs(10);

/// Poll interval while waiting on a claimed key.
const CLAIM_POLL: Duration = Duration::from_millis(25);

/// Disk-tier effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize)]
pub struct StoreStats {
    /// Tier-2 lookups served by loading a published file.
    pub hits: u64,
    /// Tier-2 lookups that fell through to construction.
    pub misses: u64,
}

/// The two-tier structure store (in-memory cache + optional disk tier).
#[derive(Debug)]
pub struct StructureStore {
    cache: StructureCache,
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Strong-prefix lengths already on disk, so `flush` republishes only
    /// sequences that grew.
    persisted_strong: Mutex<HashMap<StructureKey, usize>>,
}

impl Default for StructureStore {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl StructureStore {
    /// A memory-only store (tier 1 alone) — the behaviour of the engine
    /// before the disk tier existed, and the default of
    /// [`SweepEngine::new`](crate::engine::SweepEngine::new).
    pub fn in_memory() -> Self {
        StructureStore {
            cache: StructureCache::new(),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persisted_strong: Mutex::new(HashMap::new()),
        }
    }

    /// A store backed by `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates the directory creation failure.
    pub fn at(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(StructureStore {
            dir: Some(dir),
            ..Self::in_memory()
        })
    }

    /// The disk-tier directory (`None` for a memory-only store).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The in-memory tier.
    pub fn cache(&self) -> &StructureCache {
        &self.cache
    }

    /// Tier-1 counters (thread-level sharing).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Tier-2 counters (process-level sharing); all zero for a memory-only
    /// store.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The file name a key publishes under.
    pub fn file_name(key: &StructureKey) -> String {
        let kind = match key.kind {
            StructureKind::StrongDistinguisher => "strong",
            StructureKind::Distinguisher => "dist",
            StructureKind::SelectiveFamily => "select",
        };
        format!(
            "{kind}-u{}-n{}-s{:016x}.{STORE_EXTENSION}",
            key.universe, key.n, key.seed
        )
    }

    /// The key's path in the disk tier (`None` for a memory-only store).
    pub fn file_path(&self, key: &StructureKey) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| dir.join(Self::file_name(key)))
    }

    /// Loads and fully validates the key's published file (streaming
    /// single-pass decode — structure files run to hundreds of megabytes,
    /// so no whole-file buffer is ever materialised).
    fn load_sets(&self, key: &StructureKey) -> Result<Option<Vec<ring_combinat::IdSet>>, String> {
        let Some(path) = self.file_path(key) else {
            return Ok(None);
        };
        let file = match std::fs::File::open(&path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        let len = file
            .metadata()
            .map_err(|e| format!("cannot stat {}: {e}", path.display()))?
            .len();
        codec::decode_stream_for_key(key, file, len)
            .map(Some)
            .map_err(|e| format!("corrupt structure file {}: {e}", path.display()))
    }

    /// The tier-2 walk for a materialised structure: load, or wait out
    /// another constructor's claim, or construct-and-publish. Returns the
    /// structure plus the first tier error (corrupt file, failed publish) —
    /// which the infallible provider path logs and the fallible path
    /// surfaces.
    fn disk_or_construct<T>(
        &self,
        key: &StructureKey,
        decode: impl Fn(Vec<ring_combinat::IdSet>) -> T,
        construct: impl FnOnce() -> T,
        encode: impl Fn(&T) -> Vec<u8>,
    ) -> (T, Option<String>) {
        let Some(path) = self.file_path(key) else {
            return (construct(), None);
        };
        let mut tier_error = None;
        match self.load_sets(key) {
            Ok(Some(sets)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (decode(sets), None);
            }
            Ok(None) => {}
            Err(e) => {
                // A corrupt file must never win over reconstruction; drop
                // it so the republication below heals the store.
                std::fs::remove_file(&path).ok();
                tier_error = Some(e);
            }
        }

        // Single-constructor discipline: first claimant constructs, the
        // rest poll for its publication (bounded — a stale claim only
        // delays, never blocks).
        let claim = claim_path(&path);
        let claimed = try_claim(&claim);
        if claimed && tier_error.is_none() {
            // A racing constructor may have published (and cleared its own
            // claim) between our lookup and our claim; one re-check turns
            // that race into a load instead of a duplicate construction.
            if let Ok(Some(sets)) = self.load_sets(key) {
                std::fs::remove_file(&claim).ok();
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (decode(sets), None);
            }
        }
        if !claimed && tier_error.is_none() {
            let deadline = std::time::Instant::now() + CLAIM_WAIT;
            loop {
                std::thread::sleep(CLAIM_POLL);
                match self.load_sets(key) {
                    Ok(Some(sets)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (decode(sets), None);
                    }
                    Ok(None) => {}
                    Err(_) => break, // constructor published garbage; rebuild
                }
                if !claim.exists() || std::time::Instant::now() >= deadline {
                    break;
                }
            }
            // Last look before doing the work ourselves: the claimant may
            // have published between the poll and the deadline.
            if let Ok(Some(sets)) = self.load_sets(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (decode(sets), None);
            }
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = construct();
        let bytes = encode(&value);
        let publish = self
            .write_bytes(&path, &bytes)
            .map_err(|e| format!("cannot publish {}: {e}", path.display()));
        if let Err(e) = publish {
            // The publication never landed, so no rename cleared the claim;
            // drop it here or every other process would wait out the full
            // CLAIM_WAIT on a key nobody is constructing.
            std::fs::remove_file(&claim).ok();
            tier_error.get_or_insert(e);
        }
        (value, tier_error)
    }

    /// Atomic byte-level publication (shared by the typed paths and
    /// `flush`). The temp name is unique per call — pid plus a process-wide
    /// sequence number — so concurrent publishers of one key (two threads
    /// that both saw a corrupt file, or a claim-wait timeout racing the
    /// claimant) never write through the same temp path.
    fn write_bytes(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        static PUBLISH_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = PUBLISH_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("{}-{seq}.tmp", std::process::id()));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)?;
        std::fs::remove_file(claim_path(path)).ok();
        Ok(())
    }

    /// Persists every strong-distinguisher prefix that grew beyond what the
    /// store holds. Called by the engine after each run; safe to call
    /// concurrently from many processes: prefixes of one key are prefixes
    /// of one deterministic sequence, renames are atomic, and publication
    /// is claim-guarded with an on-disk length re-check under the claim —
    /// a shorter prefix never replaces a longer published one. (A flusher
    /// that finds the key claimed by a concurrent flusher defers to it;
    /// any sets it alone materialised regenerate lazily and bit-identically
    /// wherever they are next demanded.) Returns the number of files
    /// written.
    ///
    /// # Errors
    ///
    /// Returns the first publication failure (remaining entries are still
    /// attempted).
    pub fn flush(&self) -> Result<usize, StructureError> {
        if self.dir.is_none() {
            return Ok(0);
        }
        let mut written = 0;
        let mut first_error = None;
        for (key, strong) in self.cache.strong_entries() {
            let sets = strong.materialized();
            let persisted = {
                let map = self.persisted_strong.lock().expect("persisted map");
                map.get(&key).copied().unwrap_or(0)
            };
            if sets.len() <= persisted {
                continue;
            }
            let path = self.file_path(&key).expect("disk tier present");
            // Serialise concurrent flushers of this key: the loser defers —
            // unless the claim has outlived [`CLAIM_WAIT`], in which case
            // its holder is dead (strong keys are published only by flush,
            // so nothing else would ever clear it) and it is broken here.
            let claim = claim_path(&path);
            let mut claimed = try_claim(&claim);
            if !claimed && claim_is_stale(&claim) {
                std::fs::remove_file(&claim).ok();
                claimed = try_claim(&claim);
            }
            if !claimed {
                continue;
            }
            // Under the claim, check what is actually on disk so a short
            // prefix never clobbers a longer one.
            if let Some(on_disk) = stored_set_count(&path, &key) {
                if sets.len() <= on_disk {
                    self.persisted_strong
                        .lock()
                        .expect("persisted map")
                        .insert(key, on_disk);
                    std::fs::remove_file(&claim).ok();
                    continue;
                }
            }
            match self.write_bytes(&path, &codec::encode(&key, &sets)) {
                Ok(()) => {
                    written += 1;
                    self.persisted_strong
                        .lock()
                        .expect("persisted map")
                        .insert(key, sets.len());
                }
                Err(e) => {
                    std::fs::remove_file(&claim).ok();
                    first_error.get_or_insert(StructureError::new(format!(
                        "cannot publish {}: {e}",
                        path.display()
                    )));
                }
            }
        }
        match first_error {
            None => Ok(written),
            Some(e) => Err(e),
        }
    }

    /// The strong-distinguisher walk: tier-1 memo, then a disk-tier load of
    /// the materialised prefix, then a fresh lazy sequence. Publication
    /// happens in [`StructureStore::flush`]. The disk walk runs *before*
    /// tier-1 insertion so no shard lock is held across file I/O; racing
    /// threads resolve independently and adopt whichever value lands in
    /// the memo first (bit-identical either way).
    fn strong(
        &self,
        universe: u64,
        seed: u64,
    ) -> (Arc<SharedStrongDistinguisher>, Option<String>) {
        let key = StructureKey {
            kind: StructureKind::StrongDistinguisher,
            universe,
            n: 0,
            seed,
        };
        if let Some(cached) = self.cache.peek(&key) {
            match cached {
                CachedStructure::Strong(s) => return (s, None),
                _ => unreachable!("kind is part of the key"),
            }
        }
        let mut tier_error = None;
        let mut value = None;
        if self.dir.is_some() {
            match self.load_sets(&key) {
                Ok(Some(sets)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.persisted_strong
                        .lock()
                        .expect("persisted map")
                        .insert(key, sets.len());
                    value = Some(Arc::new(SharedStrongDistinguisher::with_prefix(
                        universe, seed, sets,
                    )));
                }
                Ok(None) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    if let Some(path) = self.file_path(&key) {
                        std::fs::remove_file(path).ok();
                    }
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    tier_error = Some(e);
                }
            }
        }
        let value =
            value.unwrap_or_else(|| Arc::new(SharedStrongDistinguisher::new(universe, seed)));
        match self
            .cache
            .get_or_insert(key, || CachedStructure::Strong(value))
        {
            CachedStructure::Strong(s) => (s, tier_error),
            _ => unreachable!("kind is part of the key"),
        }
    }

    fn materialised_distinguisher(
        &self,
        universe: u64,
        n: usize,
        seed: u64,
    ) -> (Arc<Distinguisher>, Option<String>) {
        let key = StructureKey {
            kind: StructureKind::Distinguisher,
            universe,
            n: n as u64,
            seed,
        };
        if let Some(cached) = self.cache.peek(&key) {
            match cached {
                CachedStructure::Distinguisher(d) => return (d, None),
                _ => unreachable!("kind is part of the key"),
            }
        }
        // Resolved outside any shard lock: the disk walk may sleep waiting
        // on another process's claim, and that must never block unrelated
        // keys of the same cache shard.
        let (value, tier_error) = self.disk_or_construct(
            &key,
            |sets| Arc::new(Distinguisher::from_sets(universe, n, sets)),
            || Arc::new(Distinguisher::random(universe, n, seed)),
            |d| codec::encode(&key, d.sets()),
        );
        match self
            .cache
            .get_or_insert(key, || CachedStructure::Distinguisher(value))
        {
            CachedStructure::Distinguisher(d) => (d, tier_error),
            _ => unreachable!("kind is part of the key"),
        }
    }

    fn materialised_selective_family(
        &self,
        universe: u64,
        n: usize,
        seed: u64,
    ) -> (Arc<SelectiveFamily>, Option<String>) {
        let key = StructureKey {
            kind: StructureKind::SelectiveFamily,
            universe,
            n: n as u64,
            seed,
        };
        if let Some(cached) = self.cache.peek(&key) {
            match cached {
                CachedStructure::Selective(f) => return (f, None),
                _ => unreachable!("kind is part of the key"),
            }
        }
        let (value, tier_error) = self.disk_or_construct(
            &key,
            |sets| Arc::new(SelectiveFamily::from_sets(universe, n, sets)),
            || Arc::new(SelectiveFamily::random(universe, n, seed)),
            |f| codec::encode(&key, f.sets()),
        );
        match self
            .cache
            .get_or_insert(key, || CachedStructure::Selective(value))
        {
            CachedStructure::Selective(f) => (f, tier_error),
            _ => unreachable!("kind is part of the key"),
        }
    }
}

/// Logs a non-fatal disk-tier problem (the infallible provider path: the
/// structure was still served, from reconstruction).
fn log_tier_error(error: &Option<String>) {
    if let Some(error) = error {
        eprintln!("ring-harness: structure store: {error} (reconstructed)");
    }
}

fn fail_on_tier_error<T>(value: T, error: Option<String>) -> Result<T, StructureError> {
    match error {
        None => Ok(value),
        Some(e) => Err(StructureError::new(e)),
    }
}

impl StructureProvider for StructureStore {
    fn strong_distinguisher(&self, universe: u64, seed: u64) -> Arc<SharedStrongDistinguisher> {
        let (value, error) = self.strong(universe, seed);
        log_tier_error(&error);
        value
    }

    fn distinguisher(&self, universe: u64, n: usize, seed: u64) -> Arc<Distinguisher> {
        let (value, error) = self.materialised_distinguisher(universe, n, seed);
        log_tier_error(&error);
        value
    }

    fn selective_family(&self, universe: u64, n: usize, seed: u64) -> Arc<SelectiveFamily> {
        let (value, error) = self.materialised_selective_family(universe, n, seed);
        log_tier_error(&error);
        value
    }

    fn try_strong_distinguisher(
        &self,
        universe: u64,
        seed: u64,
    ) -> Result<Arc<SharedStrongDistinguisher>, StructureError> {
        let (value, error) = self.strong(universe, seed);
        fail_on_tier_error(value, error)
    }

    fn try_distinguisher(
        &self,
        universe: u64,
        n: usize,
        seed: u64,
    ) -> Result<Arc<Distinguisher>, StructureError> {
        let (value, error) = self.materialised_distinguisher(universe, n, seed);
        fail_on_tier_error(value, error)
    }

    fn try_selective_family(
        &self,
        universe: u64,
        n: usize,
        seed: u64,
    ) -> Result<Arc<SelectiveFamily>, StructureError> {
        let (value, error) = self.materialised_selective_family(universe, n, seed);
        fail_on_tier_error(value, error)
    }
}

/// The claim-file path guarding a structure file's construction.
fn claim_path(structure_file: &Path) -> PathBuf {
    structure_file.with_extension("claim")
}

/// Attempts to create the claim file atomically; `true` = this caller now
/// holds the claim.
fn try_claim(claim: &Path) -> bool {
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(claim)
        .is_ok()
}

/// Whether a claim file has outlived [`CLAIM_WAIT`] (its holder is
/// presumed dead). A claim whose age cannot be determined is treated as
/// live — waiting is always safe, wrongly breaking a claim is not.
fn claim_is_stale(claim: &Path) -> bool {
    std::fs::metadata(claim)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|modified| std::time::SystemTime::now().duration_since(modified).ok())
        .is_some_and(|age| age > CLAIM_WAIT)
}

/// The set count recorded in a published file's header, provided the
/// header matches `key` (`None` for a missing, foreign or short file —
/// callers treat those as "nothing usable on disk"). Reads 56 bytes; used
/// by `flush` to avoid replacing a longer prefix with a shorter one.
fn stored_set_count(path: &Path, key: &StructureKey) -> Option<usize> {
    use std::io::Read;
    let mut header = [0u8; 56];
    let mut file = std::fs::File::open(path).ok()?;
    file.read_exact(&mut header).ok()?;
    if header[..8] != codec::MAGIC {
        return None;
    }
    let field = |offset: usize| {
        u64::from_le_bytes(header[offset..offset + 8].try_into().expect("8 bytes"))
    };
    let matches = field(8) == codec::VERSION
        && field(16) == key.kind.code()
        && field(24) == key.universe
        && field(32) == key.n
        && field(40) == key.seed;
    matches.then(|| field(48) as usize)
}

/// One file's verdict from a store-directory scan.
#[derive(Clone, Debug)]
pub struct StoreFileReport {
    /// The file scanned.
    pub path: PathBuf,
    /// The decoded key (valid files only).
    pub key: Option<StructureKey>,
    /// Number of sets in the payload (valid files only).
    pub sets: usize,
    /// Why the file is invalid (`None` = fully valid).
    pub error: Option<String>,
}

/// Validates every `*.struct` file in a store directory (streaming,
/// constant memory — no file is ever buffered whole), reporting each
/// file's validity. A missing directory scans as empty (a run that never
/// published is a valid, empty store).
///
/// # Errors
///
/// Propagates directory-listing I/O failures (per-file problems are
/// reported, not raised).
pub fn scan_store_dir(dir: &Path) -> io::Result<Vec<StoreFileReport>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut reports = Vec::new();
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some(STORE_EXTENSION) {
            continue;
        }
        let validated = std::fs::File::open(&path)
            .and_then(|file| Ok((file.metadata()?.len(), file)))
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|(len, file)| {
                codec::validate_stream(file, len).map_err(|e| e.to_string())
            });
        let report = match validated {
            Ok((key, sets)) => StoreFileReport {
                error: expected_name_mismatch(&path, &key),
                path,
                key: Some(key),
                sets,
            },
            Err(error) => StoreFileReport {
                path,
                key: None,
                sets: 0,
                error: Some(error),
            },
        };
        reports.push(report);
    }
    reports.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(reports)
}

/// Removes the `*.tmp` / `*.claim` leftovers of crashed constructors.
/// `resume` runs this before re-launching workers — an orphaned claim
/// would otherwise stall every re-launched worker's first lookup of that
/// key for the full [`CLAIM_WAIT`]. Returns the number removed; a missing
/// directory sweeps as zero.
///
/// # Errors
///
/// Propagates directory-listing and removal I/O failures.
pub fn sweep_stale_files(dir: &Path) -> io::Result<usize> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut removed = 0;
    for entry in entries {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".claim") || name.ends_with(".tmp") {
            std::fs::remove_file(&path)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// A decoded file published under a name that names a different key is as
/// corrupt as a bad checksum: a keyed lookup would load the wrong
/// structure's bytes (the codec's key check catches it, but the file is
/// garbage and should be reported).
fn expected_name_mismatch(path: &Path, key: &StructureKey) -> Option<String> {
    let expected = StructureStore::file_name(key);
    let actual = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    (actual != expected).then(|| format!("file name does not match its key (expected {expected})"))
}

/// Removes every invalid structure file in `dir` (what `resume` runs before
/// re-launching workers — like shard revalidation, a file that no longer
/// proves itself is dropped and rebuilt, never trusted). Returns the
/// removed paths.
///
/// # Errors
///
/// Propagates directory-listing and removal I/O failures.
pub fn revalidate_store_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut removed = Vec::new();
    for report in scan_store_dir(dir)? {
        if report.error.is_some() {
            std::fs::remove_file(&report.path)?;
            removed.push(report.path);
        }
    }
    Ok(removed)
}

/// Garbage-collection report of [`gc_store_dir`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Invalid `*.struct` files removed.
    pub corrupt: usize,
    /// Stale `*.tmp` / `*.claim` leftovers removed.
    pub stale: usize,
    /// Valid structure files kept.
    pub kept: usize,
}

/// Cleans a store directory: removes invalid structure files and the
/// `*.tmp` / `*.claim` leftovers of crashed constructors; keeps everything
/// that still proves itself. One scan decides everything — each structure
/// file is read and validated exactly once.
///
/// # Errors
///
/// Propagates directory-listing and removal I/O failures.
pub fn gc_store_dir(dir: &Path) -> io::Result<GcReport> {
    let mut report = GcReport {
        stale: sweep_stale_files(dir)?,
        ..GcReport::default()
    };
    for file in scan_store_dir(dir)? {
        if file.error.is_some() {
            std::fs::remove_file(&file.path)?;
            report.corrupt += 1;
        } else {
            report.kept += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_protocols::structures::FreshStructures;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ring-harness-store-{tag}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn memory_only_store_behaves_like_the_cache() {
        let store = StructureStore::in_memory();
        let a = store.distinguisher(256, 4, 9);
        let b = store.distinguisher(256, 4, 9);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.cache_stats().hits, 1);
        assert_eq!(store.stats(), StoreStats::default());
        assert!(store.dir().is_none());
        assert_eq!(store.flush().unwrap(), 0);
    }

    #[test]
    fn disk_tier_publishes_and_second_store_loads() {
        let dir = temp_store("publish");
        let first = StructureStore::at(&dir).unwrap();
        let constructed = first.distinguisher(512, 4, 7);
        let family = first.selective_family(512, 4, 7);
        assert_eq!(first.stats(), StoreStats { hits: 0, misses: 2 });

        // A second store (a second worker process) loads instead of
        // constructing, bit-identically.
        let second = StructureStore::at(&dir).unwrap();
        let loaded = second.distinguisher(512, 4, 7);
        assert_eq!(*loaded, *constructed);
        assert_eq!(*second.selective_family(512, 4, 7), *family);
        assert_eq!(second.stats(), StoreStats { hits: 2, misses: 0 });

        // And everything equals a fresh construction.
        let fresh = FreshStructures;
        assert_eq!(*loaded, *fresh.distinguisher(512, 4, 7));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strong_prefixes_flush_and_reload() {
        let dir = temp_store("strong");
        let first = StructureStore::at(&dir).unwrap();
        let strong = first.strong_distinguisher(1 << 10, 3);
        for i in 0..6 {
            strong.set(i);
        }
        assert_eq!(first.stats(), StoreStats { hits: 0, misses: 1 });
        assert_eq!(first.flush().unwrap(), 1);
        // Nothing grew: the second flush writes nothing.
        assert_eq!(first.flush().unwrap(), 0);
        strong.set(9);
        assert_eq!(first.flush().unwrap(), 1);

        let second = StructureStore::at(&dir).unwrap();
        let reloaded = second.strong_distinguisher(1 << 10, 3);
        assert_eq!(second.stats(), StoreStats { hits: 1, misses: 0 });
        assert_eq!(reloaded.materialized_len(), 10);
        // Prefix sets and lazily generated continuations both match.
        let fresh = FreshStructures.strong_distinguisher(1 << 10, 3);
        for i in 0..12 {
            assert_eq!(*reloaded.set(i), *fresh.set(i), "set {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_never_replaces_a_longer_stored_prefix() {
        let dir = temp_store("prefix-race");
        // Two workers start before any file exists (both miss), then
        // materialise different prefix lengths of the same sequence.
        let a = StructureStore::at(&dir).unwrap();
        let b = StructureStore::at(&dir).unwrap();
        let sa = a.strong_distinguisher(512, 5);
        let sb = b.strong_distinguisher(512, 5);
        for i in 0..12 {
            sa.set(i);
        }
        for i in 0..3 {
            sb.set(i);
        }
        assert_eq!(a.flush().unwrap(), 1);
        // The shorter prefix must not clobber the longer published one.
        assert_eq!(b.flush().unwrap(), 0);
        let c = StructureStore::at(&dir).unwrap();
        assert_eq!(c.strong_distinguisher(512, 5).materialized_len(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_files_are_rebuilt_and_surfaced_on_the_fallible_path() {
        let dir = temp_store("corrupt");
        let first = StructureStore::at(&dir).unwrap();
        let good = first.distinguisher(256, 4, 5);
        let path = first
            .file_path(&StructureKey {
                kind: StructureKind::Distinguisher,
                universe: 256,
                n: 4,
                seed: 5,
            })
            .unwrap();
        // Flip one payload byte.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        // The fallible path reports the corruption; the returned structure
        // is still the correct reconstruction.
        let second = StructureStore::at(&dir).unwrap();
        let err = second.try_distinguisher(256, 4, 5).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        assert_eq!(second.stats(), StoreStats { hits: 0, misses: 1 });

        // ...and it republished a healthy file: a third store loads.
        let third = StructureStore::at(&dir).unwrap();
        assert_eq!(*third.try_distinguisher(256, 4, 5).unwrap(), *good);
        assert_eq!(third.stats(), StoreStats { hits: 1, misses: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_revalidate_and_gc_partition_the_directory() {
        let dir = temp_store("scan");
        let store = StructureStore::at(&dir).unwrap();
        store.distinguisher(128, 4, 1);
        store.selective_family(128, 4, 1);
        // A corrupt file, a stale claim and a stale temp file.
        let corrupt = dir.join(format!("dist-u64-n2-s{:016x}.{STORE_EXTENSION}", 3));
        std::fs::write(&corrupt, b"not a structure").unwrap();
        std::fs::write(dir.join("dist-u64-n2-s0000000000000003.claim"), b"").unwrap();
        std::fs::write(dir.join("leftover.tmp"), b"").unwrap();

        let reports = scan_store_dir(&dir).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports.iter().filter(|r| r.error.is_some()).count(), 1);

        let gc = gc_store_dir(&dir).unwrap();
        assert_eq!(gc, GcReport { corrupt: 1, stale: 2, kept: 2 });
        // Post-gc the directory verifies clean.
        assert!(revalidate_store_dir(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn files_published_under_the_wrong_name_are_reported() {
        let dir = temp_store("misfile");
        let store = StructureStore::at(&dir).unwrap();
        store.distinguisher(128, 4, 1);
        let key = StructureKey {
            kind: StructureKind::Distinguisher,
            universe: 128,
            n: 4,
            seed: 1,
        };
        let good = dir.join(StructureStore::file_name(&key));
        let renamed = dir.join(format!("dist-u128-n4-s{:016x}.{STORE_EXTENSION}", 99));
        std::fs::rename(&good, &renamed).unwrap();
        let reports = scan_store_dir(&dir).unwrap();
        assert_eq!(reports.len(), 1);
        assert!(reports[0].error.as_deref().unwrap().contains("name"));
        // A keyed load under the name's key refuses the mismatched payload
        // and reconstructs.
        let second = StructureStore::at(&dir).unwrap();
        let err = second.try_distinguisher(128, 4, 99).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_stores_converge_with_one_construction_fleetwide() {
        let dir = temp_store("fleet");
        // Several "processes" (independent stores sharing one directory)
        // race on the same key; the claim discipline lets one construct and
        // the rest load, and everyone agrees bit for bit.
        let stores: Vec<_> = (0..4)
            .map(|_| Arc::new(StructureStore::at(&dir).unwrap()))
            .collect();
        let handles: Vec<_> = stores
            .iter()
            .map(|store| {
                let store = Arc::clone(store);
                std::thread::spawn(move || store.distinguisher(1 << 12, 8, 42))
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.windows(2).all(|w| *w[0] == *w[1]));
        let misses: u64 = stores.iter().map(|s| s.stats().misses).sum();
        let hits: u64 = stores.iter().map(|s| s.stats().hits).sum();
        assert_eq!(hits + misses, 4);
        assert!(misses >= 1, "someone must have constructed");
        assert_eq!(
            misses, 1,
            "the claim discipline must keep construction fleet-unique"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
