//! The combinatorial structure cache.
//!
//! Distinguishers and selective families are the dominant per-case cost of
//! a sweep at large `N`, and every construction is a pure function of its
//! [`StructureKey`]. [`StructureCache`] memoises them once per sweep in a
//! sharded, `Arc`-backed map: the first request for a key constructs the
//! structure (holding only that key's shard lock), every later request —
//! from any worker thread — gets a cheap `Arc` clone of the same read-only
//! value.
//!
//! The cache implements [`StructureProvider`], so installing it is one
//! [`Network::with_structures`](ring_protocols::Network::with_structures)
//! call per case; the protocols themselves are provider-agnostic. Because
//! the cached structures are bit-identical to freshly constructed ones,
//! caching can never change a protocol outcome (the harness test-suite
//! pins this down).

use ring_combinat::{
    Distinguisher, SelectiveFamily, SharedStrongDistinguisher, StructureKey, StructureKind,
};
use ring_protocols::structures::StructureProvider;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards. Sixteen keeps same-shard
/// contention negligible for the worker counts the executor spawns while
/// staying cheap to scan for statistics.
const SHARD_COUNT: usize = 16;

/// One memoised structure.
#[derive(Clone, Debug)]
pub(crate) enum CachedStructure {
    Strong(Arc<SharedStrongDistinguisher>),
    Distinguisher(Arc<Distinguisher>),
    Selective(Arc<SelectiveFamily>),
}

/// Cache effectiveness counters (monotone; read with [`StructureCache::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct CacheStats {
    /// Requests served from the memo.
    pub hits: u64,
    /// Requests that had to construct.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of requests served from the memo (0 when nothing was
    /// requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe memo of combinatorial structures keyed by
/// `(kind, N, n, seed)`.
#[derive(Debug, Default)]
pub struct StructureCache {
    shards: Vec<Mutex<HashMap<StructureKey, CachedStructure>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StructureCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        StructureCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Hit/miss counters accumulated since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of structures currently memoised.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("structure cache shard").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serves `key` from the memo without constructing, counting a hit
    /// when present. The two-tier [`crate::store::StructureStore`] peeks
    /// first so its disk-tier walk (which may sleep waiting on another
    /// process's claim) never runs under a shard lock.
    pub(crate) fn peek(&self, key: &StructureKey) -> Option<CachedStructure> {
        let started = std::time::Instant::now();
        let shard = (key.mix() % SHARD_COUNT as u64) as usize;
        let map = self.shards[shard].lock().expect("structure cache shard");
        let cached = map.get(key).cloned();
        if cached.is_some() {
            self.note_tier1_hit(started);
        }
        cached
    }

    /// Counts a tier-1 hit and records how long the memo lookup (shard
    /// lock plus map probe) took to serve it.
    fn note_tier1_hit(&self, started: std::time::Instant) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        ring_obs::global()
            .histogram("store_tier1_hit_ns")
            .record(ring_obs::elapsed_ns(started));
    }

    /// Serves `key` from the memo, constructing it with `make` on first
    /// request. The construction runs under the key's shard lock, which
    /// deliberately serialises concurrent first requests for the same key
    /// (building an expensive structure twice costs more than briefly
    /// blocking the shard). The two-tier [`crate::store::StructureStore`]
    /// reuses this memo as its tier 1, with a `make` that adopts a value
    /// resolved outside the lock.
    pub(crate) fn get_or_insert(
        &self,
        key: StructureKey,
        make: impl FnOnce() -> CachedStructure,
    ) -> CachedStructure {
        let started = std::time::Instant::now();
        let shard = (key.mix() % SHARD_COUNT as u64) as usize;
        let mut map = self.shards[shard].lock().expect("structure cache shard");
        if let Some(cached) = map.get(&key) {
            self.note_tier1_hit(started);
            return cached.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = make();
        map.insert(key, built.clone());
        built
    }
}

impl StructureProvider for StructureCache {
    fn strong_distinguisher(&self, universe: u64, seed: u64) -> Arc<SharedStrongDistinguisher> {
        let key = StructureKey {
            kind: StructureKind::StrongDistinguisher,
            universe,
            n: 0,
            seed,
        };
        match self.get_or_insert(key, || {
            CachedStructure::Strong(Arc::new(SharedStrongDistinguisher::new(universe, seed)))
        }) {
            CachedStructure::Strong(s) => s,
            _ => unreachable!("kind is part of the key"),
        }
    }

    fn distinguisher(&self, universe: u64, n: usize, seed: u64) -> Arc<Distinguisher> {
        let key = StructureKey {
            kind: StructureKind::Distinguisher,
            universe,
            n: n as u64,
            seed,
        };
        match self.get_or_insert(key, || {
            CachedStructure::Distinguisher(Arc::new(Distinguisher::random(universe, n, seed)))
        }) {
            CachedStructure::Distinguisher(d) => d,
            _ => unreachable!("kind is part of the key"),
        }
    }

    fn selective_family(&self, universe: u64, n: usize, seed: u64) -> Arc<SelectiveFamily> {
        let key = StructureKey {
            kind: StructureKind::SelectiveFamily,
            universe,
            n: n as u64,
            seed,
        };
        match self.get_or_insert(key, || {
            CachedStructure::Selective(Arc::new(SelectiveFamily::random(universe, n, seed)))
        }) {
            CachedStructure::Selective(f) => f,
            _ => unreachable!("kind is part of the key"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring_protocols::structures::FreshStructures;

    #[test]
    fn repeated_requests_hit_and_share() {
        let cache = StructureCache::new();
        let a = cache.distinguisher(256, 4, 9);
        let b = cache.distinguisher(256, 4, 9);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn kinds_and_parameters_are_distinct_keys() {
        let cache = StructureCache::new();
        cache.distinguisher(256, 4, 9);
        cache.selective_family(256, 4, 9);
        cache.strong_distinguisher(256, 9);
        cache.distinguisher(256, 4, 10);
        cache.distinguisher(512, 4, 9);
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn cached_structures_equal_fresh_ones() {
        let cache = StructureCache::new();
        let fresh = FreshStructures;
        assert_eq!(
            *cache.distinguisher(128, 4, 3),
            *fresh.distinguisher(128, 4, 3)
        );
        assert_eq!(
            *cache.selective_family(128, 4, 3),
            *fresh.selective_family(128, 4, 3)
        );
        assert_eq!(
            *cache.strong_distinguisher(128, 3).set(5),
            *fresh.strong_distinguisher(128, 3).set(5)
        );
    }

    #[test]
    fn concurrent_requests_converge_on_one_entry() {
        let cache = Arc::new(StructureCache::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || cache.distinguisher(512, 8, 1).len())
            })
            .collect();
        let lens: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 3);
    }
}
