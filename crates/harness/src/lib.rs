//! # ring-harness
//!
//! The parallel scenario engine of the reproduction: runs sweeps of
//! thousands of experiment cases as fast as the hardware allows, with
//! results that are bit-identical regardless of thread count.
//!
//! The crate has four layers:
//!
//! * [`executor`] — a work-stealing thread pool over `std::thread`. Work
//!   items are striped over per-worker deques; idle workers steal from the
//!   back of busy ones; results come back in item order.
//! * [`cache`] / [`store`] — the two-tier structure pathway. Tier 1 is
//!   the [`StructureCache`](cache::StructureCache): a sharded, `Arc`-backed
//!   memo of the expensive combinatorial structures (distinguishers,
//!   strong-distinguisher sequences, selective families) keyed by
//!   `(kind, N, n, seed)`, shared by every worker thread. Tier 2 — the
//!   [`StructureStore`](store::StructureStore)'s optional on-disk
//!   directory of `structure-store/v1` files — extends the memo across
//!   worker *processes*: the first worker of a fleet to claim a key
//!   constructs and publishes, everyone else loads bit-identical bytes.
//!   The store implements
//!   [`StructureProvider`](ring_protocols::structures::StructureProvider),
//!   so every worker's `Network` draws from the same pathway and each
//!   structure is constructed once per fleet instead of once per case or
//!   process — the dominant per-case cost at large `N`.
//! * [`sink`] — the streaming [`JsonlSink`](sink::JsonlSink): one JSON
//!   line per finished case, emitted incrementally but in deterministic
//!   case order via a reorder buffer.
//! * [`scenario`] / [`engine`] — [`WorkItem`](scenario::WorkItem)s wrap
//!   the per-case experiment functions of `ring-experiments`;
//!   [`SweepEngine`](engine::SweepEngine) ties the three layers together.
//!   With `--batch N` the engine schedules consecutive same-shape cases
//!   as one [`CaseBatch`](engine::CaseBatch) work unit that resolves its
//!   shared structures once per batch — a pure scheduling change whose
//!   output stays byte-identical at every limit.
//!
//! [`cli`] exposes everything as the **`ringlab`** binary; the former
//! per-experiment binaries (`table1` … `repro_all`) are thin wrappers over
//! its subcommands:
//!
//! ```text
//! ringlab all --quick --jobs 2
//! ringlab sweep --sizes 32,64 --universe-factors 4,64 --reps 5 --jobs 8
//! ringlab sweep --shards 8                  # 8 worker processes, merged
//! ringlab sweep --shard 2/8 --jsonl s2.jsonl # one shard, by hand
//! ringlab resume results/distrib/sweep       # finish a crashed run
//! ```
//!
//! Above the in-process engine sits the **distributed layer**
//! (`ring-distrib`, wired up by [`cli`]): `--shards M` plans the case
//! index space into M contiguous ranges, spawns `ringlab worker` child
//! processes speaking a line-delimited JSON protocol over stdout, tracks
//! progress in a checkpointed `manifest.json` (per-shard status, retries,
//! checksums, cache/executor stats) and k-way-merges the shard files into
//! output byte-identical to the single-process run. `worker`, `merge` and
//! `resume` expose the layer's pieces individually, so a sweep can also be
//! hand-partitioned across machines and reassembled later.
//!
//! ## Determinism
//!
//! Three properties make `--jobs N` bit-identical to `--jobs 1`: case
//! seeds are a pure splitmix64 mix of `(seed, n, factor, rep)`; cached
//! structures are bit-identical to freshly constructed ones (both
//! ultimately call the same seeded constructions); and the sink reorders
//! completions back into case order. The harness test-suite pins each
//! property down separately and end to end — and, through the real
//! `ringlab` binary, extends the same guarantee to `--shards M` for every
//! M, including after worker crashes and `resume`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod cli;
pub mod engine;
pub mod executor;
pub mod scenario;
pub mod sink;
pub mod store;

pub use cache::{CacheStats, StructureCache};
pub use engine::{plan_batches, CaseBatch, SweepEngine};
pub use executor::{available_jobs, run_work_stealing};
pub use scenario::{CaseRecord, WorkItem};
pub use sink::JsonlSink;
pub use store::{StoreStats, StructureStore};
