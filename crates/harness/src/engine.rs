//! The sweep engine: executor + two-tier structure store + streaming sink.
//!
//! [`SweepEngine::run`] fans a list of [`WorkItem`]s out over the
//! work-stealing executor. Every worker draws combinatorial structures
//! from one shared [`StructureStore`] — tier 1 the in-memory cache every
//! thread shares, tier 2 an optional on-disk directory every worker
//! *process* of a sweep shares — and streams its finished [`CaseRecord`]
//! through the ordered JSONL sink the moment it completes. With a batch
//! limit above one ([`SweepEngine::with_batch_limit`]), consecutive
//! same-shape cases travel as one [`CaseBatch`] work unit that resolves
//! its shared structures once per batch. Results are deterministic: the
//! record list, the JSONL bytes and the rendered markdown are identical
//! for every `--jobs` and batch-limit value, with or without the disk
//! tier.

use crate::cache::{CacheStats, StructureCache};
use crate::executor::{run_work_stealing_with_stats, ExecutorStats};
use crate::scenario::{CaseRecord, WorkItem};
use crate::sink::JsonlSink;
use crate::store::{StoreStats, StructureStore};
use ring_combinat::StructureKind;
use ring_protocols::structures::SharedStructures;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A contiguous run of same-shape cases scheduled as one work unit.
///
/// Indices are slice-local (relative to the item slice of the run); sweep
/// enumeration places repetitions of one `(N, n)` configuration adjacently,
/// so consecutive-run grouping captures exactly the cases that share
/// structures while keeping the sink's reorder window bounded by the batch
/// limit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CaseBatch {
    /// Slice-local index of the first case of the batch.
    pub start: usize,
    /// Number of cases in the batch.
    pub len: usize,
}

/// Groups consecutive same-shape items (see [`WorkItem::same_shape`]) into
/// batches of at most `limit` cases. `limit <= 1` yields one batch per
/// item — the unbatched schedule.
pub fn plan_batches(items: &[WorkItem], limit: usize) -> Vec<CaseBatch> {
    let limit = limit.max(1);
    let mut batches = Vec::new();
    let mut start = 0usize;
    while start < items.len() {
        let mut len = 1usize;
        while len < limit
            && start + len < items.len()
            && items[start].same_shape(&items[start + len])
        {
            len += 1;
        }
        batches.push(CaseBatch { start, len });
        start += len;
    }
    batches
}

/// The parallel scenario engine.
pub struct SweepEngine {
    jobs: usize,
    batch: usize,
    store: Arc<StructureStore>,
    executed: AtomicU64,
    steals: AtomicU64,
}

impl SweepEngine {
    /// Creates an engine running `jobs` worker threads (`0` = all cores)
    /// with a fresh memory-only structure store.
    pub fn new(jobs: usize) -> Self {
        Self::with_store(jobs, Arc::new(StructureStore::in_memory()))
    }

    /// Creates an engine over an existing store (a disk-backed one, or a
    /// shared in-memory store carrying warm structures across consecutive
    /// sweeps of one CLI invocation).
    pub fn with_store(jobs: usize, store: Arc<StructureStore>) -> Self {
        SweepEngine {
            jobs,
            batch: 1,
            store,
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Sets the case-batching limit: consecutive same-shape cases are
    /// scheduled as one work unit of up to `limit` cases, resolving their
    /// shared combinatorial structures once per batch instead of once per
    /// case. `1` (the default) disables batching. Batching is a pure
    /// scheduling change — the record list and the sink bytes are identical
    /// for every limit, which `tests/harness.rs` pins.
    pub fn with_batch_limit(mut self, limit: usize) -> Self {
        self.batch = limit.max(1);
        self
    }

    /// The configured worker count (`0` = all cores).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The configured case-batching limit (`1` = batching off).
    pub fn batch_limit(&self) -> usize {
        self.batch
    }

    /// The engine's two-tier structure store.
    pub fn store(&self) -> &Arc<StructureStore> {
        &self.store
    }

    /// The store's in-memory tier.
    pub fn cache(&self) -> &StructureCache {
        self.store.cache()
    }

    /// In-memory-tier effectiveness so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.store.cache_stats()
    }

    /// Disk-tier effectiveness so far (all zero without a disk tier).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Executor scheduling counters accumulated over every run of this
    /// engine.
    pub fn exec_stats(&self) -> ExecutorStats {
        ExecutorStats {
            executed: self.executed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }

    /// Runs every item, streaming each finished record to `sink` (as one
    /// compact JSON line, in case order) and returning all records in case
    /// order.
    pub fn run<W: Write + Send>(
        &self,
        items: &[WorkItem],
        sink: Option<&JsonlSink<W>>,
    ) -> Vec<CaseRecord> {
        self.run_with_offset(items, 0, sink)
    }

    /// Runs a contiguous slice of a larger sweep: item `i` of the slice is
    /// case `offset + i` of the sweep, and its record (and JSONL line)
    /// carries that **global** index. This is what a shard worker runs —
    /// the emitted lines are byte-identical to the corresponding lines of
    /// the full single-process sweep. The sink still receives slice-local
    /// indices for ordering.
    pub fn run_with_offset<W: Write + Send>(
        &self,
        items: &[WorkItem],
        offset: usize,
        sink: Option<&JsonlSink<W>>,
    ) -> Vec<CaseRecord> {
        let structures: SharedStructures = self.store.clone();
        let obs = ring_obs::global();
        let structure_wait = obs.histogram("case_structure_wait_ns");
        let execute = obs.histogram("case_execute_ns");
        let sink_reorder = obs.histogram("sink_reorder_ns");
        let batching = self.batch > 1;
        let batch_size = obs.histogram("batch_size");
        let batch_wait = obs.histogram("batch_structure_wait_ns");
        let batches = plan_batches(items, self.batch);
        let (chunks, stats) = run_work_stealing_with_stats(&batches, self.jobs, |_, batch| {
            // One shared structure handle per work unit: resolve the
            // batch's keys once up front and hold the Arcs across every
            // case, so the per-case provider calls below are pure pointer
            // clones out of a warm cache. The prefetch wait is recorded
            // separately (`batch_structure_wait_ns`) from the per-case
            // split, making the amortisation visible in trace summaries.
            let mut held: Vec<Box<dyn std::any::Any>> = Vec::new();
            if batching {
                batch_size.record(batch.len as u64);
            }
            // A singleton batch (shape-alternating workload) gains nothing
            // from prefetching — the lone case resolves the same keys
            // itself — so skip the extra provider round-trip.
            if batching && batch.len > 1 {
                crate::store::reset_structure_wait();
                for (key, _materialise_n) in items[batch.start].structure_keys() {
                    match key.kind {
                        StructureKind::StrongDistinguisher => {
                            if let Ok(s) =
                                structures.try_strong_distinguisher(key.universe, key.seed)
                            {
                                held.push(Box::new(s));
                            }
                        }
                        StructureKind::Distinguisher => {
                            if let Ok(d) =
                                structures.try_distinguisher(key.universe, key.n as usize, key.seed)
                            {
                                held.push(Box::new(d));
                            }
                        }
                        StructureKind::SelectiveFamily => {
                            if let Ok(f) = structures.try_selective_family(
                                key.universe,
                                key.n as usize,
                                key.seed,
                            ) {
                                held.push(Box::new(f));
                            }
                        }
                    }
                }
                batch_wait.record(crate::store::take_structure_wait_ns());
            }
            let mut records = Vec::with_capacity(batch.len);
            for (index, item) in items.iter().enumerate().skip(batch.start).take(batch.len) {
                let _span = ring_obs::span!("case", index = offset + index);
                // Split case time into the structure pathway (store waits,
                // constructions) and protocol execution proper: the store's
                // thread-local accumulator collects every provider call made
                // while this case runs on this thread.
                crate::store::reset_structure_wait();
                let case_started = std::time::Instant::now();
                let record = item.run_to_record(offset + index, &structures);
                let case_ns = ring_obs::elapsed_ns(case_started);
                let wait_ns = crate::store::take_structure_wait_ns();
                structure_wait.record(wait_ns);
                execute.record(case_ns.saturating_sub(wait_ns));
                if let Some(sink) = sink {
                    let line = serde_json::to_string(&record).expect("serializable record");
                    let emit_started = std::time::Instant::now();
                    sink.emit(index, &line);
                    sink_reorder.record(ring_obs::elapsed_ns(emit_started));
                }
                records.push(record);
            }
            drop(held);
            records
        });
        let records: Vec<CaseRecord> = chunks.into_iter().flatten().collect();
        // Executed counts *cases*, not batches — the batching limit must
        // not change the stats surface.
        self.executed
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        self.steals.fetch_add(stats.steals, Ordering::Relaxed);
        // Persist lazily materialised structures (strong-distinguisher
        // prefixes) so the rest of the fleet loads them. Non-fatal: a full
        // disk costs the fleet reconstruction time, never correctness.
        if let Err(e) = self.store.flush() {
            eprintln!("ring-harness: structure store flush: {e}");
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::table1_items;
    use ring_experiments::SweepSpec;

    #[test]
    fn engine_streams_ordered_jsonl_and_returns_records() {
        let items = table1_items(&SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 3,
            structure_seeds: None,
            faults: None,
        });
        let engine = SweepEngine::new(2);
        let sink = JsonlSink::new(Vec::new());
        let records = engine.run(&items, Some(&sink));
        assert_eq!(records.len(), items.len());
        let bytes = sink.finish();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), items.len());
        assert!(text.lines().next().unwrap().contains("\"case_index\":0"));
        // The sweep reuses the strong distinguisher across problems/cases.
        assert!(engine.cache_stats().hits > 0);
        assert_eq!(engine.exec_stats().executed, items.len() as u64);
    }

    #[test]
    fn batches_group_consecutive_same_shape_items_up_to_the_limit() {
        let items = table1_items(&SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 3,
            seed: 3,
            structure_seeds: None,
            faults: None,
        });
        // Unbatched plan: one batch per item.
        let singles = plan_batches(&items, 1);
        assert_eq!(singles.len(), items.len());
        assert!(singles.iter().all(|b| b.len == 1));

        let batches = plan_batches(&items, 16);
        // Every case appears exactly once, in order.
        let mut covered = Vec::new();
        for b in &batches {
            assert!(b.len >= 1 && b.len <= 16);
            covered.extend(b.start..b.start + b.len);
        }
        assert_eq!(covered, (0..items.len()).collect::<Vec<_>>());
        // The three repetitions of each (N, n) configuration coalesce.
        assert!(batches.iter().any(|b| b.len == 3));
        // Batches never span shape boundaries.
        for b in &batches {
            for i in b.start..b.start + b.len {
                assert!(items[b.start].same_shape(&items[i]));
            }
        }
    }

    #[test]
    fn batched_runs_emit_identical_bytes_and_records() {
        let spec = SweepSpec {
            sizes: vec![9, 8, 12],
            universe_factors: vec![4],
            repetitions: 2,
            seed: 3,
            structure_seeds: None,
            faults: None,
        };
        let items = table1_items(&spec);
        let plain_engine = SweepEngine::new(2);
        let plain_sink = JsonlSink::new(Vec::new());
        let plain_records = plain_engine.run(&items, Some(&plain_sink));
        let plain_bytes = plain_sink.finish();

        for (jobs, limit) in [(1, 4), (2, 4), (2, 64)] {
            let engine = SweepEngine::new(jobs).with_batch_limit(limit);
            let sink = JsonlSink::new(Vec::new());
            let records = engine.run(&items, Some(&sink));
            assert_eq!(records, plain_records, "jobs {jobs}, batch {limit}");
            assert_eq!(sink.finish(), plain_bytes, "jobs {jobs}, batch {limit}");
            assert_eq!(engine.exec_stats().executed, items.len() as u64);
            assert_eq!(engine.batch_limit(), limit);
        }
    }

    #[test]
    fn offset_runs_emit_the_full_sweep_lines() {
        let items = table1_items(&SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 2,
            seed: 3,
            structure_seeds: None,
            faults: None,
        });
        // The whole sweep in one process…
        let engine = SweepEngine::new(1);
        let sink = JsonlSink::new(Vec::new());
        engine.run(&items, Some(&sink));
        let whole = String::from_utf8(sink.finish()).unwrap();

        // …equals the concatenation of two offset slices, line for line.
        let split = items.len() / 2;
        let mut stitched = String::new();
        for (slice, offset) in [(&items[..split], 0), (&items[split..], split)] {
            let engine = SweepEngine::new(2);
            let sink = JsonlSink::new(Vec::new());
            let records = engine.run_with_offset(slice, offset, Some(&sink));
            assert!(records
                .iter()
                .enumerate()
                .all(|(i, r)| r.case_index == offset + i));
            stitched.push_str(&String::from_utf8(sink.finish()).unwrap());
        }
        assert_eq!(stitched, whole);
    }
}
