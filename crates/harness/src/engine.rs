//! The sweep engine: executor + two-tier structure store + streaming sink.
//!
//! [`SweepEngine::run`] fans a list of [`WorkItem`]s out over the
//! work-stealing executor. Every worker draws combinatorial structures
//! from one shared [`StructureStore`] — tier 1 the in-memory cache every
//! thread shares, tier 2 an optional on-disk directory every worker
//! *process* of a sweep shares — and streams its finished [`CaseRecord`]
//! through the ordered JSONL sink the moment it completes. Results are
//! deterministic: the record list, the JSONL bytes and the rendered
//! markdown are identical for every `--jobs` value, with or without the
//! disk tier.

use crate::cache::{CacheStats, StructureCache};
use crate::executor::{run_work_stealing_with_stats, ExecutorStats};
use crate::scenario::{CaseRecord, WorkItem};
use crate::sink::JsonlSink;
use crate::store::{StoreStats, StructureStore};
use ring_protocols::structures::SharedStructures;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The parallel scenario engine.
pub struct SweepEngine {
    jobs: usize,
    store: Arc<StructureStore>,
    executed: AtomicU64,
    steals: AtomicU64,
}

impl SweepEngine {
    /// Creates an engine running `jobs` worker threads (`0` = all cores)
    /// with a fresh memory-only structure store.
    pub fn new(jobs: usize) -> Self {
        Self::with_store(jobs, Arc::new(StructureStore::in_memory()))
    }

    /// Creates an engine over an existing store (a disk-backed one, or a
    /// shared in-memory store carrying warm structures across consecutive
    /// sweeps of one CLI invocation).
    pub fn with_store(jobs: usize, store: Arc<StructureStore>) -> Self {
        SweepEngine {
            jobs,
            store,
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// The configured worker count (`0` = all cores).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The engine's two-tier structure store.
    pub fn store(&self) -> &Arc<StructureStore> {
        &self.store
    }

    /// The store's in-memory tier.
    pub fn cache(&self) -> &StructureCache {
        self.store.cache()
    }

    /// In-memory-tier effectiveness so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.store.cache_stats()
    }

    /// Disk-tier effectiveness so far (all zero without a disk tier).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Executor scheduling counters accumulated over every run of this
    /// engine.
    pub fn exec_stats(&self) -> ExecutorStats {
        ExecutorStats {
            executed: self.executed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }

    /// Runs every item, streaming each finished record to `sink` (as one
    /// compact JSON line, in case order) and returning all records in case
    /// order.
    pub fn run<W: Write + Send>(
        &self,
        items: &[WorkItem],
        sink: Option<&JsonlSink<W>>,
    ) -> Vec<CaseRecord> {
        self.run_with_offset(items, 0, sink)
    }

    /// Runs a contiguous slice of a larger sweep: item `i` of the slice is
    /// case `offset + i` of the sweep, and its record (and JSONL line)
    /// carries that **global** index. This is what a shard worker runs —
    /// the emitted lines are byte-identical to the corresponding lines of
    /// the full single-process sweep. The sink still receives slice-local
    /// indices for ordering.
    pub fn run_with_offset<W: Write + Send>(
        &self,
        items: &[WorkItem],
        offset: usize,
        sink: Option<&JsonlSink<W>>,
    ) -> Vec<CaseRecord> {
        let structures: SharedStructures = self.store.clone();
        let obs = ring_obs::global();
        let structure_wait = obs.histogram("case_structure_wait_ns");
        let execute = obs.histogram("case_execute_ns");
        let sink_reorder = obs.histogram("sink_reorder_ns");
        let (records, stats) = run_work_stealing_with_stats(items, self.jobs, |index, item| {
            let _span = ring_obs::span!("case", index = offset + index);
            // Split case time into the structure pathway (store waits,
            // constructions) and protocol execution proper: the store's
            // thread-local accumulator collects every provider call made
            // while this case runs on this thread.
            crate::store::reset_structure_wait();
            let case_started = std::time::Instant::now();
            let record = item.run_to_record(offset + index, &structures);
            let case_ns = ring_obs::elapsed_ns(case_started);
            let wait_ns = crate::store::take_structure_wait_ns();
            structure_wait.record(wait_ns);
            execute.record(case_ns.saturating_sub(wait_ns));
            if let Some(sink) = sink {
                let line = serde_json::to_string(&record).expect("serializable record");
                let emit_started = std::time::Instant::now();
                sink.emit(index, &line);
                sink_reorder.record(ring_obs::elapsed_ns(emit_started));
            }
            record
        });
        self.executed.fetch_add(stats.executed, Ordering::Relaxed);
        self.steals.fetch_add(stats.steals, Ordering::Relaxed);
        // Persist lazily materialised structures (strong-distinguisher
        // prefixes) so the rest of the fleet loads them. Non-fatal: a full
        // disk costs the fleet reconstruction time, never correctness.
        if let Err(e) = self.store.flush() {
            eprintln!("ring-harness: structure store flush: {e}");
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::table1_items;
    use ring_experiments::SweepSpec;

    #[test]
    fn engine_streams_ordered_jsonl_and_returns_records() {
        let items = table1_items(&SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 3,
            structure_seeds: None,
            faults: None,
        });
        let engine = SweepEngine::new(2);
        let sink = JsonlSink::new(Vec::new());
        let records = engine.run(&items, Some(&sink));
        assert_eq!(records.len(), items.len());
        let bytes = sink.finish();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), items.len());
        assert!(text.lines().next().unwrap().contains("\"case_index\":0"));
        // The sweep reuses the strong distinguisher across problems/cases.
        assert!(engine.cache_stats().hits > 0);
        assert_eq!(engine.exec_stats().executed, items.len() as u64);
    }

    #[test]
    fn offset_runs_emit_the_full_sweep_lines() {
        let items = table1_items(&SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 2,
            seed: 3,
            structure_seeds: None,
            faults: None,
        });
        // The whole sweep in one process…
        let engine = SweepEngine::new(1);
        let sink = JsonlSink::new(Vec::new());
        engine.run(&items, Some(&sink));
        let whole = String::from_utf8(sink.finish()).unwrap();

        // …equals the concatenation of two offset slices, line for line.
        let split = items.len() / 2;
        let mut stitched = String::new();
        for (slice, offset) in [(&items[..split], 0), (&items[split..], split)] {
            let engine = SweepEngine::new(2);
            let sink = JsonlSink::new(Vec::new());
            let records = engine.run_with_offset(slice, offset, Some(&sink));
            assert!(records
                .iter()
                .enumerate()
                .all(|(i, r)| r.case_index == offset + i));
            stitched.push_str(&String::from_utf8(sink.finish()).unwrap());
        }
        assert_eq!(stitched, whole);
    }
}
