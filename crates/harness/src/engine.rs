//! The sweep engine: executor + structure cache + streaming sink.
//!
//! [`SweepEngine::run`] fans a list of [`WorkItem`]s out over the
//! work-stealing executor. Every worker draws combinatorial structures
//! from one shared [`StructureCache`] (constructed once per sweep, shared
//! read-only) and streams its finished [`CaseRecord`] through the ordered
//! JSONL sink the moment it completes. Results are deterministic: the
//! record list, the JSONL bytes and the rendered markdown are identical
//! for every `--jobs` value.

use crate::cache::{CacheStats, StructureCache};
use crate::executor::run_work_stealing;
use crate::scenario::{CaseRecord, WorkItem};
use crate::sink::JsonlSink;
use ring_protocols::structures::SharedStructures;
use std::io::Write;
use std::sync::Arc;

/// The parallel scenario engine.
pub struct SweepEngine {
    jobs: usize,
    cache: Arc<StructureCache>,
}

impl SweepEngine {
    /// Creates an engine running `jobs` worker threads (`0` = all cores)
    /// with a fresh structure cache.
    pub fn new(jobs: usize) -> Self {
        SweepEngine {
            jobs,
            cache: Arc::new(StructureCache::new()),
        }
    }

    /// Creates an engine sharing an existing cache (e.g. to carry warm
    /// structures across consecutive sweeps of one CLI invocation).
    pub fn with_cache(jobs: usize, cache: Arc<StructureCache>) -> Self {
        SweepEngine { jobs, cache }
    }

    /// The configured worker count (`0` = all cores).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The engine's structure cache.
    pub fn cache(&self) -> &Arc<StructureCache> {
        &self.cache
    }

    /// Cache effectiveness so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs every item, streaming each finished record to `sink` (as one
    /// compact JSON line, in case order) and returning all records in case
    /// order.
    pub fn run<W: Write + Send>(
        &self,
        items: &[WorkItem],
        sink: Option<&JsonlSink<W>>,
    ) -> Vec<CaseRecord> {
        let structures: SharedStructures = self.cache.clone();
        run_work_stealing(items, self.jobs, |index, item| {
            let record = item.run_to_record(index, &structures);
            if let Some(sink) = sink {
                let line = serde_json::to_string(&record).expect("serializable record");
                sink.emit(index, &line);
            }
            record
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::table1_items;
    use ring_experiments::SweepSpec;

    #[test]
    fn engine_streams_ordered_jsonl_and_returns_records() {
        let items = table1_items(&SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 3,
        });
        let engine = SweepEngine::new(2);
        let sink = JsonlSink::new(Vec::new());
        let records = engine.run(&items, Some(&sink));
        assert_eq!(records.len(), items.len());
        let bytes = sink.finish();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), items.len());
        assert!(text.lines().next().unwrap().contains("\"case_index\":0"));
        // The sweep reuses the strong distinguisher across problems/cases.
        assert!(engine.cache_stats().hits > 0);
    }
}
