//! Thin wrapper over `ringlab table2`: regenerates Table II
//! through the parallel sweep engine. Flags are forwarded (e.g.
//! `--quick`, `--jobs N`).

fn main() {
    ring_harness::cli::main_with_subcommand(Some("table2"))
}
