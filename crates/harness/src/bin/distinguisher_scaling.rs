//! Thin wrapper over `ringlab scaling`: regenerates the distinguisher / selective-family scaling study
//! through the parallel sweep engine. Flags are forwarded (e.g.
//! `--quick`, `--jobs N`).

fn main() {
    ring_harness::cli::main_with_subcommand(Some("scaling"))
}
