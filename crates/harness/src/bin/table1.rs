//! Thin wrapper over `ringlab table1`: regenerates Table I
//! through the parallel sweep engine. Flags are forwarded (e.g.
//! `--quick`, `--jobs N`).

fn main() {
    ring_harness::cli::main_with_subcommand(Some("table1"))
}
