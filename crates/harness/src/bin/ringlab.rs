//! The unified experiment CLI: parallel sweeps, structure caching and
//! streaming JSONL results for every artefact of the reproduction. See
//! `ring_harness::cli` for the full usage.

fn main() {
    ring_harness::cli::main_with_subcommand(None)
}
