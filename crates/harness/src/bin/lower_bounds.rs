//! Thin wrapper over `ringlab lower-bounds`: regenerates the lower-bound audits
//! through the parallel sweep engine. Flags are forwarded (e.g.
//! `--quick`, `--jobs N`).

fn main() {
    ring_harness::cli::main_with_subcommand(Some("lower-bounds"))
}
