//! Thin wrapper over `ringlab fig2`: regenerates Figure 2
//! through the parallel sweep engine. Flags are forwarded (e.g.
//! `--quick`, `--jobs N`).

fn main() {
    ring_harness::cli::main_with_subcommand(Some("fig2"))
}
