//! Thin wrapper over `ringlab fig1`: regenerates Figure 1
//! through the parallel sweep engine. Flags are forwarded (e.g.
//! `--quick`, `--jobs N`).

fn main() {
    ring_harness::cli::main_with_subcommand(Some("fig1"))
}
