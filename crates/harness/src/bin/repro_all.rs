//! Thin wrapper over `ringlab all`: regenerates every experiment
//! through the parallel sweep engine. Flags are forwarded (e.g.
//! `--quick`, `--jobs N`).

fn main() {
    ring_harness::cli::main_with_subcommand(Some("all"))
}
