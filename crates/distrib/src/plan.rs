//! The shard planner.
//!
//! A sweep's case index space `0..total` is partitioned into `shards`
//! **contiguous** ranges. Contiguity is what makes the downstream merge a
//! verification-only concatenation in the common case and keeps each shard
//! JSONL file internally sorted by `case_index`; balance (range lengths
//! differ by at most one) keeps the fleet evenly loaded. The plan is a pure
//! function of `(total, shards)`, so every participant — orchestrator,
//! workers launched on other machines, `resume` — computes the identical
//! partition independently.

use serde::Serialize;

/// One contiguous shard of a sweep's case index space: `start..end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ShardRange {
    /// The shard number, `0..shards`.
    pub shard: usize,
    /// First case index of the shard (inclusive).
    pub start: usize,
    /// One past the last case index of the shard (exclusive).
    pub end: usize,
}

impl ShardRange {
    /// Number of cases in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard holds no cases (possible when `shards > total`).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Deterministically partitions `0..total` into `shards` contiguous,
/// balanced ranges. The first `total % shards` ranges hold one extra case.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn plan_shards(total: usize, shards: usize) -> Vec<ShardRange> {
    assert!(shards > 0, "a plan needs at least one shard");
    let base = total / shards;
    let extra = total % shards;
    let mut start = 0;
    (0..shards)
        .map(|shard| {
            let len = base + usize::from(shard < extra);
            let range = ShardRange {
                shard,
                start,
                end: start + len,
            };
            start = range.end;
            range
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_division_and_remainders() {
        assert_eq!(
            plan_shards(6, 3),
            vec![
                ShardRange {
                    shard: 0,
                    start: 0,
                    end: 2
                },
                ShardRange {
                    shard: 1,
                    start: 2,
                    end: 4
                },
                ShardRange {
                    shard: 2,
                    start: 4,
                    end: 6
                },
            ]
        );
        let ranges = plan_shards(7, 3);
        assert_eq!(
            ranges.iter().map(ShardRange::len).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        // More shards than cases: trailing shards are empty, never panic.
        let ranges = plan_shards(2, 5);
        assert_eq!(
            ranges.iter().map(ShardRange::len).collect::<Vec<_>>(),
            vec![1, 1, 0, 0, 0]
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        plan_shards(4, 0);
    }

    proptest! {
        /// For arbitrary totals and shard counts the plan is a contiguous,
        /// balanced, exhaustive partition of `0..total`.
        #[test]
        fn plans_partition_the_index_space(total in 0usize..5000, shards in 1usize..64) {
            let ranges = plan_shards(total, shards);
            prop_assert_eq!(ranges.len(), shards);
            let mut next = 0;
            for (i, range) in ranges.iter().enumerate() {
                prop_assert_eq!(range.shard, i);
                prop_assert_eq!(range.start, next);
                prop_assert!(range.end >= range.start);
                next = range.end;
            }
            prop_assert_eq!(next, total);
            let lens: Vec<usize> = ranges.iter().map(ShardRange::len).collect();
            let min = lens.iter().min().copied().unwrap_or(0);
            let max = lens.iter().max().copied().unwrap_or(0);
            prop_assert!(max - min <= 1, "unbalanced plan: {:?}", lens);
        }
    }
}
