//! The multi-process orchestrator.
//!
//! Drives the incomplete shards of a [`Manifest`] to completion: launches
//! one worker attempt per shard (bounded concurrency, per-shard retries),
//! validates each worker's protocol stream as it arrives, persists the
//! record lines to `shard-NNN.jsonl` (via a temp file, renamed only after
//! the done-event checksum matches), and checkpoints the manifest after
//! every shard transition. The orchestrator is deliberately agnostic about
//! *what* a worker runs — and, since the transport seam, about *where*: a
//! [`WorkerTransport`] turns a shard range into a live [`ShardAttempt`],
//! and the supervision loop (retries, deterministic backoff, watchdog,
//! stream validation, temp-file discipline) is identical whether the
//! attempt is a child process speaking on stdout
//! ([`ProcessTransport`], what `ringlab --shards` and the benchmark
//! harness use) or a remote worker speaking the same protocol lines over a
//! TCP connection (what `ring-serve` plugs in). A worker disconnect is
//! just another retryable shard failure.
//!
//! Failure containment: a worker that exits nonzero (or drops its
//! connection), truncates its stream, emits records out of sequence or
//! reports a checksum that does not match the bytes received is retried
//! from scratch up to the retry budget; the partial shard file never
//! overwrites a good one (writes go to `*.tmp`), and a shard that exhausts
//! its budget is marked `failed` in the manifest so a later `resume` can
//! pick it up.

use crate::manifest::{shard_file_name, Manifest, ShardStats};
use crate::plan::ShardRange;
use crate::protocol::{parse_worker_line, WorkerLine};
use ring_combinat::shared::splitmix64;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Supervision parameters.
#[derive(Clone, Copy, Debug)]
pub struct OrchestratorOptions {
    /// Maximum workers alive at once.
    pub concurrency: usize,
    /// Additional launches after a failed one (0 = single attempt).
    pub retries: u32,
    /// Wall-clock budget per worker attempt: a worker still running when
    /// it expires is killed and the attempt counts as failed (and retries
    /// like any other failure). `None` = unlimited.
    pub shard_timeout: Option<Duration>,
}

impl Default for OrchestratorOptions {
    fn default() -> Self {
        OrchestratorOptions {
            concurrency: 1,
            retries: 1,
            shard_timeout: None,
        }
    }
}

/// First retry delay; each further attempt doubles it up to
/// [`BACKOFF_CAP_MS`].
const BACKOFF_BASE_MS: u64 = 100;

/// Upper bound on the exponential part of a retry delay.
const BACKOFF_CAP_MS: u64 = 2_000;

/// Domain-separation salt of the deterministic backoff jitter stream.
const BACKOFF_JITTER_SALT: u64 = 0xbac0_ff5e_0000_0001;

/// How often the watchdog polls a supervised worker against its deadline.
const WATCHDOG_POLL: Duration = Duration::from_millis(25);

/// The delay before retry `attempt` (1-based) of a shard: bounded
/// exponential backoff plus deterministic jitter. The jitter is a pure
/// function of `(shard, attempt)` — no wall clock, no global RNG — so a
/// fleet's retry schedule replays identically and concurrent shards that
/// fail together still desynchronise their relaunches.
fn backoff_delay(shard: usize, attempt: u32) -> Duration {
    let exp = BACKOFF_BASE_MS
        .saturating_mul(1 << attempt.min(10).saturating_sub(1))
        .min(BACKOFF_CAP_MS);
    let jitter = splitmix64(BACKOFF_JITTER_SALT ^ (shard as u64) ^ (u64::from(attempt) << 32))
        % (exp / 2 + 1);
    Duration::from_millis(exp + jitter)
}

/// Outcome of one orchestration pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Shards that reached `complete` during this pass.
    pub completed: Vec<usize>,
    /// Shards that exhausted their retry budget.
    pub failed: Vec<usize>,
}

/// One live worker attempt, produced by a [`WorkerTransport`].
///
/// The orchestrator consumes the attempt's protocol byte stream, uses the
/// abort handle from its watchdog thread when the attempt exceeds its
/// wall-clock budget (or breaks its stream), and finally reaps the attempt
/// to learn whether the worker terminated cleanly.
pub trait ShardAttempt: Send {
    /// Takes the worker's protocol byte stream. Called exactly once,
    /// before anything else.
    fn take_stream(&mut self) -> Box<dyn Read + Send>;

    /// A handle that kills the attempt from another thread: a process kill
    /// for child workers, a socket shutdown for remote ones. Killing must
    /// unblock a reader of the stream.
    fn abort_handle(&self) -> Box<dyn Fn() + Send>;

    /// Whether the protocol stream terminates at the done event (`true`
    /// for connection-reusing transports, where the same byte stream will
    /// carry the next assignment) or runs to EOF (`false` for child
    /// stdout, where anything after the done event is a protocol error).
    fn ends_at_done(&self) -> bool;

    /// Reaps the attempt after its stream has been consumed (`stream_ok` =
    /// the stream validated end to end). An `Err` fails the attempt even
    /// if the stream looked complete — e.g. a worker process that exited
    /// nonzero after emitting a plausible done event.
    fn finish(self: Box<Self>, stream_ok: bool) -> Result<(), String>;
}

/// Turns a shard range into a live worker attempt.
///
/// Implementations: [`ProcessTransport`] (child processes over stdio) in
/// this crate, and the TCP worker pool in `ring-serve`. A launch error is
/// an attempt failure like any other — it consumes one retry and the shard
/// is relaunched after the usual backoff.
pub trait WorkerTransport: Sync {
    /// Launches one attempt at `range`.
    ///
    /// # Errors
    ///
    /// Returns a description of why the attempt could not be launched
    /// (spawn failure, no remote worker available, …).
    fn launch(&self, range: &ShardRange) -> Result<Box<dyn ShardAttempt>, String>;
}

/// The child-process transport: spawns a [`Command`] per attempt and
/// supervises its stdout (the original, and default, worker transport).
pub struct ProcessTransport<'a> {
    command_for: &'a (dyn Fn(&ShardRange) -> Command + Sync),
}

impl<'a> ProcessTransport<'a> {
    /// Wraps a command factory: `command_for` builds the worker invocation
    /// for a shard range; the worker's stdout must speak the
    /// [`crate::protocol`] and its stderr is passed through.
    pub fn new(command_for: &'a (dyn Fn(&ShardRange) -> Command + Sync)) -> Self {
        ProcessTransport { command_for }
    }
}

impl WorkerTransport for ProcessTransport<'_> {
    fn launch(&self, range: &ShardRange) -> Result<Box<dyn ShardAttempt>, String> {
        let mut child = (self.command_for)(range)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn worker: {e}"))?;
        let stdout = child.stdout.take().expect("piped stdout");
        Ok(Box::new(ProcessAttempt {
            child: Arc::new(Mutex::new(child)),
            stdout: Some(stdout),
        }))
    }
}

/// A child-process attempt: the stream is the child's stdout, aborting
/// kills the process, reaping waits for its exit status.
struct ProcessAttempt {
    child: Arc<Mutex<std::process::Child>>,
    stdout: Option<std::process::ChildStdout>,
}

impl ShardAttempt for ProcessAttempt {
    fn take_stream(&mut self) -> Box<dyn Read + Send> {
        Box::new(self.stdout.take().expect("stream taken once"))
    }

    fn abort_handle(&self) -> Box<dyn Fn() + Send> {
        let child = Arc::clone(&self.child);
        Box::new(move || {
            // Killing closes the pipe, so the stream consumer unblocks and
            // the attempt is reported as failed.
            child.lock().expect("worker handle").kill().ok();
        })
    }

    fn ends_at_done(&self) -> bool {
        false
    }

    fn finish(self: Box<Self>, _stream_ok: bool) -> Result<(), String> {
        let status = self
            .child
            .lock()
            .expect("worker handle")
            .wait()
            .map_err(|e| format!("cannot reap worker: {e}"))?;
        if status.success() {
            Ok(())
        } else {
            Err(format!("worker exited with {status}"))
        }
    }
}

/// Runs every incomplete shard of the manifest to completion (or failure),
/// checkpointing the manifest in `run_dir` after each transition.
///
/// `command_for` builds the worker invocation for a shard range; the
/// worker's stdout must speak the [`crate::protocol`] and its stderr is
/// passed through. This is the [`ProcessTransport`] convenience form of
/// [`run_pending_shards_with`].
///
/// # Errors
///
/// Only setup-level I/O failures (creating the run directory, persisting
/// the manifest) propagate; per-shard failures are captured in the outcome.
pub fn run_pending_shards(
    run_dir: &Path,
    manifest: &Mutex<Manifest>,
    options: &OrchestratorOptions,
    command_for: &(dyn Fn(&ShardRange) -> Command + Sync),
) -> std::io::Result<RunOutcome> {
    run_pending_shards_with(
        run_dir,
        manifest,
        options,
        &ProcessTransport::new(command_for),
    )
}

/// [`run_pending_shards`] over an arbitrary [`WorkerTransport`] — the
/// entry point remote-worker transports (`ring-serve`) plug into. The
/// supervision loop (concurrency, retries, deterministic backoff,
/// watchdog, manifest checkpoints) is byte-for-byte the same as for child
/// processes.
///
/// # Errors
///
/// Only setup-level I/O failures (creating the run directory, persisting
/// the manifest) propagate; per-shard failures are captured in the outcome.
pub fn run_pending_shards_with(
    run_dir: &Path,
    manifest: &Mutex<Manifest>,
    options: &OrchestratorOptions,
    transport: &dyn WorkerTransport,
) -> std::io::Result<RunOutcome> {
    std::fs::create_dir_all(run_dir)?;
    let (pending, fingerprint) = {
        let manifest = manifest.lock().expect("manifest lock");
        (
            manifest.incomplete_shards(),
            manifest.spec_fingerprint.clone(),
        )
    };
    if pending.is_empty() {
        return Ok(RunOutcome::default());
    }
    manifest.lock().expect("manifest lock").save_in(run_dir)?;

    let queue: Mutex<Vec<ShardRange>> = Mutex::new(pending.iter().rev().copied().collect());
    let outcome = Mutex::new(RunOutcome::default());
    let workers = options.concurrency.clamp(1, pending.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some(range) = queue.lock().expect("shard queue").pop() else {
                    return;
                };
                let obs = ring_obs::global();
                let mut completed = false;
                for attempt in 0..=options.retries {
                    if attempt > 0 {
                        let delay = backoff_delay(range.shard, attempt);
                        obs.counter("distrib_retries").inc();
                        obs.counter("distrib_backoff_ms")
                            .add(delay.as_millis() as u64);
                        manifest
                            .lock()
                            .expect("manifest lock")
                            .add_backoff_ms(range.shard, delay.as_millis() as u64);
                        std::thread::sleep(delay);
                    }
                    {
                        let mut m = manifest.lock().expect("manifest lock");
                        m.shards[range.shard].attempts += 1;
                        m.save_in(run_dir).expect("checkpoint manifest");
                    }
                    obs.counter("distrib_attempts").inc();
                    let attempt_start = Instant::now();
                    let result = run_attempt(
                        run_dir,
                        &range,
                        &fingerprint,
                        transport,
                        options.shard_timeout,
                    );
                    let attempt_elapsed = attempt_start.elapsed();
                    obs.histogram("distrib_attempt_ns")
                        .record_duration(attempt_elapsed);
                    match result {
                        Ok(mut stats) => {
                            // The stats — including the metrics snapshot —
                            // come from exactly this, final successful,
                            // attempt; `mark_complete` overwrites whatever
                            // an earlier killed attempt might have left.
                            stats.attempt_ms = attempt_elapsed.as_millis() as u64;
                            let mut m = manifest.lock().expect("manifest lock");
                            m.mark_complete(range.shard, &stats);
                            m.save_in(run_dir).expect("checkpoint manifest");
                            outcome.lock().expect("outcome").completed.push(range.shard);
                            completed = true;
                            break;
                        }
                        Err(failure) => {
                            if failure.watchdog_kill {
                                obs.counter("distrib_watchdog_kills").inc();
                                let mut m = manifest.lock().expect("manifest lock");
                                m.note_watchdog_kill(range.shard);
                                m.save_in(run_dir).expect("checkpoint manifest");
                            }
                            eprintln!(
                                "ring-distrib: shard {} attempt {}/{} failed: {}",
                                range.shard,
                                attempt + 1,
                                options.retries + 1,
                                failure.reason,
                            );
                        }
                    }
                }
                if !completed {
                    let mut m = manifest.lock().expect("manifest lock");
                    m.mark_failed(range.shard);
                    m.save_in(run_dir).expect("checkpoint manifest");
                    outcome.lock().expect("outcome").failed.push(range.shard);
                }
            });
        }
    });
    let mut outcome = outcome.into_inner().expect("outcome");
    outcome.completed.sort_unstable();
    outcome.failed.sort_unstable();
    Ok(outcome)
}

/// Why one worker attempt failed. Watchdog kills are distinguished so the
/// retry loop can tally them (in the manifest and the metrics registry)
/// separately from ordinary crashes and protocol errors.
struct AttemptFailure {
    /// Human-readable description, passed through to stderr.
    reason: String,
    /// Whether the watchdog killed this attempt at the shard timeout.
    watchdog_kill: bool,
}

impl AttemptFailure {
    fn new(reason: String) -> Self {
        AttemptFailure {
            reason,
            watchdog_kill: false,
        }
    }
}

/// Launches one worker attempt over `transport` and validates its stream
/// end to end. On success the shard file is in place and the returned
/// stats mirror the done event. With a timeout, a watchdog thread aborts
/// the attempt at the deadline and it fails with a timeout error (so the
/// retry loop relaunches it like any other failed attempt).
fn run_attempt(
    run_dir: &Path,
    range: &ShardRange,
    expected_fingerprint: &str,
    transport: &dyn WorkerTransport,
    timeout: Option<Duration>,
) -> Result<ShardStats, AttemptFailure> {
    let _span = ring_obs::span!("shard_attempt", shard = range.shard);
    let final_path = run_dir.join(shard_file_name(range.shard));
    let tmp_path = run_dir.join(format!("{}.tmp", shard_file_name(range.shard)));
    let mut attempt = transport.launch(range).map_err(AttemptFailure::new)?;
    let stream = attempt.take_stream();
    let stop_at_done = attempt.ends_at_done();
    let abort = attempt.abort_handle();
    let reaped = Arc::new(AtomicBool::new(false));
    let expired = Arc::new(AtomicBool::new(false));
    let watchdog = timeout.map(|limit| {
        let abort = attempt.abort_handle();
        let reaped = Arc::clone(&reaped);
        let expired = Arc::clone(&expired);
        std::thread::spawn(move || {
            let deadline = Instant::now() + limit;
            while !reaped.load(Ordering::Acquire) {
                if Instant::now() >= deadline {
                    // Aborting breaks the stream, so the consumer unblocks
                    // and the attempt is reported as failed.
                    expired.store(true, Ordering::Release);
                    abort();
                    return;
                }
                std::thread::sleep(WATCHDOG_POLL);
            }
        })
    });

    let result =
        consume_worker_stream(stream, range, expected_fingerprint, &tmp_path, stop_at_done);
    if result.is_err() {
        // The stream is broken; make sure the worker is gone before the
        // retry (it may still be producing).
        abort();
    }
    let finish = attempt.finish(result.is_ok());
    reaped.store(true, Ordering::Release);
    if let Some(watchdog) = watchdog {
        watchdog.join().expect("watchdog thread");
    }
    // A worker that produced a complete, validated stream before the
    // deadline fired is a success even if the abort raced its exit; the
    // timeout verdict applies only to broken streams.
    if expired.load(Ordering::Acquire) && result.is_err() {
        std::fs::remove_file(&tmp_path).ok();
        return Err(AttemptFailure {
            reason: format!(
                "worker exceeded the {:.1}s shard timeout and was killed",
                timeout.expect("expiry implies a timeout").as_secs_f64()
            ),
            watchdog_kill: true,
        });
    }
    let stats = match result {
        Ok(stats) => stats,
        Err(reason) => {
            std::fs::remove_file(&tmp_path).ok();
            return Err(AttemptFailure::new(reason));
        }
    };
    if let Err(reason) = finish {
        std::fs::remove_file(&tmp_path).ok();
        return Err(AttemptFailure::new(reason));
    }
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| AttemptFailure::new(format!("cannot move shard file into place: {e}")))?;
    Ok(stats)
}

/// [`run_attempt`] for a single canned [`Command`] — the child-process
/// fast path, kept for tests and one-off supervision.
#[cfg(test)]
fn run_one_shard(
    run_dir: &Path,
    range: &ShardRange,
    expected_fingerprint: &str,
    command: Command,
    timeout: Option<Duration>,
) -> Result<ShardStats, String> {
    let slot = Mutex::new(Some(command));
    let factory = move |_range: &ShardRange| {
        slot.lock()
            .expect("command slot")
            .take()
            .expect("single launch")
    };
    run_attempt(
        run_dir,
        range,
        expected_fingerprint,
        &ProcessTransport::new(&factory),
        timeout,
    )
    .map_err(|failure| failure.reason)
}

/// Parses and validates one worker's protocol stream, writing record lines
/// to `tmp_path`. With `stop_at_done` the consumer returns right after the
/// validated done event (connection-reusing transports keep the stream
/// open for the next assignment); without it the stream must run to EOF
/// and any line after the done event is a protocol error.
fn consume_worker_stream(
    stdout: impl std::io::Read,
    range: &ShardRange,
    expected_fingerprint: &str,
    tmp_path: &Path,
    stop_at_done: bool,
) -> Result<ShardStats, String> {
    let file = std::fs::File::create(tmp_path)
        .map_err(|e| format!("cannot create {}: {e}", tmp_path.display()))?;
    let mut out = BufWriter::new(file);
    let mut hasher = crate::checksum::Fnv1a64::new();
    let mut started = false;
    let mut next_index = range.start;
    let mut done: Option<ShardStats> = None;

    for line in BufReader::new(stdout).lines() {
        let line = line.map_err(|e| format!("broken worker pipe: {e}"))?;
        if line.is_empty() {
            continue;
        }
        if done.is_some() {
            return Err(format!("worker spoke after its done event: {line}"));
        }
        match parse_worker_line(&line)? {
            WorkerLine::Start(start) => {
                if started {
                    return Err("duplicate start event".into());
                }
                if start.shard != range.shard
                    || start.start != range.start
                    || start.end != range.end
                {
                    return Err(format!(
                        "worker announced shard {} [{}, {}), expected shard {} [{}, {})",
                        start.shard, start.start, start.end, range.shard, range.start, range.end
                    ));
                }
                if start.spec_fingerprint != expected_fingerprint {
                    return Err(format!(
                        "worker resolved spec fingerprint {}, orchestrator expects {} \
                         (mismatched flags or binary version)",
                        start.spec_fingerprint, expected_fingerprint
                    ));
                }
                started = true;
            }
            WorkerLine::Record { case_index, line } => {
                if !started {
                    return Err("record before the start event".into());
                }
                if case_index != next_index {
                    return Err(format!(
                        "record for case {case_index} where case {next_index} was expected"
                    ));
                }
                if case_index >= range.end {
                    return Err(format!("record {case_index} beyond the shard range"));
                }
                out.write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .map_err(|e| format!("cannot write shard file: {e}"))?;
                hasher.update(line.as_bytes());
                hasher.update(b"\n");
                next_index += 1;
            }
            WorkerLine::Done(event) => {
                if !started {
                    return Err("done event before the start event".into());
                }
                let received = next_index - range.start;
                if event.records != received || received != range.len() {
                    return Err(format!(
                        "worker reported {} records, streamed {received}, shard holds {}",
                        event.records,
                        range.len()
                    ));
                }
                if event.checksum != hasher.format() {
                    return Err(format!(
                        "worker checksum {} does not match received bytes {}",
                        event.checksum,
                        hasher.format()
                    ));
                }
                done = Some(ShardStats {
                    records: received,
                    checksum: event.checksum,
                    cache_hits: event.cache_hits,
                    cache_misses: event.cache_misses,
                    steals: event.steals,
                    store_hits: event.store_hits,
                    store_misses: event.store_misses,
                    // Filled by the retry loop once the attempt is timed.
                    attempt_ms: 0,
                    metrics: event.metrics,
                });
                if stop_at_done {
                    break;
                }
            }
        }
    }
    out.flush()
        .map_err(|e| format!("cannot flush shard file: {e}"))?;
    done.ok_or_else(|| "worker stream ended without a done event".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{ShardStatus, SpecParams};
    use crate::plan::plan_shards;
    use crate::protocol::{DoneEvent, StartEvent};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ring-distrib-orch-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn test_manifest(total: usize, shards: usize) -> Manifest {
        Manifest::new(
            SpecParams {
                subcommand: "sweep".into(),
                quick: true,
                sizes: None,
                universe_factors: None,
                reps: None,
                seed: None,
                structure_seeds: None,
                fault_drops: None,
                fault_crashes: None,
                fault_churn: None,
                fault_adversarial: false,
            },
            "0xfeed".into(),
            total,
            &plan_shards(total, shards),
            1,
            "-".into(),
        )
    }

    /// Builds a `sh -c` worker that prints a canned protocol stream.
    fn scripted_worker(script: String) -> Command {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(script);
        cmd
    }

    fn protocol_script(range: &ShardRange, shards: usize, fingerprint: &str) -> String {
        let mut lines = Vec::new();
        lines.push(
            serde_json::to_string(&StartEvent::new(
                range.shard,
                shards,
                range.start,
                range.end,
                fingerprint,
            ))
            .unwrap(),
        );
        let mut hasher = crate::checksum::Fnv1a64::new();
        for i in range.start..range.end {
            let record = format!("{{\"case_index\":{i},\"n\":7}}");
            hasher.update(record.as_bytes());
            hasher.update(b"\n");
            lines.push(record);
        }
        lines.push(
            serde_json::to_string(&DoneEvent::new(
                range.shard,
                range.len(),
                hasher.format(),
                3,
                1,
                0,
            ))
            .unwrap(),
        );
        lines
            .iter()
            .map(|l| format!("echo '{l}'"))
            .collect::<Vec<_>>()
            .join(" && ")
    }

    #[test]
    fn well_behaved_workers_complete_every_shard() {
        let dir = temp_dir("ok");
        let manifest = Mutex::new(test_manifest(7, 3));
        let options = OrchestratorOptions {
            concurrency: 2,
            retries: 0,
            shard_timeout: None,
        };
        let outcome = run_pending_shards(&dir, &manifest, &options, &|range| {
            scripted_worker(protocol_script(range, 3, "0xfeed"))
        })
        .unwrap();
        assert_eq!(outcome.completed, vec![0, 1, 2]);
        assert!(outcome.failed.is_empty());
        let manifest = manifest.into_inner().unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.aggregate_stats().records, 7);
        assert_eq!(manifest.aggregate_stats().cache_hits, 9);
        // The checkpointed manifest on disk agrees.
        let reloaded = Manifest::load(&dir).unwrap();
        assert_eq!(reloaded, manifest);
        // Shard files verify against their recorded digests.
        let mut check = reloaded.clone();
        assert!(check.revalidate_completed(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashing_workers_fail_their_shard_and_leave_no_file() {
        let dir = temp_dir("crash");
        let manifest = Mutex::new(test_manifest(4, 2));
        let options = OrchestratorOptions {
            concurrency: 1,
            retries: 1,
            shard_timeout: None,
        };
        // Shard 0 works; shard 1 dies mid-stream every time.
        let outcome = run_pending_shards(&dir, &manifest, &options, &|range| {
            if range.shard == 0 {
                scripted_worker(protocol_script(range, 2, "0xfeed"))
            } else {
                let start = serde_json::to_string(&StartEvent::new(
                    range.shard,
                    2,
                    range.start,
                    range.end,
                    "0xfeed",
                ))
                .unwrap();
                scripted_worker(format!(
                    "echo '{start}' && echo '{{\"case_index\":{}}}' && exit 3",
                    range.start
                ))
            }
        })
        .unwrap();
        assert_eq!(outcome.completed, vec![0]);
        assert_eq!(outcome.failed, vec![1]);
        let manifest = manifest.into_inner().unwrap();
        assert_eq!(manifest.shards[1].status, ShardStatus::Failed);
        assert_eq!(manifest.shards[1].attempts, 2);
        assert!(dir.join(shard_file_name(0)).exists());
        assert!(!dir.join(shard_file_name(1)).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lying_checksums_and_wrong_assignments_are_rejected() {
        let dir = temp_dir("lies");
        let range = ShardRange {
            shard: 0,
            start: 0,
            end: 1,
        };

        // Checksum that cannot match.
        let start = serde_json::to_string(&StartEvent::new(0, 1, 0, 1, "0xfeed")).unwrap();
        let done = serde_json::to_string(&DoneEvent::new(
            0,
            1,
            "fnv1a64:0000000000000000".into(),
            0,
            0,
            0,
        ))
        .unwrap();
        let cmd = scripted_worker(format!(
            "echo '{start}' && echo '{{\"case_index\":0}}' && echo '{done}'"
        ));
        let err = run_one_shard(&dir, &range, "0xfeed", cmd, None).unwrap_err();
        assert!(err.contains("checksum"), "{err}");

        // Fingerprint mismatch.
        let cmd = scripted_worker(format!("echo '{start}'"));
        let err = run_one_shard(&dir, &range, "0xother", cmd, None).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // Out-of-sequence record.
        let done_ok =
            serde_json::to_string(&DoneEvent::new(0, 1, "fnv1a64:0".into(), 0, 0, 0)).unwrap();
        let cmd = scripted_worker(format!(
            "echo '{start}' && echo '{{\"case_index\":5}}' && echo '{done_ok}'"
        ));
        let err = run_one_shard(&dir, &range, "0xfeed", cmd, None).unwrap_err();
        assert!(err.contains("case 0 was expected"), "{err}");

        assert!(!dir.join(shard_file_name(0)).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_runs_only_incomplete_shards() {
        let dir = temp_dir("resume");
        let manifest = Mutex::new(test_manifest(6, 3));
        let options = OrchestratorOptions {
            concurrency: 2,
            retries: 0,
            shard_timeout: None,
        };
        // First pass: shard 1 fails.
        run_pending_shards(&dir, &manifest, &options, &|range| {
            if range.shard == 1 {
                scripted_worker("exit 7".into())
            } else {
                scripted_worker(protocol_script(range, 3, "0xfeed"))
            }
        })
        .unwrap();
        assert!(!manifest.lock().unwrap().is_complete());
        let attempts_before: Vec<u32> = manifest
            .lock()
            .unwrap()
            .shards
            .iter()
            .map(|e| e.attempts)
            .collect();

        // Second pass with a healthy fleet: only shard 1 is launched.
        let outcome = run_pending_shards(&dir, &manifest, &options, &|range| {
            scripted_worker(protocol_script(range, 3, "0xfeed"))
        })
        .unwrap();
        assert_eq!(outcome.completed, vec![1]);
        let manifest = manifest.into_inner().unwrap();
        assert!(manifest.is_complete());
        // Shards 0 and 2 were not re-attempted.
        assert_eq!(manifest.shards[0].attempts, attempts_before[0]);
        assert_eq!(manifest.shards[2].attempts, attempts_before[2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_delays_are_deterministic_and_bounded() {
        for shard in 0..8usize {
            for attempt in 1..=6u32 {
                let delay = backoff_delay(shard, attempt);
                assert_eq!(delay, backoff_delay(shard, attempt));
                let exp = (BACKOFF_BASE_MS << (attempt - 1).min(10)).min(BACKOFF_CAP_MS);
                assert!(delay >= Duration::from_millis(exp));
                assert!(delay <= Duration::from_millis(exp + exp / 2));
            }
        }
        // The jitter desynchronises shards that fail in the same round.
        let distinct: std::collections::BTreeSet<Duration> =
            (0..16).map(|shard| backoff_delay(shard, 3)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn hung_workers_are_killed_at_the_shard_timeout() {
        let dir = temp_dir("hang");
        let range = ShardRange {
            shard: 0,
            start: 0,
            end: 1,
        };
        let start = serde_json::to_string(&StartEvent::new(0, 1, 0, 1, "0xfeed")).unwrap();
        let began = std::time::Instant::now();
        let err = run_one_shard(
            &dir,
            &range,
            "0xfeed",
            scripted_worker(format!("echo '{start}' && exec sleep 60")),
            Some(Duration::from_millis(200)),
        )
        .unwrap_err();
        assert!(err.contains("shard timeout"), "{err}");
        assert!(began.elapsed() < Duration::from_secs(30));
        assert!(!dir.join(shard_file_name(0)).exists());
        assert!(!dir.join(format!("{}.tmp", shard_file_name(0))).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timed_out_shards_retry_and_can_complete() {
        let dir = temp_dir("hang-retry");
        let manifest = Mutex::new(test_manifest(2, 1));
        let options = OrchestratorOptions {
            concurrency: 1,
            retries: 1,
            shard_timeout: Some(Duration::from_millis(500)),
        };
        // The first attempt hangs past the timeout; the relaunch (after
        // the marker file exists) speaks the full protocol and finishes
        // well inside the budget.
        let marker = dir.join("first-attempt-done");
        let outcome = run_pending_shards(&dir, &manifest, &options, &|range| {
            scripted_worker(format!(
                "if [ ! -f {marker} ]; then touch {marker}; exec sleep 60; else {script}; fi",
                marker = marker.display(),
                script = protocol_script(range, 1, "0xfeed"),
            ))
        })
        .unwrap();
        assert_eq!(outcome.completed, vec![0]);
        assert!(outcome.failed.is_empty());
        let manifest = manifest.into_inner().unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.shards[0].attempts, 2);
        // The kill and the retry backoff are tallied in the manifest.
        assert_eq!(manifest.shards[0].watchdog_kills, 1);
        assert!(manifest.shards[0].backoff_ms > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A full valid protocol stream whose done event carries a metrics
    /// snapshot with `store_misses` misses (both as the legacy counter and
    /// inside the snapshot).
    fn protocol_script_with_misses(range: &ShardRange, store_misses: u64) -> String {
        let mut lines = Vec::new();
        lines.push(
            serde_json::to_string(&StartEvent::new(
                range.shard,
                1,
                range.start,
                range.end,
                "0xfeed",
            ))
            .unwrap(),
        );
        let mut hasher = crate::checksum::Fnv1a64::new();
        for i in range.start..range.end {
            let record = format!("{{\"case_index\":{i},\"n\":7}}");
            hasher.update(record.as_bytes());
            hasher.update(b"\n");
            lines.push(record);
        }
        let registry = ring_obs::Registry::new();
        registry.counter("store_misses").add(store_misses);
        lines.push(
            serde_json::to_string(
                &DoneEvent::new(range.shard, range.len(), hasher.format(), 0, 0, 0)
                    .with_store(0, store_misses)
                    .with_metrics(registry.snapshot()),
            )
            .unwrap(),
        );
        lines
            .iter()
            .map(|l| format!("echo '{l}'"))
            .collect::<Vec<_>>()
            .join(" && ")
    }

    #[test]
    fn retried_shards_record_only_the_final_attempts_metrics() {
        let dir = temp_dir("final-metrics");
        let manifest = Mutex::new(test_manifest(2, 1));
        let options = OrchestratorOptions {
            concurrency: 1,
            retries: 1,
            shard_timeout: None,
        };
        // Both attempts emit a complete, valid stream and done event; the
        // first exits nonzero *after* its done event — a worker killed at
        // the finish line, the worst case for double counting because its
        // statistics were fully parsed before the attempt failed. Only the
        // retry's numbers may survive.
        let marker = dir.join("first-attempt");
        let outcome = run_pending_shards(&dir, &manifest, &options, &|range| {
            let first = protocol_script_with_misses(range, 5);
            let second = protocol_script_with_misses(range, 1);
            scripted_worker(format!(
                "if [ ! -f {m} ]; then touch {m} && {first} && exit 3; else {second}; fi",
                m = marker.display(),
            ))
        })
        .unwrap();
        assert_eq!(outcome.completed, vec![0]);
        let manifest = manifest.into_inner().unwrap();
        assert_eq!(manifest.shards[0].attempts, 2);
        // Legacy counter and snapshot agree: final attempt only, no sum.
        assert_eq!(manifest.shards[0].store_misses, 1);
        let metrics = manifest.shards[0].metrics.as_ref().expect("snapshot");
        assert_eq!(metrics.counter("store_misses"), 1);
        assert_eq!(manifest.aggregate_stats().store_misses, 1);
        assert_eq!(manifest.aggregate_metrics().counter("store_misses"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
