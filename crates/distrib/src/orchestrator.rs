//! The multi-process orchestrator.
//!
//! Drives the incomplete shards of a [`Manifest`] to completion: spawns one
//! worker process per shard (bounded concurrency, per-shard retries),
//! validates each worker's protocol stream as it arrives, persists the
//! record lines to `shard-NNN.jsonl` (via a temp file, renamed only after
//! the done-event checksum matches), and checkpoints the manifest after
//! every shard transition. The orchestrator is deliberately agnostic about
//! *what* a worker runs — the caller supplies a factory that turns a shard
//! range into a [`Command`] — so `ringlab` and the benchmark harness reuse
//! the same supervision loop.
//!
//! Failure containment: a worker that exits nonzero, truncates its stream,
//! emits records out of sequence or reports a checksum that does not match
//! the bytes received is retried from scratch up to the retry budget; the
//! partial shard file never overwrites a good one (writes go to `*.tmp`),
//! and a shard that exhausts its budget is marked `failed` in the manifest
//! so a later `resume` can pick it up.

use crate::manifest::{shard_file_name, Manifest, ShardStats};
use crate::plan::ShardRange;
use crate::protocol::{parse_worker_line, WorkerLine};
use ring_combinat::shared::splitmix64;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Supervision parameters.
#[derive(Clone, Copy, Debug)]
pub struct OrchestratorOptions {
    /// Maximum workers alive at once.
    pub concurrency: usize,
    /// Additional launches after a failed one (0 = single attempt).
    pub retries: u32,
    /// Wall-clock budget per worker attempt: a worker still running when
    /// it expires is killed and the attempt counts as failed (and retries
    /// like any other failure). `None` = unlimited.
    pub shard_timeout: Option<Duration>,
}

impl Default for OrchestratorOptions {
    fn default() -> Self {
        OrchestratorOptions {
            concurrency: 1,
            retries: 1,
            shard_timeout: None,
        }
    }
}

/// First retry delay; each further attempt doubles it up to
/// [`BACKOFF_CAP_MS`].
const BACKOFF_BASE_MS: u64 = 100;

/// Upper bound on the exponential part of a retry delay.
const BACKOFF_CAP_MS: u64 = 2_000;

/// Domain-separation salt of the deterministic backoff jitter stream.
const BACKOFF_JITTER_SALT: u64 = 0xbac0_ff5e_0000_0001;

/// How often the watchdog polls a supervised worker against its deadline.
const WATCHDOG_POLL: Duration = Duration::from_millis(25);

/// The delay before retry `attempt` (1-based) of a shard: bounded
/// exponential backoff plus deterministic jitter. The jitter is a pure
/// function of `(shard, attempt)` — no wall clock, no global RNG — so a
/// fleet's retry schedule replays identically and concurrent shards that
/// fail together still desynchronise their relaunches.
fn backoff_delay(shard: usize, attempt: u32) -> Duration {
    let exp = BACKOFF_BASE_MS
        .saturating_mul(1 << attempt.min(10).saturating_sub(1))
        .min(BACKOFF_CAP_MS);
    let jitter = splitmix64(BACKOFF_JITTER_SALT ^ (shard as u64) ^ (u64::from(attempt) << 32))
        % (exp / 2 + 1);
    Duration::from_millis(exp + jitter)
}

/// Outcome of one orchestration pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunOutcome {
    /// Shards that reached `complete` during this pass.
    pub completed: Vec<usize>,
    /// Shards that exhausted their retry budget.
    pub failed: Vec<usize>,
}

/// Runs every incomplete shard of the manifest to completion (or failure),
/// checkpointing the manifest in `run_dir` after each transition.
///
/// `command_for` builds the worker invocation for a shard range; the
/// worker's stdout must speak the [`crate::protocol`] and its stderr is
/// passed through.
///
/// # Errors
///
/// Only setup-level I/O failures (creating the run directory, persisting
/// the manifest) propagate; per-shard failures are captured in the outcome.
pub fn run_pending_shards(
    run_dir: &Path,
    manifest: &Mutex<Manifest>,
    options: &OrchestratorOptions,
    command_for: &(dyn Fn(&ShardRange) -> Command + Sync),
) -> std::io::Result<RunOutcome> {
    std::fs::create_dir_all(run_dir)?;
    let (pending, fingerprint) = {
        let manifest = manifest.lock().expect("manifest lock");
        (
            manifest.incomplete_shards(),
            manifest.spec_fingerprint.clone(),
        )
    };
    if pending.is_empty() {
        return Ok(RunOutcome::default());
    }
    manifest.lock().expect("manifest lock").save_in(run_dir)?;

    let queue: Mutex<Vec<ShardRange>> = Mutex::new(pending.iter().rev().copied().collect());
    let outcome = Mutex::new(RunOutcome::default());
    let workers = options.concurrency.clamp(1, pending.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some(range) = queue.lock().expect("shard queue").pop() else {
                    return;
                };
                let mut completed = false;
                for attempt in 0..=options.retries {
                    if attempt > 0 {
                        std::thread::sleep(backoff_delay(range.shard, attempt));
                    }
                    {
                        let mut m = manifest.lock().expect("manifest lock");
                        m.shards[range.shard].attempts += 1;
                        m.save_in(run_dir).expect("checkpoint manifest");
                    }
                    match run_one_shard(
                        run_dir,
                        &range,
                        &fingerprint,
                        command_for(&range),
                        options.shard_timeout,
                    ) {
                        Ok(stats) => {
                            let mut m = manifest.lock().expect("manifest lock");
                            m.mark_complete(range.shard, &stats);
                            m.save_in(run_dir).expect("checkpoint manifest");
                            outcome.lock().expect("outcome").completed.push(range.shard);
                            completed = true;
                            break;
                        }
                        Err(reason) => {
                            eprintln!(
                                "ring-distrib: shard {} attempt {}/{} failed: {reason}",
                                range.shard,
                                attempt + 1,
                                options.retries + 1,
                            );
                        }
                    }
                }
                if !completed {
                    let mut m = manifest.lock().expect("manifest lock");
                    m.mark_failed(range.shard);
                    m.save_in(run_dir).expect("checkpoint manifest");
                    outcome.lock().expect("outcome").failed.push(range.shard);
                }
            });
        }
    });
    let mut outcome = outcome.into_inner().expect("outcome");
    outcome.completed.sort_unstable();
    outcome.failed.sort_unstable();
    Ok(outcome)
}

/// Launches one worker and validates its stream end to end. On success the
/// shard file is in place and the returned stats mirror the done event.
/// With a timeout, a watchdog thread kills the worker at the deadline and
/// the attempt fails with a timeout error (so the retry loop relaunches
/// it like any other failed attempt).
fn run_one_shard(
    run_dir: &Path,
    range: &ShardRange,
    expected_fingerprint: &str,
    mut command: Command,
    timeout: Option<Duration>,
) -> Result<ShardStats, String> {
    let final_path = run_dir.join(shard_file_name(range.shard));
    let tmp_path = run_dir.join(format!("{}.tmp", shard_file_name(range.shard)));
    let mut child = command
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("cannot spawn worker: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let child = Arc::new(Mutex::new(child));
    let reaped = Arc::new(AtomicBool::new(false));
    let expired = Arc::new(AtomicBool::new(false));
    let watchdog = timeout.map(|limit| {
        let child = Arc::clone(&child);
        let reaped = Arc::clone(&reaped);
        let expired = Arc::clone(&expired);
        std::thread::spawn(move || {
            let deadline = Instant::now() + limit;
            while !reaped.load(Ordering::Acquire) {
                if Instant::now() >= deadline {
                    // Killing closes the pipe, so the stream consumer
                    // unblocks and the attempt is reported as failed.
                    expired.store(true, Ordering::Release);
                    child.lock().expect("worker handle").kill().ok();
                    return;
                }
                std::thread::sleep(WATCHDOG_POLL);
            }
        })
    });

    let result = consume_worker_stream(stdout, range, expected_fingerprint, &tmp_path);
    if result.is_err() {
        // The stream is broken; make sure the process is gone before the
        // retry (it may still be producing).
        child.lock().expect("worker handle").kill().ok();
    }
    let status = child
        .lock()
        .expect("worker handle")
        .wait()
        .map_err(|e| format!("cannot reap worker: {e}"))?;
    reaped.store(true, Ordering::Release);
    if let Some(watchdog) = watchdog {
        watchdog.join().expect("watchdog thread");
    }
    // A worker that produced a complete, validated stream before the
    // deadline fired is a success even if the kill raced its exit; the
    // timeout verdict applies only to broken streams.
    if expired.load(Ordering::Acquire) && result.is_err() {
        std::fs::remove_file(&tmp_path).ok();
        return Err(format!(
            "worker exceeded the {:.1}s shard timeout and was killed",
            timeout.expect("expiry implies a timeout").as_secs_f64()
        ));
    }
    let stats = match result {
        Ok(stats) => stats,
        Err(reason) => {
            std::fs::remove_file(&tmp_path).ok();
            return Err(reason);
        }
    };
    if !status.success() {
        std::fs::remove_file(&tmp_path).ok();
        return Err(format!("worker exited with {status}"));
    }
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| format!("cannot move shard file into place: {e}"))?;
    Ok(stats)
}

/// Parses and validates one worker's stdout, writing record lines to
/// `tmp_path`.
fn consume_worker_stream(
    stdout: impl std::io::Read,
    range: &ShardRange,
    expected_fingerprint: &str,
    tmp_path: &Path,
) -> Result<ShardStats, String> {
    let file = std::fs::File::create(tmp_path)
        .map_err(|e| format!("cannot create {}: {e}", tmp_path.display()))?;
    let mut out = BufWriter::new(file);
    let mut hasher = crate::checksum::Fnv1a64::new();
    let mut started = false;
    let mut next_index = range.start;
    let mut done: Option<ShardStats> = None;

    for line in BufReader::new(stdout).lines() {
        let line = line.map_err(|e| format!("broken worker pipe: {e}"))?;
        if line.is_empty() {
            continue;
        }
        if done.is_some() {
            return Err(format!("worker spoke after its done event: {line}"));
        }
        match parse_worker_line(&line)? {
            WorkerLine::Start(start) => {
                if started {
                    return Err("duplicate start event".into());
                }
                if start.shard != range.shard
                    || start.start != range.start
                    || start.end != range.end
                {
                    return Err(format!(
                        "worker announced shard {} [{}, {}), expected shard {} [{}, {})",
                        start.shard, start.start, start.end, range.shard, range.start, range.end
                    ));
                }
                if start.spec_fingerprint != expected_fingerprint {
                    return Err(format!(
                        "worker resolved spec fingerprint {}, orchestrator expects {} \
                         (mismatched flags or binary version)",
                        start.spec_fingerprint, expected_fingerprint
                    ));
                }
                started = true;
            }
            WorkerLine::Record { case_index, line } => {
                if !started {
                    return Err("record before the start event".into());
                }
                if case_index != next_index {
                    return Err(format!(
                        "record for case {case_index} where case {next_index} was expected"
                    ));
                }
                if case_index >= range.end {
                    return Err(format!("record {case_index} beyond the shard range"));
                }
                out.write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .map_err(|e| format!("cannot write shard file: {e}"))?;
                hasher.update(line.as_bytes());
                hasher.update(b"\n");
                next_index += 1;
            }
            WorkerLine::Done(event) => {
                if !started {
                    return Err("done event before the start event".into());
                }
                let received = next_index - range.start;
                if event.records != received || received != range.len() {
                    return Err(format!(
                        "worker reported {} records, streamed {received}, shard holds {}",
                        event.records,
                        range.len()
                    ));
                }
                if event.checksum != hasher.format() {
                    return Err(format!(
                        "worker checksum {} does not match received bytes {}",
                        event.checksum,
                        hasher.format()
                    ));
                }
                done = Some(ShardStats {
                    records: received,
                    checksum: event.checksum,
                    cache_hits: event.cache_hits,
                    cache_misses: event.cache_misses,
                    steals: event.steals,
                    store_hits: event.store_hits,
                    store_misses: event.store_misses,
                });
            }
        }
    }
    out.flush()
        .map_err(|e| format!("cannot flush shard file: {e}"))?;
    done.ok_or_else(|| "worker stream ended without a done event".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{ShardStatus, SpecParams};
    use crate::plan::plan_shards;
    use crate::protocol::{DoneEvent, StartEvent};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ring-distrib-orch-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn test_manifest(total: usize, shards: usize) -> Manifest {
        Manifest::new(
            SpecParams {
                subcommand: "sweep".into(),
                quick: true,
                sizes: None,
                universe_factors: None,
                reps: None,
                seed: None,
                structure_seeds: None,
                fault_drops: None,
                fault_crashes: None,
                fault_churn: None,
                fault_adversarial: false,
            },
            "0xfeed".into(),
            total,
            &plan_shards(total, shards),
            1,
            "-".into(),
        )
    }

    /// Builds a `sh -c` worker that prints a canned protocol stream.
    fn scripted_worker(script: String) -> Command {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg(script);
        cmd
    }

    fn protocol_script(range: &ShardRange, shards: usize, fingerprint: &str) -> String {
        let mut lines = Vec::new();
        lines.push(
            serde_json::to_string(&StartEvent::new(
                range.shard,
                shards,
                range.start,
                range.end,
                fingerprint,
            ))
            .unwrap(),
        );
        let mut hasher = crate::checksum::Fnv1a64::new();
        for i in range.start..range.end {
            let record = format!("{{\"case_index\":{i},\"n\":7}}");
            hasher.update(record.as_bytes());
            hasher.update(b"\n");
            lines.push(record);
        }
        lines.push(
            serde_json::to_string(&DoneEvent::new(
                range.shard,
                range.len(),
                hasher.format(),
                3,
                1,
                0,
            ))
            .unwrap(),
        );
        lines
            .iter()
            .map(|l| format!("echo '{l}'"))
            .collect::<Vec<_>>()
            .join(" && ")
    }

    #[test]
    fn well_behaved_workers_complete_every_shard() {
        let dir = temp_dir("ok");
        let manifest = Mutex::new(test_manifest(7, 3));
        let options = OrchestratorOptions {
            concurrency: 2,
            retries: 0,
            shard_timeout: None,
        };
        let outcome = run_pending_shards(&dir, &manifest, &options, &|range| {
            scripted_worker(protocol_script(range, 3, "0xfeed"))
        })
        .unwrap();
        assert_eq!(outcome.completed, vec![0, 1, 2]);
        assert!(outcome.failed.is_empty());
        let manifest = manifest.into_inner().unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.aggregate_stats().records, 7);
        assert_eq!(manifest.aggregate_stats().cache_hits, 9);
        // The checkpointed manifest on disk agrees.
        let reloaded = Manifest::load(&dir).unwrap();
        assert_eq!(reloaded, manifest);
        // Shard files verify against their recorded digests.
        let mut check = reloaded.clone();
        assert!(check.revalidate_completed(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashing_workers_fail_their_shard_and_leave_no_file() {
        let dir = temp_dir("crash");
        let manifest = Mutex::new(test_manifest(4, 2));
        let options = OrchestratorOptions {
            concurrency: 1,
            retries: 1,
            shard_timeout: None,
        };
        // Shard 0 works; shard 1 dies mid-stream every time.
        let outcome = run_pending_shards(&dir, &manifest, &options, &|range| {
            if range.shard == 0 {
                scripted_worker(protocol_script(range, 2, "0xfeed"))
            } else {
                let start = serde_json::to_string(&StartEvent::new(
                    range.shard,
                    2,
                    range.start,
                    range.end,
                    "0xfeed",
                ))
                .unwrap();
                scripted_worker(format!(
                    "echo '{start}' && echo '{{\"case_index\":{}}}' && exit 3",
                    range.start
                ))
            }
        })
        .unwrap();
        assert_eq!(outcome.completed, vec![0]);
        assert_eq!(outcome.failed, vec![1]);
        let manifest = manifest.into_inner().unwrap();
        assert_eq!(manifest.shards[1].status, ShardStatus::Failed);
        assert_eq!(manifest.shards[1].attempts, 2);
        assert!(dir.join(shard_file_name(0)).exists());
        assert!(!dir.join(shard_file_name(1)).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lying_checksums_and_wrong_assignments_are_rejected() {
        let dir = temp_dir("lies");
        let range = ShardRange {
            shard: 0,
            start: 0,
            end: 1,
        };

        // Checksum that cannot match.
        let start = serde_json::to_string(&StartEvent::new(0, 1, 0, 1, "0xfeed")).unwrap();
        let done = serde_json::to_string(&DoneEvent::new(
            0,
            1,
            "fnv1a64:0000000000000000".into(),
            0,
            0,
            0,
        ))
        .unwrap();
        let cmd = scripted_worker(format!(
            "echo '{start}' && echo '{{\"case_index\":0}}' && echo '{done}'"
        ));
        let err = run_one_shard(&dir, &range, "0xfeed", cmd, None).unwrap_err();
        assert!(err.contains("checksum"), "{err}");

        // Fingerprint mismatch.
        let cmd = scripted_worker(format!("echo '{start}'"));
        let err = run_one_shard(&dir, &range, "0xother", cmd, None).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // Out-of-sequence record.
        let done_ok =
            serde_json::to_string(&DoneEvent::new(0, 1, "fnv1a64:0".into(), 0, 0, 0)).unwrap();
        let cmd = scripted_worker(format!(
            "echo '{start}' && echo '{{\"case_index\":5}}' && echo '{done_ok}'"
        ));
        let err = run_one_shard(&dir, &range, "0xfeed", cmd, None).unwrap_err();
        assert!(err.contains("case 0 was expected"), "{err}");

        assert!(!dir.join(shard_file_name(0)).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_runs_only_incomplete_shards() {
        let dir = temp_dir("resume");
        let manifest = Mutex::new(test_manifest(6, 3));
        let options = OrchestratorOptions {
            concurrency: 2,
            retries: 0,
            shard_timeout: None,
        };
        // First pass: shard 1 fails.
        run_pending_shards(&dir, &manifest, &options, &|range| {
            if range.shard == 1 {
                scripted_worker("exit 7".into())
            } else {
                scripted_worker(protocol_script(range, 3, "0xfeed"))
            }
        })
        .unwrap();
        assert!(!manifest.lock().unwrap().is_complete());
        let attempts_before: Vec<u32> = manifest
            .lock()
            .unwrap()
            .shards
            .iter()
            .map(|e| e.attempts)
            .collect();

        // Second pass with a healthy fleet: only shard 1 is launched.
        let outcome = run_pending_shards(&dir, &manifest, &options, &|range| {
            scripted_worker(protocol_script(range, 3, "0xfeed"))
        })
        .unwrap();
        assert_eq!(outcome.completed, vec![1]);
        let manifest = manifest.into_inner().unwrap();
        assert!(manifest.is_complete());
        // Shards 0 and 2 were not re-attempted.
        assert_eq!(manifest.shards[0].attempts, attempts_before[0]);
        assert_eq!(manifest.shards[2].attempts, attempts_before[2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_delays_are_deterministic_and_bounded() {
        for shard in 0..8usize {
            for attempt in 1..=6u32 {
                let delay = backoff_delay(shard, attempt);
                assert_eq!(delay, backoff_delay(shard, attempt));
                let exp = (BACKOFF_BASE_MS << (attempt - 1).min(10)).min(BACKOFF_CAP_MS);
                assert!(delay >= Duration::from_millis(exp));
                assert!(delay <= Duration::from_millis(exp + exp / 2));
            }
        }
        // The jitter desynchronises shards that fail in the same round.
        let distinct: std::collections::BTreeSet<Duration> =
            (0..16).map(|shard| backoff_delay(shard, 3)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn hung_workers_are_killed_at_the_shard_timeout() {
        let dir = temp_dir("hang");
        let range = ShardRange {
            shard: 0,
            start: 0,
            end: 1,
        };
        let start = serde_json::to_string(&StartEvent::new(0, 1, 0, 1, "0xfeed")).unwrap();
        let began = std::time::Instant::now();
        let err = run_one_shard(
            &dir,
            &range,
            "0xfeed",
            scripted_worker(format!("echo '{start}' && exec sleep 60")),
            Some(Duration::from_millis(200)),
        )
        .unwrap_err();
        assert!(err.contains("shard timeout"), "{err}");
        assert!(began.elapsed() < Duration::from_secs(30));
        assert!(!dir.join(shard_file_name(0)).exists());
        assert!(!dir.join(format!("{}.tmp", shard_file_name(0))).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timed_out_shards_retry_and_can_complete() {
        let dir = temp_dir("hang-retry");
        let manifest = Mutex::new(test_manifest(2, 1));
        let options = OrchestratorOptions {
            concurrency: 1,
            retries: 1,
            shard_timeout: Some(Duration::from_millis(500)),
        };
        // The first attempt hangs past the timeout; the relaunch (after
        // the marker file exists) speaks the full protocol and finishes
        // well inside the budget.
        let marker = dir.join("first-attempt-done");
        let outcome = run_pending_shards(&dir, &manifest, &options, &|range| {
            scripted_worker(format!(
                "if [ ! -f {marker} ]; then touch {marker}; exec sleep 60; else {script}; fi",
                marker = marker.display(),
                script = protocol_script(range, 1, "0xfeed"),
            ))
        })
        .unwrap();
        assert_eq!(outcome.completed, vec![0]);
        assert!(outcome.failed.is_empty());
        let manifest = manifest.into_inner().unwrap();
        assert!(manifest.is_complete());
        assert_eq!(manifest.shards[0].attempts, 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
