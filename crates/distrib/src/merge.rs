//! The deterministic shard merger.
//!
//! Streams any number of shard JSONL files into one output, ordered by
//! `case_index`, via a k-way merge (a binary heap over the files' head
//! records). Because the planner's shards are contiguous this usually
//! degenerates into verified concatenation, but the merge accepts arbitrary
//! interleavings — shard files produced by hand-partitioned `--shard i/M`
//! runs on different machines merge just as well.
//!
//! The merger never rewrites a record: lines are copied byte-for-byte, so
//! the merged output is exactly the stream a single-process sweep would
//! have produced — the property the integration tests pin by comparing
//! files. Gaps, duplicates and out-of-order records inside one file are
//! hard errors, not warnings: a merge that cannot prove the full index
//! sequence `0..total` refuses to produce output.

use crate::checksum::Fnv1a64;
use crate::protocol::extract_case_index;
use std::collections::BinaryHeap;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;

/// Why a merge refused to produce output.
#[derive(Debug)]
pub enum MergeError {
    /// An input or the output failed at the I/O layer.
    Io(PathBuf, std::io::Error),
    /// A line could not be attributed a case index.
    Malformed {
        /// The offending file.
        file: PathBuf,
        /// The parse failure.
        reason: String,
    },
    /// Records inside one file were not strictly ascending.
    Disorder {
        /// The offending file.
        file: PathBuf,
        /// Index that went backwards (or repeated).
        case_index: usize,
    },
    /// Two files claimed the same case index.
    Duplicate {
        /// The duplicated index.
        case_index: usize,
    },
    /// The merged sequence was not exactly `0..expected`.
    Sequence {
        /// The first index at which the sequence broke.
        expected: usize,
        /// The index actually observed.
        got: usize,
    },
    /// Fewer (or more) records than the sweep's case count.
    Count {
        /// The sweep's case count.
        expected: usize,
        /// Records actually merged.
        got: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            MergeError::Malformed { file, reason } => {
                write!(f, "{}: {reason}", file.display())
            }
            MergeError::Disorder { file, case_index } => write!(
                f,
                "{}: case index {case_index} is out of order within the shard",
                file.display()
            ),
            MergeError::Duplicate { case_index } => {
                write!(f, "case index {case_index} appears in more than one shard")
            }
            MergeError::Sequence { expected, got } => write!(
                f,
                "merged stream skips case {expected} (next record is {got})"
            ),
            MergeError::Count { expected, got } => write!(
                f,
                "merged {got} records where the sweep has {expected} cases"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Summary of a successful merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeReport {
    /// Records written.
    pub records: usize,
    /// Checksum over the merged output bytes.
    pub checksum: String,
}

/// One shard file mid-merge: its reader and the buffered head record.
struct ShardStream {
    path: PathBuf,
    reader: BufReader<std::fs::File>,
    head_index: usize,
    head_line: String,
}

impl ShardStream {
    /// Reads the next record into the head slot; `Ok(false)` on EOF.
    fn advance(&mut self) -> Result<bool, MergeError> {
        let mut line = String::new();
        loop {
            line.clear();
            let read = self
                .reader
                .read_line(&mut line)
                .map_err(|e| MergeError::Io(self.path.clone(), e))?;
            if read == 0 {
                return Ok(false);
            }
            // A record without its terminating newline is a truncated file
            // (a partial copy, a crash mid-write): the fragment may be cut
            // mid-JSON even when its case_index prefix parses, so it is
            // refused rather than merged. Complete lines are atomic.
            if !line.ends_with('\n') {
                return Err(MergeError::Malformed {
                    file: self.path.clone(),
                    reason: format!("truncated final record (no trailing newline): {line:.40}…"),
                });
            }
            let trimmed = line.trim_end_matches('\n');
            if trimmed.is_empty() {
                continue;
            }
            let case_index =
                extract_case_index(trimmed).map_err(|reason| MergeError::Malformed {
                    file: self.path.clone(),
                    reason,
                })?;
            self.head_index = case_index;
            self.head_line.clear();
            self.head_line.push_str(trimmed);
            return Ok(true);
        }
    }
}

// BinaryHeap is a max-heap; order streams by descending head index so the
// smallest pops first.
struct HeapSlot(ShardStream);

impl PartialEq for HeapSlot {
    fn eq(&self, other: &Self) -> bool {
        self.0.head_index == other.0.head_index
    }
}
impl Eq for HeapSlot {}
impl PartialOrd for HeapSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.head_index.cmp(&self.0.head_index)
    }
}

/// K-way-merges shard files into `out`, ordered by `case_index`.
///
/// With `expect_total = Some(t)` the merged records must be exactly the
/// sequence `0, 1, …, t-1`; with `None` they must merely be strictly
/// increasing (useful for merging a hand-picked subset of shards).
///
/// # Errors
///
/// See [`MergeError`]; no output ordering guarantees survive an error.
pub fn merge_shards<W: Write>(
    inputs: &[PathBuf],
    out: &mut W,
    expect_total: Option<usize>,
) -> Result<MergeReport, MergeError> {
    let mut heap = BinaryHeap::with_capacity(inputs.len());
    for path in inputs {
        let file = std::fs::File::open(path).map_err(|e| MergeError::Io(path.clone(), e))?;
        let mut stream = ShardStream {
            path: path.clone(),
            reader: BufReader::new(file),
            head_index: 0,
            head_line: String::new(),
        };
        if stream.advance()? {
            heap.push(HeapSlot(stream));
        }
    }

    let mut hasher = Fnv1a64::new();
    let mut records = 0usize;
    let mut last_index: Option<usize> = None;
    while let Some(HeapSlot(mut stream)) = heap.pop() {
        let index = stream.head_index;
        if let Some(last) = last_index {
            if index == last {
                return Err(MergeError::Duplicate { case_index: index });
            }
        }
        if expect_total.is_some() {
            let expected = last_index.map_or(0, |last| last + 1);
            if index != expected {
                return Err(MergeError::Sequence {
                    expected,
                    got: index,
                });
            }
        }
        out.write_all(stream.head_line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .map_err(|e| MergeError::Io(stream.path.clone(), e))?;
        hasher.update(stream.head_line.as_bytes());
        hasher.update(b"\n");
        records += 1;
        last_index = Some(index);

        let previous = stream.head_index;
        if stream.advance()? {
            if stream.head_index <= previous {
                return Err(MergeError::Disorder {
                    file: stream.path,
                    case_index: stream.head_index,
                });
            }
            heap.push(HeapSlot(stream));
        }
    }
    out.flush()
        .map_err(|e| MergeError::Io(PathBuf::from("<merge output>"), e))?;

    if let Some(expected) = expect_total {
        if records != expected {
            return Err(MergeError::Count {
                expected,
                got: records,
            });
        }
    }
    Ok(MergeReport {
        records,
        checksum: hasher.format(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn write_shard(dir: &Path, name: &str, indices: &[usize]) -> PathBuf {
        let path = dir.join(name);
        let body: String = indices
            .iter()
            .map(|i| format!("{{\"case_index\":{i},\"n\":{}}}\n", i * 10))
            .collect();
        std::fs::write(&path, body).unwrap();
        path
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ring-distrib-merge-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn contiguous_shards_concatenate() {
        let dir = temp_dir("contig");
        let a = write_shard(&dir, "a.jsonl", &[0, 1, 2]);
        let b = write_shard(&dir, "b.jsonl", &[3, 4]);
        let mut out = Vec::new();
        let report = merge_shards(&[a, b], &mut out, Some(5)).unwrap();
        assert_eq!(report.records, 5);
        let text = String::from_utf8(out).unwrap();
        let indices: Vec<usize> = text
            .lines()
            .map(|l| extract_case_index(l).unwrap())
            .collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interleaved_shards_merge_by_index() {
        let dir = temp_dir("interleave");
        let a = write_shard(&dir, "a.jsonl", &[0, 2, 4]);
        let b = write_shard(&dir, "b.jsonl", &[1, 3, 5]);
        let empty = write_shard(&dir, "c.jsonl", &[]);
        let mut out = Vec::new();
        // Input order must not matter.
        let report = merge_shards(&[b, empty, a], &mut out, Some(6)).unwrap();
        assert_eq!(report.records, 6);
        let text = String::from_utf8(out).unwrap();
        let indices: Vec<usize> = text
            .lines()
            .map(|l| extract_case_index(l).unwrap())
            .collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_bytes_equal_the_single_stream() {
        let dir = temp_dir("bytes");
        let whole = write_shard(&dir, "whole.jsonl", &[0, 1, 2, 3]);
        let reference = std::fs::read(&whole).unwrap();
        let a = write_shard(&dir, "a.jsonl", &[0, 1]);
        let b = write_shard(&dir, "b.jsonl", &[2, 3]);
        let mut out = Vec::new();
        let report = merge_shards(&[a, b], &mut out, Some(4)).unwrap();
        assert_eq!(out, reference);
        let mut h = Fnv1a64::new();
        h.update(&reference);
        assert_eq!(report.checksum, h.format());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gaps_duplicates_and_disorder_are_hard_errors() {
        let dir = temp_dir("errors");
        let a = write_shard(&dir, "a.jsonl", &[0, 1]);
        let gap = write_shard(&dir, "gap.jsonl", &[3]);
        let mut out = Vec::new();
        assert!(matches!(
            merge_shards(&[a.clone(), gap], &mut out, Some(4)),
            Err(MergeError::Sequence {
                expected: 2,
                got: 3
            })
        ));

        let dup = write_shard(&dir, "dup.jsonl", &[1, 2]);
        let mut out = Vec::new();
        assert!(matches!(
            merge_shards(&[a.clone(), dup], &mut out, Some(3)),
            Err(MergeError::Duplicate { case_index: 1 })
        ));

        let disorder = write_shard(&dir, "disorder.jsonl", &[2, 4, 3]);
        let mut out = Vec::new();
        assert!(matches!(
            merge_shards(&[a.clone(), disorder], &mut out, None),
            Err(MergeError::Disorder { .. })
        ));

        let short = write_shard(&dir, "short.jsonl", &[2]);
        let mut out = Vec::new();
        assert!(matches!(
            merge_shards(&[a, short], &mut out, Some(5)),
            Err(MergeError::Count {
                expected: 5,
                got: 3
            })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_final_records_are_refused() {
        let dir = temp_dir("truncated");
        let a = write_shard(&dir, "a.jsonl", &[0, 1]);
        // Cut the second record mid-JSON: its case_index prefix still
        // parses, but the line has no terminating newline.
        let bytes = std::fs::read(&a).unwrap();
        std::fs::write(&a, &bytes[..bytes.len() - 4]).unwrap();
        let mut out = Vec::new();
        let err = merge_shards(&[a], &mut out, None).unwrap_err();
        assert!(
            matches!(&err, MergeError::Malformed { reason, .. } if reason.contains("truncated")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn without_expectations_any_ascending_subset_merges() {
        let dir = temp_dir("subset");
        let a = write_shard(&dir, "a.jsonl", &[3, 9]);
        let b = write_shard(&dir, "b.jsonl", &[5]);
        let mut out = Vec::new();
        let report = merge_shards(&[a, b], &mut out, None).unwrap();
        assert_eq!(report.records, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
