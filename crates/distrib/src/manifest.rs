//! The run manifest (`manifest.json`, `schema: ring-distrib/v1`).
//!
//! A sharded run directory holds one `manifest.json` plus one
//! `shard-NNN.jsonl` file per shard. The manifest is the run's durable
//! state: the spec parameters that enumerate the cases (enough for
//! `resume` to rebuild the item list with no other input), the spec
//! fingerprint pinning that enumeration, the shard plan, and per-shard
//! progress — status, attempt count, record count, content checksum and
//! the worker's structure-cache / executor statistics.
//!
//! The orchestrator rewrites the manifest (atomically, via a temp file and
//! rename) after every shard transition, so a crash at any point leaves a
//! resumable directory: `resume` trusts exactly those shards whose files
//! still match their recorded checksum and record count, and re-runs the
//! rest.

use crate::checksum::digest_file;
use crate::plan::ShardRange;
use serde::{Serialize, Value};
use std::io;
use std::path::{Path, PathBuf};

/// The manifest schema identifier.
pub const MANIFEST_SCHEMA: &str = "ring-distrib/v1";

/// The manifest file name inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// The shard JSONL file name for a shard number.
pub fn shard_file_name(shard: usize) -> String {
    format!("shard-{shard:03}.jsonl")
}

/// Progress state of one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStatus {
    /// Not yet run (or demoted after failing revalidation).
    Pending,
    /// Ran to completion; the shard file matched the worker's checksum.
    Complete,
    /// Exhausted its retry budget.
    Failed,
}

impl ShardStatus {
    /// The manifest string form.
    pub fn as_str(self) -> &'static str {
        match self {
            ShardStatus::Pending => "pending",
            ShardStatus::Complete => "complete",
            ShardStatus::Failed => "failed",
        }
    }

    fn parse(text: &str) -> Result<Self, String> {
        match text {
            "pending" => Ok(ShardStatus::Pending),
            "complete" => Ok(ShardStatus::Complete),
            "failed" => Ok(ShardStatus::Failed),
            other => Err(format!("unknown shard status `{other}`")),
        }
    }
}

impl Serialize for ShardStatus {
    fn to_json(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

/// End-of-shard accounting reported by a successful worker.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Record lines produced.
    pub records: usize,
    /// Checksum over the shard file bytes.
    pub checksum: String,
    /// Structure-cache hits inside the worker.
    pub cache_hits: u64,
    /// Structure-cache misses inside the worker.
    pub cache_misses: u64,
    /// Executor steals inside the worker.
    pub steals: u64,
    /// Structure-store loads that succeeded inside the worker.
    pub store_hits: u64,
    /// Structure-store lookups that fell through to construction.
    pub store_misses: u64,
    /// Wall-clock duration of the successful attempt in milliseconds.
    pub attempt_ms: u64,
    /// The worker's full `ring-obs/v1` metrics snapshot for the successful
    /// attempt (`None` for streams from older workers).
    pub metrics: Option<ring_obs::Snapshot>,
}

/// One shard's manifest entry.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct ShardEntry {
    /// The shard number.
    pub shard: usize,
    /// First global case index (inclusive).
    pub start: usize,
    /// One past the last global case index (exclusive).
    pub end: usize,
    /// Progress state.
    pub status: ShardStatus,
    /// Worker launches so far (counts retries).
    pub attempts: u32,
    /// Record lines in the shard file (0 until complete).
    pub records: usize,
    /// Checksum of the shard file (empty until complete).
    pub checksum: String,
    /// Structure-cache hits of the completing worker.
    pub cache_hits: u64,
    /// Structure-cache misses of the completing worker.
    pub cache_misses: u64,
    /// Executor steals of the completing worker.
    pub steals: u64,
    /// Structure-store hits of the completing worker.
    pub store_hits: u64,
    /// Structure-store misses of the completing worker.
    pub store_misses: u64,
    /// Wall-clock duration of the *final successful* attempt in
    /// milliseconds (0 until complete). Earlier killed or failed attempts
    /// do not contribute — like every other per-shard statistic here.
    pub attempt_ms: u64,
    /// Watchdog kills this shard has absorbed across all attempts.
    pub watchdog_kills: u64,
    /// Total retry-backoff delay this shard has slept, in milliseconds.
    pub backoff_ms: u64,
    /// The completing worker's metrics snapshot (`None` until complete, and
    /// for manifests written before metrics existed). Overwritten on every
    /// completion, so a retried shard records exactly the final successful
    /// attempt's snapshot.
    pub metrics: Option<ring_obs::Snapshot>,
}

impl ShardEntry {
    /// The shard's index range.
    pub fn range(&self) -> ShardRange {
        ShardRange {
            shard: self.shard,
            start: self.start,
            end: self.end,
        }
    }
}

/// The spec parameters a worker or `resume` needs to re-enumerate the run's
/// cases: the `ringlab` subcommand plus the flag overrides it was given.
/// `None` means "the subcommand's default".
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct SpecParams {
    /// The `ringlab` subcommand whose item list is sharded.
    pub subcommand: String,
    /// Whether `--quick` sizes were in force.
    pub quick: bool,
    /// `--sizes` override.
    pub sizes: Option<Vec<usize>>,
    /// `--universe-factors` override.
    pub universe_factors: Option<Vec<u64>>,
    /// `--reps` override.
    pub reps: Option<u64>,
    /// `--seed` override.
    pub seed: Option<u64>,
    /// `--structure-seeds` override (`Some(K)` = the per-case seed
    /// schedule with `K` schedule seeds; `None` = the fixed default).
    /// Part of the spec because it changes which structures every even-`n`
    /// case executes — and therefore the bytes `resume` must reproduce.
    pub structure_seeds: Option<u64>,
    /// `--fault-drops` override: the per-mille message-drop rates of a
    /// faulty sweep (`None` = the subcommand's default axes, or a clean
    /// sweep for non-fault subcommands). Fault axes are spec-affecting:
    /// they change every case's executed schedule, so they are recorded
    /// here and folded into the spec fingerprint.
    pub fault_drops: Option<Vec<u64>>,
    /// `--fault-crashes` override: crash-stop stations per case.
    pub fault_crashes: Option<u64>,
    /// `--fault-churn` override: churning (intermittently dormant)
    /// stations per case.
    pub fault_churn: Option<u64>,
    /// `--fault-adversarial`: whether the rotating adversarial activation
    /// schedule is in force.
    pub fault_adversarial: bool,
}

impl SpecParams {
    /// Reconstructs spec parameters from a JSON value — a manifest's
    /// `spec` object, or the body of a `ring-serve` run submission.
    /// Only `subcommand` is required; every override is optional and
    /// `quick` defaults to `false`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        Ok(SpecParams {
            subcommand: require_str(value, "subcommand")?,
            quick: value.get("quick").and_then(Value::as_bool).unwrap_or(false),
            sizes: optional_u64_list(value, "sizes")?
                .map(|list| list.into_iter().map(|v| v as usize).collect()),
            universe_factors: optional_u64_list(value, "universe_factors")?,
            reps: optional_u64(value, "reps")?,
            seed: optional_u64(value, "seed")?,
            // Absent in manifests written before seed schedules existed:
            // those runs were fixed-schedule by construction.
            structure_seeds: optional_u64(value, "structure_seeds")?,
            // Likewise absent in manifests predating the fault layer:
            // those runs were clean synchronous sweeps by construction.
            fault_drops: optional_u64_list(value, "fault_drops")?,
            fault_crashes: optional_u64(value, "fault_crashes")?,
            fault_churn: optional_u64(value, "fault_churn")?,
            fault_adversarial: value
                .get("fault_adversarial")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        })
    }

    /// The `ringlab` argv (minus the binary) that makes a worker execute
    /// `range` of this spec: `worker <subcommand> --shard i/M …` plus
    /// exactly the override flags the spec records. Every dispatcher —
    /// `ringlab --shards`, `resume`, and the `ring-serve` daemon's TCP job
    /// frames — builds worker invocations through this one function, so a
    /// shard reruns identically no matter who launches it.
    pub fn worker_args(
        &self,
        jobs_per_worker: usize,
        range: &ShardRange,
        shard_count: usize,
        structure_store: &str,
    ) -> Vec<String> {
        let mut args = vec![
            "worker".to_string(),
            self.subcommand.clone(),
            "--shard".to_string(),
            format!("{}/{shard_count}", range.shard),
            "--jobs".to_string(),
            jobs_per_worker.to_string(),
        ];
        if !structure_store.is_empty() {
            args.push("--structure-store".into());
            args.push(structure_store.to_string());
        }
        if self.quick {
            args.push("--quick".into());
        }
        if let Some(sizes) = &self.sizes {
            args.push("--sizes".into());
            args.push(join_list(sizes));
        }
        if let Some(factors) = &self.universe_factors {
            args.push("--universe-factors".into());
            args.push(join_list(factors));
        }
        if let Some(reps) = self.reps {
            args.push("--reps".into());
            args.push(reps.to_string());
        }
        if let Some(seed) = self.seed {
            args.push("--seed".into());
            args.push(seed.to_string());
        }
        if let Some(k) = self.structure_seeds {
            args.push("--structure-seed-mode".into());
            args.push("per-case".into());
            args.push("--structure-seeds".into());
            args.push(k.to_string());
        }
        if let Some(drops) = &self.fault_drops {
            args.push("--fault-drops".into());
            args.push(join_list(drops));
        }
        if let Some(crashes) = self.fault_crashes {
            args.push("--fault-crashes".into());
            args.push(crashes.to_string());
        }
        if let Some(churn) = self.fault_churn {
            args.push("--fault-churn".into());
            args.push(churn.to_string());
        }
        if self.fault_adversarial {
            args.push("--fault-adversarial".into());
        }
        args
    }
}

fn join_list<T: std::fmt::Display>(items: &[T]) -> String {
    items.iter().map(T::to_string).collect::<Vec<_>>().join(",")
}

/// The run manifest.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Manifest {
    /// Always [`MANIFEST_SCHEMA`].
    pub schema: String,
    /// Parameters that re-enumerate the run's cases.
    pub spec: SpecParams,
    /// Fingerprint of the resolved spec (hex, `0x…`); `resume` refuses a
    /// manifest whose fingerprint the current binary does not reproduce.
    pub spec_fingerprint: String,
    /// Total number of cases in the sweep.
    pub total_cases: usize,
    /// Worker threads per worker process.
    pub jobs_per_worker: usize,
    /// The merged-output destination the run was started with (`-` =
    /// stdout; empty = the JSONL stream was disabled).
    pub output: String,
    /// The on-disk structure-store directory the run's workers share
    /// (empty = the run was started without a store). `resume` re-enables
    /// the store from this field and revalidates its files like shard
    /// files.
    pub structure_store: String,
    /// Per-worker wall-clock budget in seconds (`None` = unlimited): a
    /// worker exceeding it is killed and retried. Recorded so `resume`
    /// supervises re-launched workers the way the original run did.
    pub shard_timeout: Option<u64>,
    /// Per-shard progress, in shard order.
    pub shards: Vec<ShardEntry>,
}

impl Manifest {
    /// Creates a fresh manifest over a shard plan, all shards pending.
    pub fn new(
        spec: SpecParams,
        spec_fingerprint: String,
        total_cases: usize,
        ranges: &[ShardRange],
        jobs_per_worker: usize,
        output: String,
    ) -> Self {
        Manifest {
            schema: MANIFEST_SCHEMA.to_string(),
            spec,
            spec_fingerprint,
            total_cases,
            jobs_per_worker,
            output,
            structure_store: String::new(),
            shard_timeout: None,
            shards: ranges
                .iter()
                .map(|range| ShardEntry {
                    shard: range.shard,
                    start: range.start,
                    end: range.end,
                    status: ShardStatus::Pending,
                    attempts: 0,
                    records: 0,
                    checksum: String::new(),
                    cache_hits: 0,
                    cache_misses: 0,
                    steals: 0,
                    store_hits: 0,
                    store_misses: 0,
                    attempt_ms: 0,
                    watchdog_kills: 0,
                    backoff_ms: 0,
                    metrics: None,
                })
                .collect(),
        }
    }

    /// Records the shared structure-store directory of the run (what
    /// `resume` re-enables; empty = no store).
    pub fn with_structure_store(mut self, dir: String) -> Self {
        self.structure_store = dir;
        self
    }

    /// Records the per-worker wall-clock budget of the run (what `resume`
    /// enforces on re-launched workers; `None` = unlimited).
    pub fn with_shard_timeout(mut self, seconds: Option<u64>) -> Self {
        self.shard_timeout = seconds;
        self
    }

    /// The manifest path inside a run directory.
    pub fn path_in(run_dir: &Path) -> PathBuf {
        run_dir.join(MANIFEST_FILE)
    }

    /// Writes the manifest atomically (temp file + rename), so observers —
    /// including a concurrent `resume` after a crash — never read a
    /// half-written manifest.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_in(&self, run_dir: &Path) -> io::Result<()> {
        let path = Self::path_in(run_dir);
        let tmp = run_dir.join(format!("{MANIFEST_FILE}.tmp"));
        let json = serde_json::to_string_pretty(self).expect("serializable manifest");
        std::fs::write(&tmp, json + "\n")?;
        std::fs::rename(&tmp, &path)
    }

    /// Loads and validates a manifest from a run directory.
    ///
    /// # Errors
    ///
    /// Returns a description of I/O failures, malformed JSON or an
    /// unsupported schema.
    pub fn load(run_dir: &Path) -> Result<Self, String> {
        let path = Self::path_in(run_dir);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value = serde_json::from_str(&text)
            .map_err(|e| format!("malformed manifest {}: {e}", path.display()))?;
        Self::from_json(&value)
    }

    /// Reconstructs a manifest from its JSON value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let schema = require_str(value, "schema")?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!(
                "manifest schema `{schema}` is not `{MANIFEST_SCHEMA}`"
            ));
        }
        let spec_value = value.get("spec").ok_or("manifest is missing `spec`")?;
        let spec = SpecParams::from_json(spec_value)?;
        let shards_value = value
            .get("shards")
            .and_then(Value::as_array)
            .ok_or("manifest is missing `shards` array")?;
        let mut shards = Vec::with_capacity(shards_value.len());
        for entry in shards_value {
            shards.push(ShardEntry {
                shard: require_u64(entry, "shard")? as usize,
                start: require_u64(entry, "start")? as usize,
                end: require_u64(entry, "end")? as usize,
                status: ShardStatus::parse(&require_str(entry, "status")?)?,
                attempts: require_u64(entry, "attempts")? as u32,
                records: require_u64(entry, "records")? as usize,
                checksum: require_str(entry, "checksum")?,
                cache_hits: require_u64(entry, "cache_hits")?,
                cache_misses: require_u64(entry, "cache_misses")?,
                steals: require_u64(entry, "steals")?,
                // Store counters joined schema v1 with the structure store;
                // manifests from storeless runs simply lack them.
                store_hits: optional_u64(entry, "store_hits")?.unwrap_or(0),
                store_misses: optional_u64(entry, "store_misses")?.unwrap_or(0),
                // The observability fields joined schema v1 later still;
                // older manifests lack all of them.
                attempt_ms: optional_u64(entry, "attempt_ms")?.unwrap_or(0),
                watchdog_kills: optional_u64(entry, "watchdog_kills")?.unwrap_or(0),
                backoff_ms: optional_u64(entry, "backoff_ms")?.unwrap_or(0),
                metrics: match entry.get("metrics") {
                    Some(v) if !v.is_null() => Some(
                        ring_obs::Snapshot::from_json(v)
                            .map_err(|e| format!("shard entry has a bad metrics snapshot: {e}"))?,
                    ),
                    _ => None,
                },
            });
        }
        Ok(Manifest {
            schema,
            spec,
            spec_fingerprint: require_str(value, "spec_fingerprint")?,
            total_cases: require_u64(value, "total_cases")? as usize,
            jobs_per_worker: require_u64(value, "jobs_per_worker")? as usize,
            output: require_str(value, "output")?,
            structure_store: value
                .get("structure_store")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            // Absent in manifests written before worker supervision grew a
            // wall-clock budget: those runs were unbounded.
            shard_timeout: optional_u64(value, "shard_timeout")?,
            shards,
        })
    }

    /// Marks a shard complete with its worker's accounting.
    ///
    /// Every statistic — including the metrics snapshot — is overwritten,
    /// never accumulated: a shard retried after a watchdog kill records
    /// exactly the final successful attempt's numbers, so fleet aggregates
    /// cannot double-count work a killed attempt already did.
    pub fn mark_complete(&mut self, shard: usize, stats: &ShardStats) {
        let entry = &mut self.shards[shard];
        entry.status = ShardStatus::Complete;
        entry.records = stats.records;
        entry.checksum = stats.checksum.clone();
        entry.cache_hits = stats.cache_hits;
        entry.cache_misses = stats.cache_misses;
        entry.steals = stats.steals;
        entry.store_hits = stats.store_hits;
        entry.store_misses = stats.store_misses;
        entry.attempt_ms = stats.attempt_ms;
        entry.metrics = stats.metrics.clone();
    }

    /// Records one watchdog kill against a shard (survives retries; this
    /// is a lifetime tally, unlike the per-completion statistics).
    pub fn note_watchdog_kill(&mut self, shard: usize) {
        self.shards[shard].watchdog_kills += 1;
    }

    /// Adds retry-backoff sleep time to a shard's lifetime tally.
    pub fn add_backoff_ms(&mut self, shard: usize, ms: u64) {
        self.shards[shard].backoff_ms += ms;
    }

    /// Marks a shard failed (retry budget exhausted).
    pub fn mark_failed(&mut self, shard: usize) {
        self.shards[shard].status = ShardStatus::Failed;
    }

    /// Shards that still need a worker (pending or failed).
    pub fn incomplete_shards(&self) -> Vec<ShardRange> {
        self.shards
            .iter()
            .filter(|e| e.status != ShardStatus::Complete)
            .map(ShardEntry::range)
            .collect()
    }

    /// Whether every shard is complete.
    pub fn is_complete(&self) -> bool {
        self.shards
            .iter()
            .all(|e| e.status == ShardStatus::Complete)
    }

    /// The shard files of a completed run, in shard (hence case) order.
    pub fn shard_files(&self, run_dir: &Path) -> Vec<PathBuf> {
        self.shards
            .iter()
            .map(|e| run_dir.join(shard_file_name(e.shard)))
            .collect()
    }

    /// Re-checks every `complete` shard against the bytes on disk and
    /// demotes the ones whose file is missing, truncated or otherwise
    /// different from what the worker reported — the heart of `resume`.
    /// Returns the demoted shard numbers.
    ///
    /// # Errors
    ///
    /// Never fails on a bad shard file (that demotes the shard); only
    /// unexpected I/O errors on the run directory itself propagate.
    pub fn revalidate_completed(&mut self, run_dir: &Path) -> io::Result<Vec<usize>> {
        let mut demoted = Vec::new();
        for entry in &mut self.shards {
            if entry.status != ShardStatus::Complete {
                continue;
            }
            let path = run_dir.join(shard_file_name(entry.shard));
            let valid = match digest_file(&path) {
                Ok(digest) => {
                    digest.checksum == entry.checksum
                        && digest.lines == entry.records
                        && entry.records == entry.end - entry.start
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => false,
                Err(e) => return Err(e),
            };
            if !valid {
                entry.status = ShardStatus::Pending;
                entry.records = 0;
                entry.checksum = String::new();
                entry.attempt_ms = 0;
                entry.metrics = None;
                demoted.push(entry.shard);
            }
        }
        Ok(demoted)
    }

    /// Sums the per-shard worker statistics (completed shards only).
    pub fn aggregate_stats(&self) -> ShardStats {
        let mut total = ShardStats::default();
        for entry in &self.shards {
            if entry.status == ShardStatus::Complete {
                total.records += entry.records;
                total.cache_hits += entry.cache_hits;
                total.cache_misses += entry.cache_misses;
                total.steals += entry.steals;
                total.store_hits += entry.store_hits;
                total.store_misses += entry.store_misses;
            }
        }
        total
    }

    /// Merges the completed shards' metrics snapshots into fleet totals.
    ///
    /// Only the final successful attempt of each shard contributes
    /// (that is all [`Manifest::mark_complete`] keeps). Entries without a
    /// snapshot — manifests from older workers — contribute counters
    /// synthesized from their legacy per-shard fields, so aggregation
    /// works across a mixed-version fleet.
    pub fn aggregate_metrics(&self) -> ring_obs::Snapshot {
        let mut total = ring_obs::Snapshot::default();
        for entry in &self.shards {
            if entry.status != ShardStatus::Complete {
                continue;
            }
            match &entry.metrics {
                Some(metrics) => total.merge(metrics),
                None => {
                    total.add_counter("cache_hits", entry.cache_hits);
                    total.add_counter("cache_misses", entry.cache_misses);
                    total.add_counter("executor_steals", entry.steals);
                    total.add_counter("store_hits", entry.store_hits);
                    total.add_counter("store_misses", entry.store_misses);
                }
            }
        }
        total
    }
}

fn require_str(value: &Value, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("manifest is missing string `{key}`"))
}

fn require_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("manifest is missing integer `{key}`"))
}

fn optional_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("spec `{key}` is not an integer")),
    }
}

fn optional_u64_list(value: &Value, key: &str) -> Result<Option<Vec<u64>>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) if v.is_null() => Ok(None),
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| format!("spec `{key}` is not an array"))?;
            items
                .iter()
                .map(|item| {
                    item.as_u64()
                        .ok_or_else(|| format!("spec `{key}` holds a non-integer"))
                })
                .collect::<Result<Vec<u64>, String>>()
                .map(Some)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_shards;

    fn sample_manifest() -> Manifest {
        let spec = SpecParams {
            subcommand: "sweep".into(),
            quick: true,
            sizes: Some(vec![9, 8]),
            universe_factors: None,
            reps: Some(2),
            seed: None,
            structure_seeds: None,
            fault_drops: None,
            fault_crashes: None,
            fault_churn: None,
            fault_adversarial: false,
        };
        Manifest::new(
            spec,
            "0x1234abcd".into(),
            10,
            &plan_shards(10, 3),
            1,
            "results/sweep.jsonl".into(),
        )
    }

    #[test]
    fn manifests_round_trip_through_json() {
        let mut manifest = sample_manifest().with_structure_store("run/structures".into());
        manifest.shards[0].attempts = 2;
        let registry = ring_obs::Registry::new();
        registry.counter("cache_hits").add(7);
        registry.histogram("case_execute_ns").record(4096);
        manifest.mark_complete(
            0,
            &ShardStats {
                records: 4,
                checksum: "fnv1a64:00ff".into(),
                cache_hits: 7,
                cache_misses: 3,
                steals: 1,
                store_hits: 2,
                store_misses: 1,
                attempt_ms: 120,
                metrics: Some(registry.snapshot()),
            },
        );
        manifest.note_watchdog_kill(0);
        manifest.add_backoff_ms(0, 250);
        manifest.mark_failed(2);
        let text = serde_json::to_string_pretty(&manifest).unwrap();
        let parsed = Manifest::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed, manifest);
        assert!(!parsed.is_complete());
        assert_eq!(parsed.structure_store, "run/structures");
        assert_eq!(
            parsed
                .incomplete_shards()
                .iter()
                .map(|r| r.shard)
                .collect::<Vec<_>>(),
            vec![1, 2]
        );
        let stats = parsed.aggregate_stats();
        assert_eq!((stats.records, stats.cache_hits, stats.steals), (4, 7, 1));
        assert_eq!((stats.store_hits, stats.store_misses), (2, 1));
        assert_eq!(parsed.shards[0].attempt_ms, 120);
        assert_eq!(parsed.shards[0].watchdog_kills, 1);
        assert_eq!(parsed.shards[0].backoff_ms, 250);
        let metrics = parsed.aggregate_metrics();
        assert_eq!(metrics.counter("cache_hits"), 7);
        assert_eq!(metrics.histogram("case_execute_ns").unwrap().count, 1);
    }

    #[test]
    fn observability_fields_tolerate_absence() {
        // A manifest written before the metrics layer existed lacks the
        // per-shard attempt/watchdog/backoff tallies and the snapshot.
        let manifest = sample_manifest();
        let text = serde_json::to_string(&manifest).unwrap();
        let stripped = text
            .replace(",\"attempt_ms\":0", "")
            .replace(",\"watchdog_kills\":0", "")
            .replace(",\"backoff_ms\":0", "")
            .replace(",\"metrics\":null", "");
        assert_ne!(stripped, text, "the new fields must have been present");
        let parsed = Manifest::from_json(&serde_json::from_str(&stripped).unwrap()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn aggregate_metrics_synthesizes_for_legacy_entries() {
        let mut manifest = sample_manifest();
        // Shard 0 completes with a real snapshot.
        let registry = ring_obs::Registry::new();
        registry.counter("cache_hits").add(10);
        registry.counter("store_misses").add(4);
        manifest.mark_complete(
            0,
            &ShardStats {
                records: 4,
                checksum: "fnv1a64:aa".into(),
                cache_hits: 10,
                store_misses: 4,
                metrics: Some(registry.snapshot()),
                ..ShardStats::default()
            },
        );
        // Shard 1 completes the legacy way (no snapshot).
        manifest.mark_complete(
            1,
            &ShardStats {
                records: 3,
                checksum: "fnv1a64:bb".into(),
                cache_hits: 5,
                steals: 2,
                store_misses: 1,
                ..ShardStats::default()
            },
        );
        // Shard 2 stays pending: its numbers must not contribute.
        manifest.shards[2].cache_hits = 99;

        let metrics = manifest.aggregate_metrics();
        assert_eq!(metrics.counter("cache_hits"), 15);
        assert_eq!(metrics.counter("executor_steals"), 2);
        assert_eq!(metrics.counter("store_misses"), 5);
    }

    #[test]
    fn fault_and_timeout_fields_round_trip_and_tolerate_absence() {
        let mut manifest = sample_manifest().with_shard_timeout(Some(90));
        manifest.spec.fault_drops = Some(vec![0, 100, 400]);
        manifest.spec.fault_crashes = Some(1);
        manifest.spec.fault_churn = Some(2);
        manifest.spec.fault_adversarial = true;
        let text = serde_json::to_string(&manifest).unwrap();
        let parsed = Manifest::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.shard_timeout, Some(90));
        assert_eq!(parsed.spec.fault_drops, Some(vec![0, 100, 400]));

        // A pre-fault-layer manifest (no fault fields, no shard_timeout)
        // still loads as a clean, unbounded run.
        let clean = sample_manifest();
        let stripped = serde_json::to_string(&clean)
            .unwrap()
            .replace(",\"fault_drops\":null", "")
            .replace(",\"fault_crashes\":null", "")
            .replace(",\"fault_churn\":null", "")
            .replace(",\"fault_adversarial\":false", "")
            .replace(",\"shard_timeout\":null", "");
        assert!(!stripped.contains("fault_"));
        let parsed = Manifest::from_json(&serde_json::from_str(&stripped).unwrap()).unwrap();
        assert_eq!(parsed, clean);
    }

    #[test]
    fn storeless_manifests_parse_with_zero_store_fields() {
        // A manifest written before the structure store existed (no
        // `structure_store`, no per-shard store counters) still loads.
        let manifest = sample_manifest();
        let text = serde_json::to_string(&manifest).unwrap();
        let stripped = text
            .replace(",\"structure_store\":\"\"", "")
            .replace(",\"store_hits\":0,\"store_misses\":0", "");
        assert_ne!(stripped, text, "the store fields must have been present");
        let parsed = Manifest::from_json(&serde_json::from_str(&stripped).unwrap()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn save_and_load_are_inverse() {
        let dir =
            std::env::temp_dir().join(format!("ring-distrib-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = sample_manifest();
        manifest.save_in(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), manifest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn revalidation_demotes_tampered_shards() {
        let dir =
            std::env::temp_dir().join(format!("ring-distrib-revalidate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut manifest = sample_manifest();

        // Shard 0: valid file (4 cases, checksum agrees).
        let body =
            "{\"case_index\":0}\n{\"case_index\":1}\n{\"case_index\":2}\n{\"case_index\":3}\n";
        std::fs::write(dir.join(shard_file_name(0)), body).unwrap();
        let digest = digest_file(&dir.join(shard_file_name(0))).unwrap();
        manifest.mark_complete(
            0,
            &ShardStats {
                records: 4,
                checksum: digest.checksum,
                ..ShardStats::default()
            },
        );
        // Shard 1: recorded complete but the file is truncated.
        std::fs::write(dir.join(shard_file_name(1)), "{\"case_index\":4}\n").unwrap();
        let digest = digest_file(&dir.join(shard_file_name(1))).unwrap();
        manifest.mark_complete(
            1,
            &ShardStats {
                records: 3,
                checksum: digest.checksum,
                ..ShardStats::default()
            },
        );
        // Shard 2: recorded complete but the file is gone.
        manifest.mark_complete(
            2,
            &ShardStats {
                records: 3,
                checksum: "fnv1a64:dead".into(),
                ..ShardStats::default()
            },
        );

        let demoted = manifest.revalidate_completed(&dir).unwrap();
        assert_eq!(demoted, vec![1, 2]);
        assert_eq!(manifest.shards[0].status, ShardStatus::Complete);
        assert_eq!(manifest.shards[1].status, ShardStatus::Pending);
        assert_eq!(manifest.shards[2].status, ShardStatus::Pending);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let value = serde_json::from_str("{\"schema\":\"ring-distrib/v0\"}").unwrap();
        assert!(Manifest::from_json(&value).unwrap_err().contains("schema"));
    }
}
