//! The worker stdio protocol (`schema: ring-distrib/v1`).
//!
//! A worker process speaks line-delimited JSON on stdout, in exactly this
//! order:
//!
//! 1. one **start event** — `{"event":"start","schema":"ring-distrib/v1",
//!    "shard":i,"shards":M,"start":a,"end":b,"spec_fingerprint":"0x…"}` —
//!    which lets the orchestrator reject a worker that resolved a different
//!    case enumeration (version skew, mismatched flags);
//! 2. one **record line per case**, in ascending global `case_index` order,
//!    byte-identical to the line a single-process sweep would stream for
//!    that case (record lines are distinguished from events by their
//!    `{"case_index":` prefix; they never carry an `event` key);
//! 3. one **done event** — `{"event":"done","shard":i,"records":k,
//!    "checksum":"fnv1a64:…","cache_hits":…,"cache_misses":…,"steals":…,
//!    "store_hits":…,"store_misses":…}` — whose checksum covers the record
//!    bytes (each line plus its newline); the `store_*` counters account
//!    for the worker's on-disk structure store and are 0 (and may be
//!    omitted) when the worker ran without one.
//!
//! Anything else — a nonzero exit, a truncated stream, an out-of-sequence
//! record, a checksum mismatch — marks the shard failed and eligible for
//! retry. Human diagnostics go to stderr, which the orchestrator passes
//! through.

use crate::checksum::Fnv1a64;
use serde::Serialize;
use std::io::Write;

/// The protocol schema identifier.
pub const SCHEMA: &str = "ring-distrib/v1";

/// The first line a worker emits.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct StartEvent {
    /// Always `"start"`.
    pub event: String,
    /// Always [`SCHEMA`].
    pub schema: String,
    /// The shard this worker runs.
    pub shard: usize,
    /// Total shard count of the plan.
    pub shards: usize,
    /// First global case index of the shard (inclusive).
    pub start: usize,
    /// One past the last global case index (exclusive).
    pub end: usize,
    /// Fingerprint of the resolved spec (hex, `0x…`).
    pub spec_fingerprint: String,
}

impl StartEvent {
    /// Builds the event for one shard assignment.
    pub fn new(shard: usize, shards: usize, start: usize, end: usize, fingerprint: &str) -> Self {
        StartEvent {
            event: "start".into(),
            schema: SCHEMA.into(),
            shard,
            shards,
            start,
            end,
            spec_fingerprint: fingerprint.to_string(),
        }
    }
}

/// The last line a worker emits.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DoneEvent {
    /// Always `"done"`.
    pub event: String,
    /// The shard this worker ran.
    pub shard: usize,
    /// Number of record lines emitted.
    pub records: usize,
    /// Checksum over the emitted record bytes (`fnv1a64:…`).
    pub checksum: String,
    /// Structure-cache hits accumulated by the worker's engine.
    pub cache_hits: u64,
    /// Structure-cache misses accumulated by the worker's engine.
    pub cache_misses: u64,
    /// Work-stealing executor steals inside the worker.
    pub steals: u64,
    /// On-disk structure-store loads that succeeded inside the worker
    /// (0 when the worker ran without a store).
    pub store_hits: u64,
    /// On-disk structure-store lookups that fell through to construction.
    pub store_misses: u64,
    /// Full `ring-obs/v1` metrics snapshot for exactly this shard attempt
    /// (a delta against the worker process's registry, so a long-lived TCP
    /// worker reports one job's metrics, not its lifetime totals). `None`
    /// for streams from older workers.
    pub metrics: Option<ring_obs::Snapshot>,
}

impl DoneEvent {
    /// Builds the event from the worker's end-of-shard accounting (store
    /// counters start at zero; see [`DoneEvent::with_store`]).
    pub fn new(
        shard: usize,
        records: usize,
        checksum: String,
        cache_hits: u64,
        cache_misses: u64,
        steals: u64,
    ) -> Self {
        DoneEvent {
            event: "done".into(),
            shard,
            records,
            checksum,
            cache_hits,
            cache_misses,
            steals,
            store_hits: 0,
            store_misses: 0,
            metrics: None,
        }
    }

    /// Adds the worker's structure-store accounting.
    pub fn with_store(mut self, store_hits: u64, store_misses: u64) -> Self {
        self.store_hits = store_hits;
        self.store_misses = store_misses;
        self
    }

    /// Attaches the attempt's metrics snapshot.
    pub fn with_metrics(mut self, metrics: ring_obs::Snapshot) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

/// One parsed line of a worker's stdout.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerLine<'a> {
    /// The start event.
    Start(StartEvent),
    /// The done event.
    Done(DoneEvent),
    /// A case record, passed through verbatim.
    Record {
        /// The record's global case index.
        case_index: usize,
        /// The raw record line (no trailing newline).
        line: &'a str,
    },
}

/// Classifies and parses one stdout line.
///
/// # Errors
///
/// Returns a description of malformed lines (unknown events, records
/// without a parseable `case_index`).
pub fn parse_worker_line(line: &str) -> Result<WorkerLine<'_>, String> {
    if line.starts_with("{\"event\":") {
        let value = serde_json::from_str(line).map_err(|e| format!("malformed event line: {e}"))?;
        let kind = value
            .get("event")
            .and_then(|v| v.as_str())
            .ok_or("event line without an `event` string")?;
        let field_u64 = |key: &str| {
            value
                .get(key)
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| format!("`{kind}` event is missing integer `{key}`"))
        };
        let field_str = |key: &str| {
            value
                .get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("`{kind}` event is missing string `{key}`"))
        };
        return match kind {
            "start" => {
                let schema = field_str("schema")?;
                if schema != SCHEMA {
                    return Err(format!(
                        "worker speaks schema `{schema}`, expected `{SCHEMA}`"
                    ));
                }
                Ok(WorkerLine::Start(StartEvent {
                    event: "start".into(),
                    schema,
                    shard: field_u64("shard")? as usize,
                    shards: field_u64("shards")? as usize,
                    start: field_u64("start")? as usize,
                    end: field_u64("end")? as usize,
                    spec_fingerprint: field_str("spec_fingerprint")?,
                }))
            }
            "done" => {
                // Store counters were added within schema v1; a stream from
                // a storeless worker simply omits them.
                let optional_u64 =
                    |key: &str| value.get(key).and_then(serde::Value::as_u64).unwrap_or(0);
                // Likewise absent (or null) in streams from older workers.
                let metrics = match value.get("metrics") {
                    Some(v) if !v.is_null() => Some(
                        ring_obs::Snapshot::from_json(v)
                            .map_err(|e| format!("`done` event has a bad metrics snapshot: {e}"))?,
                    ),
                    _ => None,
                };
                Ok(WorkerLine::Done(DoneEvent {
                    event: "done".into(),
                    shard: field_u64("shard")? as usize,
                    records: field_u64("records")? as usize,
                    checksum: field_str("checksum")?,
                    cache_hits: field_u64("cache_hits")?,
                    cache_misses: field_u64("cache_misses")?,
                    steals: field_u64("steals")?,
                    store_hits: optional_u64("store_hits"),
                    store_misses: optional_u64("store_misses"),
                    metrics,
                }))
            }
            other => Err(format!("unknown worker event `{other}`")),
        };
    }
    Ok(WorkerLine::Record {
        case_index: extract_case_index(line)?,
        line,
    })
}

/// Extracts the global case index from a record line. Record lines always
/// serialize `case_index` first, so the fast path is a prefix scan; the
/// fallback is a full JSON parse (tolerating records produced by a
/// different serializer).
pub fn extract_case_index(line: &str) -> Result<usize, String> {
    const PREFIX: &str = "{\"case_index\":";
    if let Some(rest) = line.strip_prefix(PREFIX) {
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if !digits.is_empty() {
            return digits
                .parse()
                .map_err(|_| format!("case index out of range in record: {digits}"));
        }
    }
    let value = serde_json::from_str(line)
        .map_err(|e| format!("line is neither an event nor a JSON record: {e}"))?;
    value
        .get("case_index")
        .and_then(serde::Value::as_u64)
        .map(|i| i as usize)
        .ok_or_else(|| "record line without an integer `case_index`".to_string())
}

/// A [`Write`] adapter a worker wraps around stdout to account for the
/// record stream while it is produced: bytes pass through unchanged while
/// the adapter counts newline-terminated lines and folds every byte into
/// the shard checksum (the one the done event reports).
///
/// For crash testing, `fail_after_lines` makes the process exit with status
/// 3 once that many complete lines have been written — simulating a worker
/// killed mid-shard with a deterministic cut point (see
/// [`fail_after_from_env`]).
pub struct ShardTally<W: Write> {
    inner: W,
    lines: u64,
    hasher: Fnv1a64,
    fail_after_lines: Option<u64>,
}

impl<W: Write> ShardTally<W> {
    /// Wraps a writer.
    pub fn new(inner: W, fail_after_lines: Option<u64>) -> Self {
        ShardTally {
            inner,
            lines: 0,
            hasher: Fnv1a64::new(),
            fail_after_lines,
        }
    }

    /// Complete lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Checksum over every byte written so far, in manifest form.
    pub fn checksum(&self) -> String {
        self.hasher.format()
    }
}

impl<W: Write> Write for ShardTally<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hasher.update(&buf[..n]);
        self.lines += buf[..n].iter().filter(|&&b| b == b'\n').count() as u64;
        if let Some(limit) = self.fail_after_lines {
            if self.lines >= limit {
                // Simulated mid-shard death: flush what a killed process
                // would plausibly have gotten out, then die without a done
                // event.
                self.inner.flush().ok();
                eprintln!("worker: injected failure after {limit} record lines");
                std::process::exit(3);
            }
        }
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Reads the crash-injection hooks the integration tests use:
///
/// * `RING_DISTRIB_FAIL_AFTER=k` — every worker dies after `k` record
///   lines (exercises failure reporting: the shard ends up `failed`);
/// * `RING_DISTRIB_FAIL_ONCE=path` — the first worker to observe the hook
///   creates `path` and dies after one record line; later workers (the
///   retry) run normally (exercises per-shard retry).
///
/// Returns the `fail_after_lines` value for [`ShardTally`].
pub fn fail_after_from_env() -> Option<u64> {
    if let Ok(text) = std::env::var("RING_DISTRIB_FAIL_AFTER") {
        return text.parse().ok();
    }
    if let Ok(marker) = std::env::var("RING_DISTRIB_FAIL_ONCE") {
        let path = std::path::Path::new(&marker);
        if !path.exists() {
            // Racing workers may both pass the `exists` check; `create_new`
            // makes exactly one of them the designated casualty.
            if std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)
                .is_ok()
            {
                return Some(1);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_their_lines() {
        let start = StartEvent::new(1, 4, 10, 20, "0xabc");
        let line = serde_json::to_string(&start).unwrap();
        assert_eq!(parse_worker_line(&line).unwrap(), WorkerLine::Start(start));

        let done =
            DoneEvent::new(1, 10, "fnv1a64:0011223344556677".into(), 5, 2, 1).with_store(4, 3);
        let line = serde_json::to_string(&done).unwrap();
        assert_eq!(parse_worker_line(&line).unwrap(), WorkerLine::Done(done));

        // With a metrics snapshot attached, the full snapshot roundtrips.
        let registry = ring_obs::Registry::new();
        registry.counter("cache_hits").add(5);
        registry.histogram("case_execute_ns").record(1234);
        let done =
            DoneEvent::new(2, 3, "fnv1a64:00".into(), 5, 0, 0).with_metrics(registry.snapshot());
        let line = serde_json::to_string(&done).unwrap();
        assert_eq!(parse_worker_line(&line).unwrap(), WorkerLine::Done(done));
    }

    #[test]
    fn done_events_without_store_counters_parse_as_zero() {
        // A storeless worker (or an older binary) omits the store fields.
        let line = "{\"event\":\"done\",\"shard\":0,\"records\":2,\
\"checksum\":\"fnv1a64:00\",\"cache_hits\":1,\"cache_misses\":1,\"steals\":0}";
        match parse_worker_line(line).unwrap() {
            WorkerLine::Done(done) => {
                assert_eq!((done.store_hits, done.store_misses), (0, 0));
            }
            other => panic!("expected a done event, got {other:?}"),
        }
    }

    #[test]
    fn record_lines_pass_through_with_their_index() {
        let line = r#"{"case_index":42,"experiment":"table1","n":9}"#;
        assert_eq!(
            parse_worker_line(line).unwrap(),
            WorkerLine::Record {
                case_index: 42,
                line
            }
        );
        // Fallback path: `case_index` not in leading position.
        let shuffled = r#"{"experiment":"table1","case_index":7}"#;
        assert!(matches!(
            parse_worker_line(shuffled).unwrap(),
            WorkerLine::Record { case_index: 7, .. }
        ));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_worker_line("{\"event\":\"nope\"}").is_err());
        assert!(parse_worker_line("{\"event\":\"start\"}").is_err());
        assert!(parse_worker_line("not json").is_err());
        assert!(parse_worker_line("{\"no_index\":1}").is_err());
        let wrong_schema = "{\"event\":\"start\",\"schema\":\"ring-distrib/v0\"}";
        assert!(parse_worker_line(wrong_schema)
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn tally_counts_lines_and_checksums_bytes() {
        let mut tally = ShardTally::new(Vec::new(), None);
        tally.write_all(b"{\"case_index\":0}\n").unwrap();
        tally.write_all(b"{\"case_index\":1}\n").unwrap();
        assert_eq!(tally.lines(), 2);
        let mut reference = Fnv1a64::new();
        reference.update(b"{\"case_index\":0}\n{\"case_index\":1}\n");
        assert_eq!(tally.checksum(), reference.format());
    }
}
