//! # ring-distrib
//!
//! The distributed sweep layer of the reproduction: everything needed to
//! split one deterministic sweep across many worker **processes** — on one
//! machine or a fleet — and reassemble output byte-identical to a
//! single-process run.
//!
//! The crate is deliberately independent of the scenario engine (it knows
//! nothing about rings or experiments); `ring-harness` wires it to the
//! engine and exposes it as `ringlab sweep --shards M` plus the `worker`,
//! `merge` and `resume` subcommands. The layers:
//!
//! * [`plan`] — the shard planner: `0..total` case indices into `M`
//!   contiguous, balanced ranges, identically computable by every
//!   participant.
//! * [`protocol`] — the worker stdio protocol (`schema: ring-distrib/v1`):
//!   a start event, raw record lines streaming back as cases complete, and
//!   a done event carrying the shard checksum and worker statistics.
//! * [`manifest`] — `manifest.json`: spec parameters + fingerprint, the
//!   shard plan, and per-shard status / attempts / record counts /
//!   checksums / cache-and-executor stats. Checkpointed atomically after
//!   every transition; `resume` trusts only shards whose files still match.
//! * [`orchestrator`] — supervises worker attempts with bounded
//!   concurrency, validates their streams, retries failed shards, and
//!   checkpoints the manifest. *Where* an attempt runs sits behind the
//!   [`orchestrator::WorkerTransport`] seam: child processes via
//!   [`std::process::Command`] ([`orchestrator::ProcessTransport`]) or
//!   remote TCP workers (the `ring-serve` daemon).
//! * [`merge`] — the deterministic k-way merger: shard JSONL files in,
//!   one `case_index`-ordered stream out, byte-identical to the
//!   single-process stream (gaps and duplicates are hard errors).
//! * [`checksum`] — streaming FNV-1a-64 digests pinning shard file
//!   contents end to end (worker → orchestrator → disk → resume → merge).
//!   The hasher is shared with `ring_combinat::codec`, so shard files and
//!   `structure-store/v1` files are pinned by one implementation.
//!
//! ## Determinism
//!
//! The single-process engine already guarantees byte-identical JSONL for
//! every `--jobs` value. This crate extends the guarantee across process
//! boundaries: the plan is a pure function of `(total, M)`, workers emit
//! exactly the lines the single-process sweep would emit for their range
//! (global case indices included), and the merge refuses any stream it
//! cannot prove to be the full sequence `0..total`. The harness
//! integration tests pin `merge(shards(M)) == sweep --jobs N` for several
//! `M`, including after crash-and-resume.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod checksum;
pub mod manifest;
pub mod merge;
pub mod orchestrator;
pub mod plan;
pub mod protocol;

pub use checksum::{digest_file, format_checksum, FileDigest, Fnv1a64};
pub use manifest::{shard_file_name, Manifest, ShardEntry, ShardStats, ShardStatus, SpecParams};
pub use merge::{merge_shards, MergeError, MergeReport};
pub use orchestrator::{
    run_pending_shards, run_pending_shards_with, OrchestratorOptions, ProcessTransport, RunOutcome,
    ShardAttempt, WorkerTransport,
};
pub use plan::{plan_shards, ShardRange};
pub use protocol::{
    extract_case_index, fail_after_from_env, parse_worker_line, DoneEvent, ShardTally, StartEvent,
    WorkerLine, SCHEMA,
};
