//! Shard content checksums.
//!
//! Every shard JSONL file is pinned by an FNV-1a-64 digest of its exact
//! bytes, computed streaming on both ends of the worker protocol: the worker
//! hashes what it emits, the orchestrator hashes what it writes, and the two
//! must agree before a shard is marked complete. `resume` recomputes the
//! digest from disk to decide which shards survived a crash — a truncated or
//! edited shard file fails the comparison and is re-run, never silently
//! merged.
//!
//! The hasher itself lives in `ring_combinat::codec` (re-exported here),
//! so shard files and `structure-store/v1` files are pinned by the same
//! implementation.

pub use ring_combinat::codec::{format_checksum, Fnv1a64};
use std::io::Read;
use std::path::Path;

/// Digest and line count of one shard file, as recomputed from disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileDigest {
    /// Number of `\n`-terminated lines.
    pub lines: usize,
    /// Checksum over the exact file bytes, in [`format_checksum`] form.
    pub checksum: String,
}

/// Streams a file through the hasher, counting lines.
///
/// # Errors
///
/// Propagates I/O errors (a missing file is an error, not an empty digest).
pub fn digest_file(path: &Path) -> std::io::Result<FileDigest> {
    let mut file = std::fs::File::open(path)?;
    let mut hasher = Fnv1a64::new();
    let mut lines = 0;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hasher.update(&buf[..n]);
        lines += buf[..n].iter().filter(|&&b| b == b'\n').count();
    }
    Ok(FileDigest {
        lines,
        checksum: hasher.format(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_matches_reference_vectors() {
        // Standard FNV-1a-64 test vectors.
        let mut h = Fnv1a64::new();
        assert_eq!(h.finish(), 0xcbf29ce484222325);
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = Fnv1a64::new();
        h.update(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
        assert_eq!(h.format(), "fnv1a64:85944171f73967e8");
    }

    #[test]
    fn incremental_updates_equal_one_shot() {
        let mut a = Fnv1a64::new();
        a.update(b"hello ");
        a.update(b"world");
        let mut b = Fnv1a64::new();
        b.update(b"hello world");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn file_digest_counts_lines_and_bytes() {
        let dir = std::env::temp_dir().join(format!("ring-distrib-digest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.jsonl");
        std::fs::write(&path, b"{\"a\":1}\n{\"a\":2}\n").unwrap();
        let digest = digest_file(&path).unwrap();
        assert_eq!(digest.lines, 2);
        let mut h = Fnv1a64::new();
        h.update(b"{\"a\":1}\n{\"a\":2}\n");
        assert_eq!(digest.checksum, h.format());
        assert!(digest_file(&dir.join("missing.jsonl")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
