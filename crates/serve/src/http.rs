//! A minimal HTTP/1.1 layer for the daemon.
//!
//! Exactly what `ringlab serve` needs and nothing more: an incremental
//! request parser that works on the byte buffer of a non-blocking
//! connection (request line, headers, `Content-Length` body), and response
//! builders for JSON bodies and streamed JSONL. Every response carries
//! `Connection: close` — one request per connection keeps the poll loop
//! trivial, and both `curl` and the in-repo tests speak it natively. No
//! external dependency is involved; this module is the entire HTTP
//! surface.

use serde::Value;

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target path (query strings are kept verbatim).
    pub path: String,
    /// The request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

/// Tries to parse one complete request from the front of `buf`.
///
/// Returns `Ok(None)` while the buffer holds only a prefix of a request
/// (the caller keeps reading), or the parsed request plus the number of
/// bytes it consumed.
///
/// # Errors
///
/// Returns a description of a malformed request line or header block.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, String> {
    let Some(head_end) = find_blank_line(buf) else {
        // An absurdly long header block is an attack or a confused peer,
        // not a slow request.
        if buf.len() > 64 * 1024 {
            return Err("request header block exceeds 64 KiB".into());
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| "request head is not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let path = parts.next().ok_or("request line has no path")?.to_string();
    let version = parts.next().ok_or("request line has no version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length `{}`", value.trim()))?;
            }
        }
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    Ok(Some((
        Request { method, path, body },
        body_start + content_length,
    )))
}

/// The position of the `\r\n\r\n` separating head from body.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Builds a complete response with a body.
pub fn response(status: u16, reason: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Builds a JSON response (the daemon's default shape).
pub fn json_response(status: u16, reason: &str, value: &Value) -> Vec<u8> {
    let body = serde_json::to_string_pretty(value).expect("serializable value") + "\n";
    response(status, reason, "application/json", body.as_bytes())
}

/// Builds an error response with a JSON `{"error": …}` body.
pub fn error_response(status: u16, reason: &str, message: &str) -> Vec<u8> {
    let value = Value::Object(vec![("error".to_string(), Value::Str(message.to_string()))]);
    json_response(status, reason, &value)
}

/// The response head of a streamed JSONL body: no `Content-Length`, the
/// close of the connection delimits the stream.
pub fn stream_head() -> Vec<u8> {
    b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n".to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_incrementally() {
        let wire = b"POST /v1/runs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        // Every proper prefix is "keep reading".
        for cut in 0..wire.len() {
            assert_eq!(parse_request(&wire[..cut]).unwrap(), None, "cut {cut}");
        }
        let (request, consumed) = parse_request(wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/runs");
        assert_eq!(request.body, b"body");
    }

    #[test]
    fn bodyless_requests_and_trailing_bytes() {
        let wire = b"GET /v1/healthz HTTP/1.1\r\n\r\nGET /extra";
        let (request, consumed) = parse_request(wire).unwrap().unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/v1/healthz");
        assert!(request.body.is_empty());
        assert_eq!(&wire[consumed..], b"GET /extra");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse_request(b"NOT-HTTP\r\n\r\n").is_err());
        assert!(parse_request(b"GET /x SPDY/3\r\n\r\n").is_err());
        assert!(parse_request(b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn responses_carry_length_and_close() {
        let wire = response(200, "OK", "text/plain", b"hi");
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
    }
}
