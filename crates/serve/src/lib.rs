//! # ring-serve
//!
//! Sweep-as-a-service (`schema: ring-serve/v1`): the long-running daemon
//! behind `ringlab serve` and the TCP side of `ringlab worker --connect`.
//!
//! The crate turns the distrib layer into a network service without
//! changing any of its guarantees. Three small modules:
//!
//! * [`http`] — a hand-rolled HTTP/1.1 request parser and response
//!   builders, sized for a non-blocking poll loop (no external deps).
//! * [`pool`] — the registered-worker pool plus
//!   [`pool::TcpWorkerTransport`], the
//!   [`ring_distrib::WorkerTransport`] implementation that leases one
//!   connection per shard attempt, sends a job frame and hands the socket
//!   to the orchestrator as the attempt's `ring-distrib/v1` stream.
//! * [`daemon`] — the serve loop: run submission over HTTP/JSON,
//!   multi-tenant `runs/run-NNNN/` directories with standard
//!   `ring-distrib/v1` manifests (every daemon run dir is `ringlab
//!   resume`-able), a single scheduler thread driving the unchanged
//!   orchestrator, and per-case JSONL streamed to subscribers as shards
//!   land.
//!
//! ## Wire format
//!
//! Worker registration and job dispatch are newline-delimited JSON frames
//! on one TCP connection:
//!
//! * worker → daemon: `{"event":"hello","schema":"ring-serve/v1",
//!   "worker":"name"}` — once, on connect (and on every reconnect).
//! * daemon → worker: `{"event":"job","argv":[…]}` — a `ringlab worker …`
//!   argv built by [`ring_distrib::SpecParams::worker_args`], the same
//!   argv the child-process dispatcher would spawn.
//! * worker → daemon: the verbatim `ring-distrib/v1` protocol lines
//!   (start event, record lines, done event) — the existing stdio wire
//!   format *is* the TCP frame payload.
//! * daemon → worker: `{"event":"shutdown"}` — dismisses the worker.
//!
//! Because the payload and its validation are unchanged, byte-identity at
//! any worker count and crash-resume survive the transport swap: a worker
//! disconnect is a broken protocol stream, which the orchestrator already
//! treats as a retryable shard failure.
//!
//! The crate knows nothing about rings or experiments: the harness injects
//! a [`daemon::SpecResolver`] to validate submissions and compute
//! fingerprints, and everything else flows through `ring-distrib`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod daemon;
pub mod http;
pub mod pool;

/// The service schema identifier (HTTP bodies and TCP frames).
pub const SCHEMA: &str = "ring-serve/v1";

pub use daemon::{serve, ResolvedSpec, ServeConfig, SpecResolver};
pub use pool::{TcpWorkerTransport, WorkerPool};
