//! The `ringlab serve` daemon.
//!
//! One listening socket carries both faces of the service. A connecting
//! peer is classified by its first byte: a JSON frame (`{`) is a worker
//! registering with a `ring-serve/v1` hello, anything else is an HTTP
//! client. HTTP requests are parsed incrementally by a small non-blocking
//! poll loop; workers, once registered, move to the [`WorkerPool`] and are
//! leased out per shard attempt by the orchestrator's TCP transport.
//!
//! Runs are multi-tenant: each `POST /v1/runs` creates
//! `<data-dir>/runs/run-NNNN/` with a standard `ring-distrib/v1`
//! `manifest.json`, so every daemon run directory is *also* a valid target
//! for `ringlab resume` — the daemon adds queueing and remote dispatch,
//! not a new on-disk format. A scheduler thread executes runs one at a
//! time (shard-level parallelism comes from the worker pool), reusing the
//! orchestrator's retry/watchdog supervision unchanged; when every shard
//! lands, the shard files are merged into `merged.jsonl`, byte-identical
//! to the single-process sweep. Subscribers on
//! `GET /v1/runs/<id>/results` receive the per-case JSONL as shards land,
//! in case order (the contiguous shard plan makes "complete prefix of
//! shards, concatenated" equal to the final merge order).

use crate::http::{self, Request};
use crate::pool::{TcpWorkerTransport, WorkerPool};
use crate::SCHEMA;
use ring_distrib::{
    merge_shards, plan_shards, run_pending_shards_with, Manifest, OrchestratorOptions, ShardStatus,
    SpecParams,
};
use serde::Value;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A resolved sweep spec: what the daemon needs from the scenario layer to
/// plan and validate a run without depending on it.
pub struct ResolvedSpec {
    /// Number of cases the spec enumerates.
    pub total_cases: usize,
    /// The spec fingerprint workers must reproduce (hex, `0x…`).
    pub fingerprint: String,
}

/// Resolves submitted spec parameters against the scenario engine (the
/// harness injects this; an `Err` rejects the submission with a 400).
pub type SpecResolver = Box<dyn Fn(&SpecParams) -> Result<ResolvedSpec, String> + Send + Sync>;

/// Daemon configuration.
pub struct ServeConfig {
    /// Listen address (`127.0.0.1:0` picks a free port; the resolved
    /// address lands in `<data-dir>/endpoint`).
    pub listen: String,
    /// Root of the daemon's state: `endpoint` plus `runs/run-NNNN/`.
    pub data_dir: PathBuf,
    /// `--jobs` passed to each remote worker shard.
    pub jobs_per_worker: usize,
    /// Per-shard retry budget (extra attempts after a failed one).
    pub retries: u32,
    /// Per-attempt wall-clock budget (`None` = unlimited).
    pub shard_timeout: Option<Duration>,
    /// How long a shard attempt waits for an idle worker before counting
    /// as a failed launch.
    pub lease_timeout: Duration,
    /// The scenario-layer spec resolver.
    pub resolver: SpecResolver,
}

/// How often pollers sleep when nothing is readable, and how often result
/// subscribers re-read the manifest.
const POLL_SLEEP: Duration = Duration::from_millis(5);
const SUBSCRIBE_POLL: Duration = Duration::from_millis(50);

/// Idle HTTP connections are dropped after this long without a complete
/// request.
const CONN_IDLE_LIMIT: Duration = Duration::from_secs(10);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RunStatus {
    Queued,
    Running,
    Complete,
    Failed,
}

impl RunStatus {
    fn as_str(self) -> &'static str {
        match self {
            RunStatus::Queued => "queued",
            RunStatus::Running => "running",
            RunStatus::Complete => "complete",
            RunStatus::Failed => "failed",
        }
    }
}

struct RunRecord {
    id: usize,
    dir: PathBuf,
    status: RunStatus,
    error: Option<String>,
}

struct Daemon {
    config: ServeConfig,
    pool: Arc<WorkerPool>,
    runs: Mutex<Vec<RunRecord>>,
    queue: Mutex<VecDeque<usize>>,
    queue_signal: Condvar,
    shutting_down: AtomicBool,
}

/// Runs the daemon until `POST /v1/shutdown`.
///
/// # Errors
///
/// Returns a description of setup failures (bad listen address, unwritable
/// data directory); per-run failures are reported through the status API.
pub fn serve(config: ServeConfig) -> Result<(), String> {
    let runs_dir = config.data_dir.join("runs");
    std::fs::create_dir_all(&runs_dir)
        .map_err(|e| format!("cannot create {}: {e}", runs_dir.display()))?;
    let listener = TcpListener::bind(&config.listen)
        .map_err(|e| format!("cannot listen on {}: {e}", config.listen))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve the bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot unblock the listener: {e}"))?;
    write_endpoint_file(&config.data_dir, &addr.to_string())?;
    eprintln!(
        "ring-serve: listening on {addr} (data dir {})",
        config.data_dir.display()
    );

    let daemon = Arc::new(Daemon {
        config,
        pool: Arc::new(WorkerPool::new()),
        runs: Mutex::new(Vec::new()),
        queue: Mutex::new(VecDeque::new()),
        queue_signal: Condvar::new(),
        shutting_down: AtomicBool::new(false),
    });

    let scheduler = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || scheduler_loop(&daemon))
    };

    let mut pending: Vec<PendingConn> = Vec::new();
    while !daemon.shutting_down.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_ok() {
                    pending.push(PendingConn {
                        stream,
                        buf: Vec::new(),
                        since: Instant::now(),
                    });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => eprintln!("ring-serve: accept failed: {e}"),
        }
        let mut keep = Vec::with_capacity(pending.len());
        for mut conn in pending.drain(..) {
            match step_connection(&daemon, &mut conn) {
                ConnVerdict::Keep => keep.push(conn),
                ConnVerdict::Done => {}
            }
        }
        pending = keep;
        std::thread::sleep(POLL_SLEEP);
    }

    // Drain: dismiss idle workers, wake the scheduler, let an in-flight
    // run finish. Queued-but-unstarted runs stay `queued` on disk; their
    // directories are valid `ringlab resume` targets.
    daemon.pool.shutdown();
    daemon.queue_signal.notify_all();
    scheduler.join().expect("scheduler thread");
    std::fs::remove_file(daemon.config.data_dir.join("endpoint")).ok();
    eprintln!("ring-serve: shut down");
    Ok(())
}

/// Publishes the bound address atomically as `<data-dir>/endpoint`, so
/// scripts can `--listen 127.0.0.1:0` and read the port back.
fn write_endpoint_file(data_dir: &std::path::Path, addr: &str) -> Result<(), String> {
    let path = data_dir.join("endpoint");
    let tmp = data_dir.join("endpoint.tmp");
    std::fs::write(&tmp, format!("{addr}\n"))
        .and_then(|()| std::fs::rename(&tmp, &path))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

struct PendingConn {
    stream: TcpStream,
    buf: Vec<u8>,
    since: Instant,
}

enum ConnVerdict {
    Keep,
    Done,
}

/// Advances one not-yet-classified connection: reads what is available,
/// then either registers a worker, answers a complete HTTP request, or
/// keeps waiting.
fn step_connection(daemon: &Arc<Daemon>, conn: &mut PendingConn) -> ConnVerdict {
    let mut eof = false;
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                eof = true;
                break;
            }
        }
    }

    if conn.buf.first() == Some(&b'{') {
        // A worker hello frame: one JSON line.
        if let Some(newline) = conn.buf.iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&conn.buf[..newline]).to_string();
            register_worker(daemon, conn, &line);
            return ConnVerdict::Done;
        }
    } else if !conn.buf.is_empty() {
        match http::parse_request(&conn.buf) {
            Ok(Some((request, _))) => {
                handle_request(daemon, conn, &request);
                return ConnVerdict::Done;
            }
            Ok(None) => {}
            Err(reason) => {
                respond(conn, &http::error_response(400, "Bad Request", &reason));
                return ConnVerdict::Done;
            }
        }
    }

    if eof || conn.since.elapsed() > CONN_IDLE_LIMIT {
        conn.stream.shutdown(Shutdown::Both).ok();
        return ConnVerdict::Done;
    }
    ConnVerdict::Keep
}

/// Validates a hello frame and moves the connection into the worker pool.
fn register_worker(daemon: &Arc<Daemon>, conn: &mut PendingConn, line: &str) {
    let frame = match serde_json::from_str(line) {
        Ok(frame) => frame,
        Err(e) => {
            eprintln!("ring-serve: dropping peer with malformed hello: {e}");
            conn.stream.shutdown(Shutdown::Both).ok();
            return;
        }
    };
    let event = frame.get("event").and_then(Value::as_str).unwrap_or("");
    let schema = frame.get("schema").and_then(Value::as_str).unwrap_or("");
    if event != "hello" || schema != SCHEMA {
        eprintln!(
            "ring-serve: dropping peer announcing event `{event}` schema `{schema}` \
             (expected hello/{SCHEMA})"
        );
        conn.stream.shutdown(Shutdown::Both).ok();
        return;
    }
    let name = frame
        .get("worker")
        .and_then(Value::as_str)
        .unwrap_or("worker")
        .to_string();
    if conn.stream.set_nonblocking(false).is_err() {
        conn.stream.shutdown(Shutdown::Both).ok();
        return;
    }
    eprintln!("ring-serve: worker `{name}` registered");
    daemon.pool.register(
        name,
        conn.stream.try_clone().expect("cloneable worker socket"),
    );
}

/// Writes a complete response and closes the connection.
fn respond(conn: &mut PendingConn, bytes: &[u8]) {
    conn.stream.set_nonblocking(false).ok();
    conn.stream.write_all(bytes).ok();
    conn.stream.flush().ok();
    conn.stream.shutdown(Shutdown::Both).ok();
}

/// Routes one HTTP request.
fn handle_request(daemon: &Arc<Daemon>, conn: &mut PendingConn, request: &Request) {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("GET", "/v1/healthz") => {
            let body = Value::Object(vec![
                ("schema".to_string(), Value::Str(SCHEMA.to_string())),
                ("status".to_string(), Value::Str("ok".to_string())),
            ]);
            respond(conn, &http::json_response(200, "OK", &body));
        }
        ("GET", "/v1/metrics") => {
            // The whole process registry — daemon counters, worker-pool
            // gauges, lease-wait histogram — in Prometheus text exposition,
            // scrapeable by anything that speaks the format.
            let text = ring_obs::prometheus_text(&ring_obs::global().snapshot());
            respond(
                conn,
                &http::response(200, "OK", "text/plain; version=0.0.4", text.as_bytes()),
            );
        }
        ("GET", "/v1/workers") => {
            let mut fields = vec![("schema".to_string(), Value::Str(SCHEMA.to_string()))];
            if let Value::Object(snapshot) = daemon.pool.snapshot() {
                fields.extend(snapshot);
            }
            respond(
                conn,
                &http::json_response(200, "OK", &Value::Object(fields)),
            );
        }
        ("POST", "/v1/runs") => match submit_run(daemon, &request.body) {
            Ok(body) => respond(conn, &http::json_response(202, "Accepted", &body)),
            Err(reason) => respond(conn, &http::error_response(400, "Bad Request", &reason)),
        },
        ("GET", "/v1/runs") => {
            let runs = daemon.runs.lock().expect("run table");
            let list: Vec<Value> = runs.iter().map(run_summary).collect();
            let body = Value::Object(vec![
                ("schema".to_string(), Value::Str(SCHEMA.to_string())),
                ("runs".to_string(), Value::Array(list)),
            ]);
            respond(conn, &http::json_response(200, "OK", &body));
        }
        ("POST", "/v1/shutdown") => {
            let body = Value::Object(vec![
                ("schema".to_string(), Value::Str(SCHEMA.to_string())),
                (
                    "status".to_string(),
                    Value::Str("shutting-down".to_string()),
                ),
            ]);
            respond(conn, &http::json_response(200, "OK", &body));
            daemon.shutting_down.store(true, Ordering::Release);
        }
        ("GET", _) if path.starts_with("/v1/runs/") => handle_run_path(daemon, conn, path),
        _ => respond(
            conn,
            &http::error_response(
                404,
                "Not Found",
                &format!("no route for {} {path}", request.method),
            ),
        ),
    }
}

/// `GET /v1/runs/<id>` (status + manifest), `GET /v1/runs/<id>/results`
/// (streamed JSONL) and `GET /v1/runs/<id>/metrics` (the run's aggregated
/// ring-obs/v1 snapshot plus a per-shard supervision breakdown).
fn handle_run_path(daemon: &Arc<Daemon>, conn: &mut PendingConn, path: &str) {
    let rest = &path["/v1/runs/".len()..];
    let (id_text, results, metrics) =
        match (rest.strip_suffix("/results"), rest.strip_suffix("/metrics")) {
            (Some(id_text), _) => (id_text, true, false),
            (None, Some(id_text)) => (id_text, false, true),
            (None, None) => (rest, false, false),
        };
    let Ok(id) = id_text.parse::<usize>() else {
        respond(
            conn,
            &http::error_response(404, "Not Found", &format!("bad run id `{id_text}`")),
        );
        return;
    };
    let record = {
        let runs = daemon.runs.lock().expect("run table");
        runs.iter()
            .find(|r| r.id == id)
            .map(|r| (r.dir.clone(), run_summary(r)))
    };
    let Some((dir, summary)) = record else {
        respond(
            conn,
            &http::error_response(404, "Not Found", &format!("no run {id}")),
        );
        return;
    };
    if metrics {
        respond_run_metrics(conn, id, &dir);
        return;
    }
    if results {
        conn.stream.set_nonblocking(false).ok();
        let subscriber = conn
            .stream
            .try_clone()
            .expect("cloneable subscriber socket");
        let daemon = Arc::clone(daemon);
        std::thread::spawn(move || stream_results(&daemon, id, &dir, subscriber));
        return;
    }
    let mut fields = vec![("schema".to_string(), Value::Str(SCHEMA.to_string()))];
    if let Value::Object(summary) = summary {
        fields.extend(summary);
    }
    let manifest_path = Manifest::path_in(&dir);
    match std::fs::read_to_string(&manifest_path)
        .map_err(|e| e.to_string())
        .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
    {
        Ok(manifest) => fields.push(("manifest".to_string(), manifest)),
        Err(e) => fields.push(("manifest_error".to_string(), Value::Str(e))),
    }
    respond(
        conn,
        &http::json_response(200, "OK", &Value::Object(fields)),
    );
}

/// Answers `GET /v1/runs/<id>/metrics`: the manifest's aggregated
/// ring-obs/v1 snapshot (completed shards only, each shard contributing
/// exactly its final successful attempt) plus a per-shard supervision
/// breakdown — attempts, attempt duration, watchdog kills, backoff.
fn respond_run_metrics(conn: &mut PendingConn, id: usize, dir: &std::path::Path) {
    use serde::Serialize;
    let manifest = match Manifest::load(dir) {
        Ok(manifest) => manifest,
        Err(e) => {
            respond(
                conn,
                &http::error_response(500, "Internal Server Error", &e.to_string()),
            );
            return;
        }
    };
    let shards: Vec<Value> = manifest
        .shards
        .iter()
        .map(|shard| {
            Value::Object(vec![
                ("shard".to_string(), Value::Uint(shard.shard as u64)),
                (
                    "status".to_string(),
                    Value::Str(shard.status.as_str().to_string()),
                ),
                ("attempts".to_string(), Value::Uint(shard.attempts as u64)),
                ("attempt_ms".to_string(), Value::Uint(shard.attempt_ms)),
                (
                    "watchdog_kills".to_string(),
                    Value::Uint(shard.watchdog_kills),
                ),
                ("backoff_ms".to_string(), Value::Uint(shard.backoff_ms)),
            ])
        })
        .collect();
    let body = Value::Object(vec![
        ("schema".to_string(), Value::Str(SCHEMA.to_string())),
        ("run".to_string(), Value::Uint(id as u64)),
        (
            "metrics".to_string(),
            manifest.aggregate_metrics().to_json(),
        ),
        ("shards".to_string(), Value::Array(shards)),
    ]);
    respond(conn, &http::json_response(200, "OK", &body));
}

fn run_summary(record: &RunRecord) -> Value {
    let mut fields = vec![
        ("run".to_string(), Value::Uint(record.id as u64)),
        (
            "dir".to_string(),
            Value::Str(record.dir.display().to_string()),
        ),
        (
            "status".to_string(),
            Value::Str(record.status.as_str().to_string()),
        ),
    ];
    if let Some(error) = &record.error {
        fields.push(("error".to_string(), Value::Str(error.clone())));
    }
    Value::Object(fields)
}

/// Creates and enqueues a run from a `POST /v1/runs` body: the
/// [`SpecParams`] fields plus optional `"shards"` (default: one per idle
/// worker) and boolean `"structure_store"` (default off; the store lives
/// inside the run directory).
fn submit_run(daemon: &Arc<Daemon>, body: &[u8]) -> Result<Value, String> {
    if daemon.shutting_down.load(Ordering::Acquire) {
        return Err("the daemon is shutting down".into());
    }
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = serde_json::from_str(text).map_err(|e| format!("malformed JSON body: {e}"))?;
    let spec = SpecParams::from_json(&value)?;
    let resolved = (daemon.config.resolver)(&spec)?;
    if resolved.total_cases == 0 {
        return Err("the spec enumerates no cases".into());
    }
    // An explicit count above the case total is honored — the plan just
    // contains empty shards, exactly as `ringlab sweep --shards M` would;
    // only the idle-worker default is clamped to something useful.
    let shards = match value.get("shards").map(|v| v.as_u64()) {
        Some(Some(n)) if n >= 1 => n as usize,
        Some(_) => return Err("`shards` must be a positive integer".into()),
        None => daemon.pool.idle_count().max(1).min(resolved.total_cases),
    };
    let use_store = match value.get("structure_store") {
        None => false,
        Some(v) => v.as_bool().ok_or("`structure_store` must be a boolean")?,
    };

    let (id, dir) = {
        let mut runs = daemon.runs.lock().expect("run table");
        let id = runs.last().map_or(1, |r| r.id + 1);
        let dir = daemon
            .config
            .data_dir
            .join("runs")
            .join(format!("run-{id:04}"));
        runs.push(RunRecord {
            id,
            dir: dir.clone(),
            status: RunStatus::Queued,
            error: None,
        });
        (id, dir)
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let output = dir.join("merged.jsonl").display().to_string();
    let mut manifest = Manifest::new(
        spec,
        resolved.fingerprint,
        resolved.total_cases,
        &plan_shards(resolved.total_cases, shards),
        daemon.config.jobs_per_worker,
        output,
    )
    .with_shard_timeout(daemon.config.shard_timeout.map(|t| t.as_secs().max(1)));
    if use_store {
        manifest = manifest.with_structure_store(dir.join("structures").display().to_string());
    }
    manifest
        .save_in(&dir)
        .map_err(|e| format!("cannot write the run manifest: {e}"))?;

    daemon.queue.lock().expect("run queue").push_back(id);
    daemon.queue_signal.notify_one();
    ring_obs::global().counter("serve_runs_submitted").inc();
    eprintln!(
        "ring-serve: run {id} queued ({} cases, {shards} shards, dir {})",
        resolved.total_cases,
        dir.display()
    );
    Ok(Value::Object(vec![
        ("schema".to_string(), Value::Str(SCHEMA.to_string())),
        ("run".to_string(), Value::Uint(id as u64)),
        ("status".to_string(), Value::Str("queued".to_string())),
        ("dir".to_string(), Value::Str(dir.display().to_string())),
        (
            "total_cases".to_string(),
            Value::Uint(resolved.total_cases as u64),
        ),
        ("shards".to_string(), Value::Uint(shards as u64)),
    ]))
}

/// The scheduler: executes queued runs one at a time until shutdown.
fn scheduler_loop(daemon: &Arc<Daemon>) {
    loop {
        let run_id = {
            let mut queue = daemon.queue.lock().expect("run queue");
            loop {
                if daemon.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                queue = daemon
                    .queue_signal
                    .wait_timeout(queue, Duration::from_millis(200))
                    .expect("run queue")
                    .0;
            }
        };
        set_run_status(daemon, run_id, RunStatus::Running, None);
        eprintln!("ring-serve: run {run_id} started");
        match execute_run(daemon, run_id) {
            Ok(()) => {
                set_run_status(daemon, run_id, RunStatus::Complete, None);
                ring_obs::global().counter("serve_runs_completed").inc();
                eprintln!("ring-serve: run {run_id} complete");
            }
            Err(reason) => {
                eprintln!("ring-serve: run {run_id} failed: {reason}");
                set_run_status(daemon, run_id, RunStatus::Failed, Some(reason));
                ring_obs::global().counter("serve_runs_failed").inc();
            }
        }
    }
}

fn set_run_status(daemon: &Arc<Daemon>, id: usize, status: RunStatus, error: Option<String>) {
    let mut runs = daemon.runs.lock().expect("run table");
    if let Some(record) = runs.iter_mut().find(|r| r.id == id) {
        record.status = status;
        record.error = error;
    }
}

/// Dispatches one run's shards over the worker pool and merges the result.
fn execute_run(daemon: &Arc<Daemon>, run_id: usize) -> Result<(), String> {
    let dir = {
        let runs = daemon.runs.lock().expect("run table");
        runs.iter()
            .find(|r| r.id == run_id)
            .map(|r| r.dir.clone())
            .ok_or("run vanished from the table")?
    };
    let manifest = Manifest::load(&dir)?;
    let spec = manifest.spec.clone();
    let jobs_per_worker = manifest.jobs_per_worker;
    let shard_count = manifest.shards.len();
    let structure_store = manifest.structure_store.clone();
    let total_cases = manifest.total_cases;
    let output = manifest.output.clone();
    let recorded_timeout = manifest.shard_timeout.map(Duration::from_secs);

    let options = OrchestratorOptions {
        // Shard-level parallelism tracks the fleet present at launch;
        // `run_pending_shards_with` clamps to the shard count.
        concurrency: daemon.pool.idle_count().max(1),
        retries: daemon.config.retries,
        shard_timeout: recorded_timeout,
    };
    let transport = TcpWorkerTransport::new(
        Arc::clone(&daemon.pool),
        Box::new(move |range| {
            spec.worker_args(jobs_per_worker, range, shard_count, &structure_store)
        }),
        daemon.config.lease_timeout,
    );
    let manifest = Mutex::new(manifest);
    let outcome = run_pending_shards_with(&dir, &manifest, &options, &transport)
        .map_err(|e| format!("orchestration failed: {e}"))?;
    if !outcome.failed.is_empty() {
        return Err(format!(
            "{} shard(s) failed: {:?}; the run directory is resumable with \
             `ringlab resume {}`",
            outcome.failed.len(),
            outcome.failed,
            dir.display()
        ));
    }

    let manifest = manifest.into_inner().expect("manifest lock");
    let inputs = manifest.shard_files(&dir);
    let tmp = dir.join("merged.jsonl.tmp");
    let file =
        std::fs::File::create(&tmp).map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
    let mut out = std::io::BufWriter::new(file);
    merge_shards(&inputs, &mut out, Some(total_cases)).map_err(|e| format!("merge failed: {e}"))?;
    out.flush()
        .map_err(|e| format!("cannot flush the merge: {e}"))?;
    drop(out);
    std::fs::rename(&tmp, &output)
        .map_err(|e| format!("cannot move {} into place: {e}", output))?;
    Ok(())
}

/// Streams a run's JSONL to one subscriber: the complete prefix of shards,
/// concatenated in shard order, extended as further shards land. For the
/// contiguous shard plan this is exactly the merge order, so a subscriber
/// that reads to EOF on a completed run holds bytes identical to
/// `merged.jsonl` (and to the single-process sweep).
fn stream_results(daemon: &Arc<Daemon>, run_id: usize, dir: &std::path::Path, mut out: TcpStream) {
    if out.write_all(&http::stream_head()).is_err() {
        return;
    }
    let mut next_shard = 0usize;
    while let Ok(manifest) = Manifest::load(dir) {
        while next_shard < manifest.shards.len()
            && manifest.shards[next_shard].status == ShardStatus::Complete
        {
            let path = dir.join(ring_distrib::shard_file_name(next_shard));
            let streamed =
                std::fs::File::open(&path).and_then(|mut file| std::io::copy(&mut file, &mut out));
            if streamed.is_err() {
                out.shutdown(Shutdown::Both).ok();
                return;
            }
            next_shard += 1;
        }
        if next_shard == manifest.shards.len() {
            break;
        }
        // A `complete` run status only appears after the manifest's last
        // `mark_complete` checkpoint, so the next reload drains the tail;
        // only a failed run or a draining daemon ends the stream short
        // (the status endpoint tells the subscriber why).
        let stalled = {
            let runs = daemon.runs.lock().expect("run table");
            runs.iter()
                .find(|r| r.id == run_id)
                .map(|r| r.status == RunStatus::Failed)
                .unwrap_or(true)
                || daemon.shutting_down.load(Ordering::Acquire)
        };
        if stalled {
            break;
        }
        std::thread::sleep(SUBSCRIBE_POLL);
    }
    out.flush().ok();
    out.shutdown(Shutdown::Both).ok();
}
