//! The registered-worker pool and the TCP shard transport.
//!
//! Remote workers (`ringlab worker --connect ADDR`) dial the daemon, send
//! one `ring-serve/v1` hello frame and then wait for job frames. The pool
//! holds each registered connection while the worker is idle; the
//! orchestrator — unchanged from the child-process path — drives shards
//! through [`TcpWorkerTransport`], which leases a connection per attempt,
//! sends the job frame (the exact `ringlab worker …` argv the
//! child-process dispatcher would have spawned) and hands the socket to
//! the orchestrator as the attempt's protocol stream. The worker answers
//! with verbatim `ring-distrib/v1` lines, so stream validation, checksums,
//! retries and the watchdog all work exactly as they do over stdio: a
//! worker disconnect is a broken stream, which is a retryable shard
//! failure.

use ring_distrib::{ShardAttempt, ShardRange, WorkerTransport};
use serde::Value;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One registered worker connection, held by the pool while idle.
pub struct WorkerConn {
    /// The name the worker announced in its hello frame.
    pub name: String,
    /// The registered connection, in blocking mode.
    pub stream: TcpStream,
}

#[derive(Default)]
struct PoolState {
    idle: Vec<WorkerConn>,
    busy: Vec<String>,
    registered: u64,
    shutting_down: bool,
}

impl PoolState {
    /// Publishes the pool's occupancy to the metrics registry after every
    /// state change: currently connected (idle + leased), leased and idle
    /// worker counts — the `/v1/metrics` worker-pool gauges.
    fn publish_gauges(&self) {
        let obs = ring_obs::global();
        obs.gauge("serve_workers_idle").set(self.idle.len() as i64);
        obs.gauge("serve_workers_leased")
            .set(self.busy.len() as i64);
        obs.gauge("serve_workers_registered")
            .set((self.idle.len() + self.busy.len()) as i64);
    }
}

/// The set of registered remote workers.
///
/// `register` adds a connection (the daemon's accept loop, after the hello
/// frame); `lease` blocks until an idle connection is available and moves
/// it to busy; a leased connection either comes back via `give_back`
/// (clean shard) or is dropped via `discard` (failed attempt — the worker
/// reconnects and re-registers on its own).
#[derive(Default)]
pub struct WorkerPool {
    state: Mutex<PoolState>,
    available: Condvar,
}

impl WorkerPool {
    /// An empty pool.
    pub fn new() -> Self {
        WorkerPool::default()
    }

    /// Adds a registered worker connection to the idle set.
    pub fn register(&self, name: String, stream: TcpStream) {
        let mut state = self.state.lock().expect("pool state");
        state.registered += 1;
        state.idle.push(WorkerConn { name, stream });
        state.publish_gauges();
        drop(state);
        self.available.notify_one();
    }

    /// Leases an idle worker, waiting up to `timeout` for one to appear.
    /// Returns `None` on timeout (or pool shutdown).
    pub fn lease(&self, timeout: Duration) -> Option<WorkerConn> {
        let wait_started = Instant::now();
        let deadline = wait_started + timeout;
        let mut state = self.state.lock().expect("pool state");
        loop {
            if let Some(conn) = state.idle.pop() {
                state.busy.push(conn.name.clone());
                state.publish_gauges();
                ring_obs::global()
                    .histogram("serve_lease_wait_ns")
                    .record_duration(wait_started.elapsed());
                return Some(conn);
            }
            if state.shutting_down {
                return None;
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let (next, wait) = self
                .available
                .wait_timeout(state, left)
                .expect("pool state");
            state = next;
            if wait.timed_out() && state.idle.is_empty() {
                return None;
            }
        }
    }

    /// Returns a leased connection to the idle set.
    pub fn give_back(&self, conn: WorkerConn) {
        let mut state = self.state.lock().expect("pool state");
        if let Some(at) = state.busy.iter().position(|n| n == &conn.name) {
            state.busy.swap_remove(at);
        }
        if state.shutting_down {
            // The pool is draining: dismiss the worker instead of parking
            // the connection.
            state.publish_gauges();
            send_frame(&conn.stream, &shutdown_frame()).ok();
            conn.stream.shutdown(Shutdown::Both).ok();
            return;
        }
        state.idle.push(conn);
        state.publish_gauges();
        drop(state);
        self.available.notify_one();
    }

    /// Drops a leased connection after a failed attempt (the caller has
    /// already closed or poisoned the socket).
    pub fn discard(&self, name: &str) {
        let mut state = self.state.lock().expect("pool state");
        if let Some(at) = state.busy.iter().position(|n| n == name) {
            state.busy.swap_remove(at);
        }
        state.publish_gauges();
    }

    /// Number of currently idle workers.
    pub fn idle_count(&self) -> usize {
        self.state.lock().expect("pool state").idle.len()
    }

    /// The `GET /v1/workers` view: idle and busy workers by name, plus the
    /// lifetime registration count.
    pub fn snapshot(&self) -> Value {
        let state = self.state.lock().expect("pool state");
        let entry = |name: &str, worker_state: &str| {
            Value::Object(vec![
                ("name".to_string(), Value::Str(name.to_string())),
                ("state".to_string(), Value::Str(worker_state.to_string())),
            ])
        };
        let mut workers: Vec<Value> = state.idle.iter().map(|c| entry(&c.name, "idle")).collect();
        workers.extend(state.busy.iter().map(|n| entry(n, "busy")));
        Value::Object(vec![
            ("workers".to_string(), Value::Array(workers)),
            ("registered".to_string(), Value::Uint(state.registered)),
        ])
    }

    /// Drains the pool: every idle worker receives a shutdown frame (so
    /// `ringlab worker --connect` exits cleanly), later `give_back`s
    /// dismiss their worker the same way, and pending `lease` calls
    /// return `None`.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().expect("pool state");
        state.shutting_down = true;
        for conn in state.idle.drain(..) {
            send_frame(&conn.stream, &shutdown_frame()).ok();
            conn.stream.shutdown(Shutdown::Both).ok();
        }
        state.publish_gauges();
        drop(state);
        self.available.notify_all();
    }
}

/// Builds the daemon→worker job frame carrying a `ringlab` argv.
pub fn job_frame(argv: &[String]) -> Value {
    Value::Object(vec![
        ("event".to_string(), Value::Str("job".to_string())),
        (
            "argv".to_string(),
            Value::Array(argv.iter().map(|a| Value::Str(a.clone())).collect()),
        ),
    ])
}

/// Builds the daemon→worker shutdown frame.
pub fn shutdown_frame() -> Value {
    Value::Object(vec![(
        "event".to_string(),
        Value::Str("shutdown".to_string()),
    )])
}

/// Writes one newline-terminated JSON frame to a worker connection.
///
/// # Errors
///
/// Propagates socket errors (a vanished worker).
pub fn send_frame(mut stream: &TcpStream, frame: &Value) -> std::io::Result<()> {
    let line = serde_json::to_string(frame).expect("serializable frame") + "\n";
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// Builds the `ringlab` argv a worker executes for a shard range (see
/// [`ring_distrib::SpecParams::worker_args`]).
pub type ArgvFor = Box<dyn Fn(&ShardRange) -> Vec<String> + Send + Sync>;

/// The orchestrator transport over the worker pool: one leased connection
/// per shard attempt.
pub struct TcpWorkerTransport {
    pool: Arc<WorkerPool>,
    argv_for: ArgvFor,
    lease_timeout: Duration,
}

impl TcpWorkerTransport {
    /// A transport leasing workers from `pool`; `argv_for` builds the
    /// `ringlab` argv a worker executes for a shard range.
    pub fn new(pool: Arc<WorkerPool>, argv_for: ArgvFor, lease_timeout: Duration) -> Self {
        TcpWorkerTransport {
            pool,
            argv_for,
            lease_timeout,
        }
    }
}

impl WorkerTransport for TcpWorkerTransport {
    fn launch(&self, range: &ShardRange) -> Result<Box<dyn ShardAttempt>, String> {
        let conn = self.pool.lease(self.lease_timeout).ok_or(
            "no idle worker became available within the lease timeout \
             (is a `ringlab worker --connect` fleet registered?)",
        )?;
        let argv = (self.argv_for)(range);
        if let Err(e) = send_frame(&conn.stream, &job_frame(&argv)) {
            // A dead parked connection: drop it and report a retryable
            // launch failure; the retry will lease a live worker.
            self.pool.discard(&conn.name);
            conn.stream.shutdown(Shutdown::Both).ok();
            return Err(format!(
                "worker `{}` rejected the job frame: {e}",
                conn.name
            ));
        }
        Ok(Box::new(TcpAttempt {
            pool: Arc::clone(&self.pool),
            conn: Some(conn),
        }))
    }
}

/// One in-flight TCP shard attempt: the stream is the leased socket,
/// aborting shuts the socket down (the worker notices and reconnects),
/// reaping returns a healthy connection to the pool.
struct TcpAttempt {
    pool: Arc<WorkerPool>,
    conn: Option<WorkerConn>,
}

impl ShardAttempt for TcpAttempt {
    fn take_stream(&mut self) -> Box<dyn std::io::Read + Send> {
        let stream = &self.conn.as_ref().expect("leased connection").stream;
        Box::new(stream.try_clone().expect("cloneable worker socket"))
    }

    fn abort_handle(&self) -> Box<dyn Fn() + Send> {
        let stream = self
            .conn
            .as_ref()
            .expect("leased connection")
            .stream
            .try_clone()
            .expect("cloneable worker socket");
        Box::new(move || {
            // Shutting down unblocks the stream reader; the worker sees a
            // dead daemon socket, abandons the job and reconnects.
            stream.shutdown(Shutdown::Both).ok();
        })
    }

    fn ends_at_done(&self) -> bool {
        true
    }

    fn finish(mut self: Box<Self>, stream_ok: bool) -> Result<(), String> {
        let conn = self.conn.take().expect("leased connection");
        if stream_ok {
            self.pool.give_back(conn);
            Ok(())
        } else {
            // The stream broke (or was aborted): the connection's framing
            // state is unknown, so it cannot be reused.
            conn.stream.shutdown(Shutdown::Both).ok();
            self.pool.discard(&conn.name);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn lease_and_give_back_cycle_a_worker() {
        let pool = WorkerPool::new();
        let (_held, server) = loopback_pair();
        pool.register("w0".into(), server);
        assert_eq!(pool.idle_count(), 1);

        let conn = pool.lease(Duration::from_millis(100)).unwrap();
        assert_eq!(conn.name, "w0");
        assert_eq!(pool.idle_count(), 0);
        // Nothing idle: a second lease times out.
        assert!(pool.lease(Duration::from_millis(50)).is_none());

        pool.give_back(conn);
        assert_eq!(pool.idle_count(), 1);
        assert!(pool.lease(Duration::from_millis(50)).is_some());
    }

    #[test]
    fn lease_wakes_up_when_a_worker_registers() {
        let pool = Arc::new(WorkerPool::new());
        let waiter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.lease(Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(50));
        let (_held, server) = loopback_pair();
        pool.register("late".into(), server);
        let conn = waiter.join().unwrap().unwrap();
        assert_eq!(conn.name, "late");
    }

    #[test]
    fn shutdown_sends_the_dismissal_frame() {
        use std::io::{BufRead, BufReader};
        let pool = WorkerPool::new();
        let (client, server) = loopback_pair();
        pool.register("w0".into(), server);
        pool.shutdown();
        let mut line = String::new();
        BufReader::new(client).read_line(&mut line).unwrap();
        let frame = serde_json::from_str(&line).unwrap();
        assert_eq!(
            frame.get("event").and_then(|v| v.as_str()),
            Some("shutdown")
        );
        // Draining pools refuse further leases instead of blocking.
        assert!(pool.lease(Duration::from_secs(5)).is_none());
    }

    #[test]
    fn frames_have_the_documented_shape() {
        let job = job_frame(&["worker".into(), "sweep".into()]);
        let text = serde_json::to_string(&job).unwrap();
        assert_eq!(text, "{\"event\":\"job\",\"argv\":[\"worker\",\"sweep\"]}");
        assert_eq!(
            serde_json::to_string(&shutdown_frame()).unwrap(),
            "{\"event\":\"shutdown\"}"
        );
    }
}
