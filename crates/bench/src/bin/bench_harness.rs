//! Sweep-throughput trajectory of the `ring-harness` scenario engine and
//! the `ring-distrib` multi-process layer.
//!
//! Times the same distinguisher-heavy sweep seven ways and writes the
//! results to `BENCH_harness.json` (committed; its git history is the
//! trajectory, like `BENCH_combinat.json`):
//!
//! 1. **`serial_fresh`** — one case at a time, every case constructing its
//!    combinatorial structures from scratch: the behaviour of the seven
//!    pre-harness single-threaded binaries.
//! 2. **`serial_cached`** — one case at a time through the engine's shared
//!    [`StructureCache`], isolating the caching win.
//! 3. **`parallel_cached`** — the full engine: work-stealing workers (at
//!    least four) sharing the cache, which is what `ringlab` runs. Timed
//!    after a warm-up pass, so the structure cache is hot.
//! 4. **`sharded_cold`** — the distributed layer from a standing start:
//!    the orchestrator spawns worker *processes* (this binary re-invoked
//!    in `--worker-shard` mode), validates their protocol streams, writes
//!    shard files and checkpoints the manifest. Includes process spawn and
//!    per-process structure construction — the honest cost of the first
//!    pass on a fresh fleet.
//! 5. **`sharded_cached`** — the distributed layer's steady state: the run
//!    directory already holds complete shard files, so a pass is checksum
//!    revalidation plus the deterministic k-way merge (what `resume` and
//!    `merge` do when nothing crashed). This is the multi-process
//!    analogue of `parallel_cached`'s warm cache and must beat it for the
//!    sharded mode to be worth its overhead on repeated/append-style
//!    sweeps. A **`sim_faulty`** entry additionally tracks the
//!    event-driven reference executor over a faulty sweep (lossy links
//!    plus a crashing station) — the regime where per-round buffer reuse
//!    in `ring-sim` matters.
//! 6. **`sharded_store_cold`** — the orchestrated pass with the two-tier
//!    structure store enabled against an *empty* store directory: workers
//!    construct each structure once per fleet (claim discipline), publish,
//!    and pay the encoding/IO cost. The honest first pass of a
//!    store-backed fleet.
//! 7. **`sharded_store_warm`** — the same orchestrated pass (fresh run
//!    dir, every case re-measured) against the *populated* store: workers
//!    load every structure instead of constructing. This is the number the
//!    store exists for, and it must beat `sharded_cold` — the
//!    `store_vs_cold` field tracks the ratio.
//!
//! An **`obs_traced`** entry re-times the warm engine pass with span
//! tracing enabled; its ratio against `parallel_cached` is the committed
//! `obs_overhead` — the cost of `--trace`, which must stay near 1.0. A
//! **`batched_cached`** entry re-times the same warm pass with same-shape
//! case batching on (`--batch 16`); its ratio against `parallel_cached`
//! is the committed `batched_vs_parallel`, which must not fall below 1.0.
//!
//! The report carries a `hardware` block (core count, architecture,
//! detected SIMD features) so the committed trajectory records *where* it
//! was measured — and the run warns when the parallel entries oversubscribe
//! the box (`parallel_jobs > available_jobs`), in which case they measure
//! scheduling overhead rather than thread scaling.
//!
//! The bench sweep is the distinguisher-scaling study at large `N`
//! (`N = 2¹⁷`) with measurement repetitions, so structure construction
//! dominates — exactly the regime the cache exists for (a fresh
//! `SelectiveFamily` at `N = 2¹⁷` costs ~0.8 s, its measurement ~50 ms).
//! The reported `speedup` is `parallel_cached` vs `serial_fresh`
//! throughput. On a single-core container the win is the cache's; on
//! multi-core hardware thread scaling compounds it. The report also
//! records the structure-cache hit rate of one engine pass over the
//! **standard** table sweep as a cache-health indicator.
//!
//! Run with `cargo run --release -p ring-bench --bin bench_harness`
//! (optionally `-- --quick` for a CI smoke pass, `-- --out <path>` to
//! redirect the report, `-- --jobs-sweep` to additionally time the engine
//! pass at a ladder of worker-thread counts — the committed scaling
//! curve).

use ring_distrib::{
    fail_after_from_env, merge_shards, plan_shards, run_pending_shards, DoneEvent, Manifest,
    OrchestratorOptions, ShardTally, SpecParams, StartEvent,
};
use ring_experiments::distinguisher_scaling::ScalingSpec;
use ring_experiments::{FaultAxes, SweepSpec};
use ring_harness::scenario::{faults_items, scaling_items, table1_items, table2_items, WorkItem};
use ring_harness::sink::JsonlSink;
use ring_harness::{available_jobs, StructureCache, StructureStore, SweepEngine};
use ring_protocols::structures::fresh_structures;
use serde::Serialize;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Clone, Debug, Serialize)]
struct Entry {
    name: String,
    cases: usize,
    jobs: usize,
    elapsed_ms: f64,
    cases_per_sec: f64,
}

#[derive(Clone, Debug, Serialize)]
struct CacheSection {
    hits: u64,
    misses: u64,
    hit_rate: f64,
    structures: usize,
}

/// Provenance of the numbers: what the box running the bench looked like.
/// Committed with the report so a diff in the trajectory can be told apart
/// from a diff in the hardware (the `available_jobs: 1` vs
/// `parallel_jobs: 4` containers this bench has run on produce very
/// different curves).
#[derive(Clone, Debug, Serialize)]
struct Hardware {
    /// `std::thread::available_parallelism` at bench time.
    available_jobs: usize,
    /// Compile-target architecture (`std::env::consts::ARCH`).
    arch: String,
    /// Runtime-detected SIMD/popcount features relevant to the chunked
    /// kernels; empty on non-x86 targets.
    features: Vec<String>,
}

fn detect_hardware() -> Hardware {
    #[allow(unused_mut)]
    let mut features: Vec<String> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for name in ["popcnt", "avx2", "bmi2", "avx512f"] {
            let detected = match name {
                "popcnt" => std::arch::is_x86_feature_detected!("popcnt"),
                "avx2" => std::arch::is_x86_feature_detected!("avx2"),
                "bmi2" => std::arch::is_x86_feature_detected!("bmi2"),
                "avx512f" => std::arch::is_x86_feature_detected!("avx512f"),
                _ => false,
            };
            if detected {
                features.push(name.to_string());
            }
        }
    }
    Hardware {
        available_jobs: available_jobs(),
        arch: std::env::consts::ARCH.to_string(),
        features,
    }
}

#[derive(Clone, Debug, Serialize)]
struct Report {
    schema: String,
    mode: String,
    available_jobs: usize,
    parallel_jobs: usize,
    /// The box the numbers came from: core count, architecture, detected
    /// SIMD features.
    hardware: Hardware,
    entries: Vec<Entry>,
    /// `parallel_cached` vs `serial_fresh` throughput on the bench sweep.
    speedup: f64,
    /// `batched_cached` vs `parallel_cached` throughput: what `--batch`
    /// same-shape scheduling buys (or costs) on the warm engine pass at
    /// the same worker count. Must not fall below 1.0.
    batched_vs_parallel: f64,
    /// `sharded_cached` vs `parallel_cached` throughput (the steady-state
    /// multi-process pass against the warm single-process engine).
    sharded_vs_parallel: f64,
    /// `obs_traced` vs `parallel_cached` elapsed time: the span-tracing
    /// tax on a warm engine pass (metrics counters are always on; this
    /// isolates the sidecar writes). Must stay near 1.0.
    obs_overhead: f64,
    /// `sharded_store_warm` vs `sharded_cold` throughput: what a populated
    /// structure store buys a fleet that re-runs (or extends) a sweep,
    /// against rebuilding every structure per process.
    store_vs_cold: f64,
    /// On-disk bytes of the v2 store after the K = 4 seed-diverse pass.
    seeded_store_bytes: u64,
    /// What the v1 one-file-per-seed layout would hold for the same keys
    /// (one full per-seed strong file each). The content-addressed layout
    /// must stay strictly below this.
    seeded_v1_equivalent_bytes: u64,
    /// `seeded_v1_equivalent_bytes / seeded_store_bytes` — how much the
    /// shared universal strong blobs save under seed diversity.
    seeded_dedup: f64,
    /// `--jobs-sweep`: the engine pass timed at a ladder of worker-thread
    /// counts (1, 2, 4, 8), warm cache — the executor's scaling curve.
    /// Empty when the flag is not passed.
    jobs_sweep: Vec<Entry>,
    /// Cache counters accumulated by the `parallel_cached` bench run.
    bench_sweep_cache: CacheSection,
    /// Cache counters of one engine pass over the standard sweep.
    standard_sweep_cache: CacheSection,
}

/// One warm-up pass (allocator and — where the mode uses one — structure
/// cache reach steady state, as in `bench_combinat`'s `time_median`), then
/// the median of three timed passes — single passes on a shared/1-core
/// container swing by ±25%, which would drown the ratios the report
/// commits (`batched_vs_parallel`, `obs_overhead`).
fn time_run(items: &[WorkItem], mut run: impl FnMut(&[WorkItem])) -> f64 {
    run(items);
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            run(items);
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn cache_section(cache: &StructureCache) -> CacheSection {
    let stats = cache.stats();
    CacheSection {
        hits: stats.hits,
        misses: stats.misses,
        hit_rate: stats.hit_rate(),
        structures: cache.len(),
    }
}

/// The bench sweep configuration: a construction-dominated sweep — the
/// scaling study at large N, with measurement repetitions. Every
/// repetition requests the same (kind, N, n, seed) structures — the
/// pattern every repeated sweep exhibits — so `serial_fresh` reconstructs
/// the dominant structures per case while the engine constructs each once.
fn bench_config(quick: bool) -> (ScalingSpec, usize) {
    if quick {
        (
            ScalingSpec {
                universe: 1 << 14,
                sizes: vec![16, 32],
                seed: 2015,
            },
            2usize,
        )
    } else {
        (
            ScalingSpec {
                universe: 1 << 17,
                sizes: vec![32, 64],
                seed: 2015,
            },
            10usize,
        )
    }
}

fn bench_items(scaling: &ScalingSpec, reps: usize) -> Vec<WorkItem> {
    // Repetitions are consecutive per scaling point — the order every real
    // sweep enumerates (reps innermost) and the order same-shape batching
    // keys on, so `batched_cached` exercises genuine multi-case batches.
    let mut items: Vec<WorkItem> = Vec::new();
    for point in scaling_items(scaling) {
        for _ in 0..reps {
            items.push(point.clone());
        }
    }
    items
}

/// The seed-diverse bench sweep: the table pipeline over even ring sizes
/// under the per-case structure-seed schedule (K = 4) — every repetition
/// demands the strong machinery under a different schedule seed, which is
/// exactly the pattern the content-addressed store dedups to one universal
/// blob per universe.
fn seeded_spec(quick: bool) -> SweepSpec {
    SweepSpec {
        sizes: if quick { vec![8, 16] } else { vec![32, 64] },
        universe_factors: if quick { vec![64] } else { vec![2048] },
        repetitions: 4,
        seed: 2015,
        structure_seeds: Some(4),
        faults: None,
    }
}

fn seeded_items(quick: bool) -> Vec<WorkItem> {
    let spec = seeded_spec(quick);
    let mut items = table1_items(&spec);
    items.extend(table2_items(&spec));
    items
}

fn seeded_fingerprint(quick: bool) -> String {
    let h = ring_combinat::shared::splitmix64(seeded_spec(quick).fingerprint() ^ 0x5eed);
    format!("0x{h:016x}")
}

/// Fingerprint of the bench item enumeration, shared between the
/// orchestrating process and its `--worker-shard` children.
fn bench_fingerprint(quick: bool) -> String {
    let (scaling, reps) = bench_config(quick);
    let h = ring_combinat::shared::splitmix64(scaling.fingerprint() ^ reps as u64);
    format!("0x{h:016x}")
}

/// `--worker-shard i/M` mode: this binary as a ring-distrib worker over
/// the bench item list, speaking the protocol on stdout. Lets the bench
/// orchestrate real worker processes without depending on an external
/// binary path. `store_dir` (the `--structure-store` flag) points the
/// worker at the fleet's shared two-tier store.
fn worker_shard_mode(quick: bool, seeded: bool, shard: usize, of: usize, store_dir: Option<&str>) {
    let (items, fingerprint) = if seeded {
        (seeded_items(quick), seeded_fingerprint(quick))
    } else {
        let (scaling, reps) = bench_config(quick);
        (bench_items(&scaling, reps), bench_fingerprint(quick))
    };
    let range = plan_shards(items.len(), of)[shard];
    let start = StartEvent::new(shard, of, range.start, range.end, &fingerprint);
    {
        let mut out = std::io::stdout();
        writeln!(
            out,
            "{}",
            serde_json::to_string(&start).expect("serializable event")
        )
        .and_then(|()| out.flush())
        .expect("stdout");
    }
    let engine = match store_dir {
        None => SweepEngine::new(1),
        Some(dir) => SweepEngine::with_store(
            1,
            Arc::new(StructureStore::at(dir).expect("open structure store")),
        ),
    };
    let sink = JsonlSink::new(ShardTally::new(std::io::stdout(), fail_after_from_env()));
    engine.run_with_offset(&items[range.start..range.end], range.start, Some(&sink));
    let tally = sink.finish();
    let cache = engine.cache_stats();
    let store = engine.store_stats();
    let done = DoneEvent::new(
        shard,
        tally.lines() as usize,
        tally.checksum(),
        cache.hits,
        cache.misses,
        engine.exec_stats().steals,
    )
    .with_store(store.hits, store.misses);
    println!(
        "{}",
        serde_json::to_string(&done).expect("serializable event")
    );
}

/// Orchestrates one sharded pass over the bench items into `run_dir`
/// (which is wiped first), merging at the end like `ringlab --shards`.
/// With `store_dir` the workers share that two-tier structure store (the
/// directory is **not** wiped here — cold vs warm is the caller's choice).
fn run_sharded_pass(
    run_dir: &std::path::Path,
    quick: bool,
    seeded: bool,
    total: usize,
    shards: usize,
    store_dir: Option<&std::path::Path>,
) -> Manifest {
    std::fs::remove_dir_all(run_dir).ok();
    std::fs::create_dir_all(run_dir).expect("create sharded run dir");
    let manifest = Manifest::new(
        SpecParams {
            subcommand: "bench-harness".into(),
            quick,
            sizes: None,
            universe_factors: None,
            reps: None,
            seed: None,
            structure_seeds: seeded.then_some(4),
            fault_drops: None,
            fault_crashes: None,
            fault_churn: None,
            fault_adversarial: false,
        },
        if seeded {
            seeded_fingerprint(quick)
        } else {
            bench_fingerprint(quick)
        },
        total,
        &plan_shards(total, shards),
        1,
        "-".into(),
    )
    .with_structure_store(
        store_dir
            .map(|d| d.to_string_lossy().into_owned())
            .unwrap_or_default(),
    );
    let manifest = Mutex::new(manifest);
    let exe = std::env::current_exe().expect("locate bench binary");
    // One worker per core (the `ringlab --shards` default): on a single-core
    // container the fleet serializes instead of thrashing memory, on real
    // hardware it runs genuinely parallel. Worker count stays `shards`.
    let options = OrchestratorOptions {
        concurrency: shards.min(available_jobs()).max(1),
        retries: 0,
        shard_timeout: None,
    };
    let outcome = run_pending_shards(run_dir, &manifest, &options, &|range| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--worker-shard")
            .arg(format!("{}/{shards}", range.shard));
        if quick {
            cmd.arg("--quick");
        }
        if seeded {
            cmd.arg("--seeded");
        }
        if let Some(dir) = store_dir {
            cmd.arg("--structure-store").arg(dir);
        }
        cmd
    })
    .expect("orchestrate bench shards");
    assert!(
        outcome.failed.is_empty(),
        "bench workers failed: {outcome:?}"
    );
    run_sharded_cached(run_dir, total);
    manifest.into_inner().expect("manifest lock")
}

/// One steady-state pass over a completed run dir: checksum revalidation
/// plus the k-way merge (what `resume`/`merge` cost when nothing crashed).
fn run_sharded_cached(run_dir: &std::path::Path, total: usize) {
    let mut manifest = Manifest::load(run_dir).expect("load bench manifest");
    let demoted = manifest
        .revalidate_completed(run_dir)
        .expect("revalidate bench shards");
    assert!(demoted.is_empty(), "bench shards failed revalidation");
    let mut merged = Vec::new();
    let report = merge_shards(&manifest.shard_files(run_dir), &mut merged, Some(total))
        .expect("merge bench shards");
    assert_eq!(report.records, total);
    std::hint::black_box(merged);
}

/// Total bytes of every file under `dir`, recursively.
fn dir_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        for entry in std::fs::read_dir(&current).into_iter().flatten().flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                total += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(value) = args
        .iter()
        .position(|a| a == "--worker-shard")
        .and_then(|i| args.get(i + 1))
    {
        let (shard, of) = value.split_once('/').expect("--worker-shard expects i/M");
        let store_dir = args
            .iter()
            .position(|a| a == "--structure-store")
            .and_then(|i| args.get(i + 1));
        worker_shard_mode(
            quick,
            args.iter().any(|a| a == "--seeded"),
            shard.parse().expect("shard index"),
            of.parse().expect("shard count"),
            store_dir.map(String::as_str),
        );
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_harness.json".to_string());

    let (scaling, reps) = bench_config(quick);
    let items = bench_items(&scaling, reps);
    let parallel_jobs = available_jobs().max(4);

    // 1. The pre-harness behaviour: serial, structures from scratch per
    //    request.
    let serial_fresh = time_run(&items, |items| {
        let structures = fresh_structures();
        for item in items {
            std::hint::black_box(item.run(&structures));
        }
    });

    // 2. Serial through the shared cache.
    let serial_engine = SweepEngine::new(1);
    let serial_cached = time_run(&items, |items| {
        std::hint::black_box(serial_engine.run::<Vec<u8>>(items, None));
    });

    // 3. The full engine: parallel workers over the shared cache.
    let parallel_engine = SweepEngine::new(parallel_jobs);
    let parallel_cached = time_run(&items, |items| {
        std::hint::black_box(parallel_engine.run::<Vec<u8>>(items, None));
    });

    // 3a. The batched engine: the same warm parallel pass with same-shape
    //    case batching on (`--batch 16`), so consecutive repetitions of a
    //    scaling point resolve their structures once per batch instead of
    //    once per case. Output is byte-identical (pinned by the harness
    //    and distrib test suites); this entry tracks what the scheduling
    //    change buys on the construction-dominated sweep.
    let batched_engine = SweepEngine::new(parallel_jobs).with_batch_limit(16);
    let batched_cached = time_run(&items, |items| {
        std::hint::black_box(batched_engine.run::<Vec<u8>>(items, None));
    });

    // 3c. The instrumentation tax: the same warm engine pass with span
    //    tracing enabled (sidecar writes included). Metrics counters are
    //    always on, so `obs_overhead` — the ratio against the untraced
    //    parallel pass — isolates exactly what `--trace` costs, the
    //    number that justifies leaving tracing available in production.
    let trace_dir = std::env::temp_dir().join(format!("ring-bench-trace-{}", std::process::id()));
    std::fs::create_dir_all(&trace_dir).expect("create trace dir");
    ring_obs::trace::init(&trace_dir).expect("init trace sidecar");
    let obs_traced = time_run(&items, |items| {
        std::hint::black_box(parallel_engine.run::<Vec<u8>>(items, None));
    });
    ring_obs::trace::shutdown();
    std::fs::remove_dir_all(&trace_dir).ok();
    let obs_overhead = obs_traced / parallel_cached.max(1e-9);

    // 3b. `--jobs-sweep`: the executor's scaling curve — the same engine
    //    pass at a ladder of worker-thread counts, each with its own
    //    warm-up so every point times a hot cache. On a single-core
    //    container the curve is flat (the committed baseline); on real
    //    hardware it is the thread-scaling trajectory ROADMAP item 2
    //    asks for.
    let mut jobs_sweep = Vec::new();
    if args.iter().any(|a| a == "--jobs-sweep") {
        for jobs in [1usize, 2, 4, 8] {
            let engine = SweepEngine::new(jobs);
            let elapsed = time_run(&items, |items| {
                std::hint::black_box(engine.run::<Vec<u8>>(items, None));
            });
            jobs_sweep.push(Entry {
                name: "jobs_sweep".into(),
                cases: items.len(),
                jobs,
                elapsed_ms: elapsed * 1e3,
                cases_per_sec: items.len() as f64 / elapsed.max(1e-9),
            });
        }
    }

    // 4./5. The distributed layer: a cold orchestrated pass (processes
    //    spawned, structures rebuilt per process, shards merged), then the
    //    steady-state pass over the completed run directory (revalidate +
    //    merge only). Same warm-up-then-time discipline as the others.
    // Four worker processes: every one pays the full per-process
    // construction cost in the storeless fleet and a load in the warm one,
    // so the shard count is exactly the store's amortization lever (each
    // shard spans both set sizes — the bench items interleave them).
    let shard_count = 4usize;
    let run_dir = std::env::temp_dir().join(format!("ring-bench-sharded-{}", std::process::id()));
    run_sharded_pass(&run_dir, quick, false, items.len(), shard_count, None);
    let start = Instant::now();
    run_sharded_pass(&run_dir, quick, false, items.len(), shard_count, None);
    let sharded_cold = start.elapsed().as_secs_f64();
    run_sharded_cached(&run_dir, items.len());
    let start = Instant::now();
    run_sharded_cached(&run_dir, items.len());
    let sharded_cached = start.elapsed().as_secs_f64();

    // 6./7. The two-tier structure store under the same orchestration.
    //    Cold: the store directory is wiped before the pass, so the fleet
    //    constructs (once per key, claim-guarded) and publishes. Warm: the
    //    run directory is wiped but the store is kept, so every worker
    //    loads — the pass still spawns processes and re-measures every
    //    case, isolating exactly the construction cost the store removes.
    let store_dir =
        std::env::temp_dir().join(format!("ring-bench-structstore-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    run_sharded_pass(
        &run_dir,
        quick,
        false,
        items.len(),
        shard_count,
        Some(&store_dir),
    );
    std::fs::remove_dir_all(&store_dir).ok();
    let start = Instant::now();
    run_sharded_pass(
        &run_dir,
        quick,
        false,
        items.len(),
        shard_count,
        Some(&store_dir),
    );
    let sharded_store_cold = start.elapsed().as_secs_f64();
    // The store is now populated: warm passes load instead of construct.
    run_sharded_pass(
        &run_dir,
        quick,
        false,
        items.len(),
        shard_count,
        Some(&store_dir),
    );
    let start = Instant::now();
    run_sharded_pass(
        &run_dir,
        quick,
        false,
        items.len(),
        shard_count,
        Some(&store_dir),
    );
    let sharded_store_warm = start.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&store_dir).ok();

    // 8. The K = 4 seed-diverse sweep against a content-addressed store.
    //    The store is prebuilt (full strong prefixes per schedule seed, one
    //    shared universal blob per universe), then the orchestrated warm
    //    pass is timed — and the resulting on-disk bytes are pinned against
    //    the v1 one-file-per-seed layout the same keys would have produced.
    let seeded = seeded_items(quick);
    let seeded_store_dir =
        std::env::temp_dir().join(format!("ring-bench-seededstore-{}", std::process::id()));
    std::fs::remove_dir_all(&seeded_store_dir).ok();
    let mut seeded_keys: Vec<(ring_combinat::StructureKey, usize)> = Vec::new();
    for item in &seeded {
        for (key, hint) in item.structure_keys() {
            match seeded_keys.iter_mut().find(|(k, _)| *k == key) {
                Some((_, existing)) => *existing = (*existing).max(hint),
                None => seeded_keys.push((key, hint)),
            }
        }
    }
    {
        use ring_protocols::structures::StructureProvider;
        let store = StructureStore::at(&seeded_store_dir).expect("open seeded store");
        for (key, hint) in &seeded_keys {
            let strong = store.strong_distinguisher(key.universe, key.seed);
            for i in 0..strong.prefix_size_for((*hint).max(2)) {
                strong.set(i);
            }
        }
        store.flush().expect("flush seeded store");
    }
    run_sharded_pass(
        &run_dir,
        quick,
        true,
        seeded.len(),
        shard_count,
        Some(&seeded_store_dir),
    );
    let start = Instant::now();
    let seeded_manifest = run_sharded_pass(
        &run_dir,
        quick,
        true,
        seeded.len(),
        shard_count,
        Some(&seeded_store_dir),
    );
    let sharded_store_warm_seeded = start.elapsed().as_secs_f64();
    assert_eq!(
        seeded_manifest.aggregate_stats().store_misses,
        0,
        "the prebuilt seeded store must serve every schedule seed"
    );
    // 9. The fault-injection layer: faulty cases promote the engine to the
    //    event-driven reference executor (per-round buffers reused through
    //    its scratch), so this entry tracks the event path's throughput
    //    under a lossy, crashing schedule — the trajectory baseline for
    //    any future event-engine allocation work.
    let faulty_spec = SweepSpec {
        sizes: vec![8, 9],
        universe_factors: vec![4],
        repetitions: if quick { 1 } else { 2 },
        seed: 2015,
        structure_seeds: None,
        faults: Some(FaultAxes {
            drops: vec![0, 100],
            crashes: 1,
            churn: 0,
            adversarial: false,
        }),
    };
    let faulty = faults_items(&faulty_spec);
    let faulty_engine = SweepEngine::new(1);
    let sim_faulty = time_run(&faulty, |items| {
        std::hint::black_box(faulty_engine.run::<Vec<u8>>(items, None));
    });

    let seeded_store_bytes = dir_bytes(&seeded_store_dir);
    // The v1 layout: one full file per logical strong key (K per universe).
    let seeded_v1_equivalent_bytes: u64 = seeded_keys
        .iter()
        .map(|(key, hint)| {
            let prefix = ring_combinat::SharedStrongDistinguisher::new(key.universe, key.seed)
                .prefix_size_for((*hint).max(2));
            ring_combinat::codec::encoded_len(key.universe, prefix) as u64
        })
        .sum();
    std::fs::remove_dir_all(&seeded_store_dir).ok();
    std::fs::remove_dir_all(&run_dir).ok();

    let throughput = |elapsed: f64| items.len() as f64 / elapsed.max(1e-9);
    let entries = vec![
        Entry {
            name: "serial_fresh".into(),
            cases: items.len(),
            jobs: 1,
            elapsed_ms: serial_fresh * 1e3,
            cases_per_sec: throughput(serial_fresh),
        },
        Entry {
            name: "serial_cached".into(),
            cases: items.len(),
            jobs: 1,
            elapsed_ms: serial_cached * 1e3,
            cases_per_sec: throughput(serial_cached),
        },
        Entry {
            name: "parallel_cached".into(),
            cases: items.len(),
            jobs: parallel_jobs,
            elapsed_ms: parallel_cached * 1e3,
            cases_per_sec: throughput(parallel_cached),
        },
        Entry {
            name: "batched_cached".into(),
            cases: items.len(),
            jobs: parallel_jobs,
            elapsed_ms: batched_cached * 1e3,
            cases_per_sec: throughput(batched_cached),
        },
        Entry {
            name: "obs_traced".into(),
            cases: items.len(),
            jobs: parallel_jobs,
            elapsed_ms: obs_traced * 1e3,
            cases_per_sec: throughput(obs_traced),
        },
        Entry {
            name: "sharded_cold".into(),
            cases: items.len(),
            jobs: shard_count,
            elapsed_ms: sharded_cold * 1e3,
            cases_per_sec: throughput(sharded_cold),
        },
        Entry {
            name: "sharded_cached".into(),
            cases: items.len(),
            jobs: shard_count,
            elapsed_ms: sharded_cached * 1e3,
            cases_per_sec: throughput(sharded_cached),
        },
        Entry {
            name: "sharded_store_cold".into(),
            cases: items.len(),
            jobs: shard_count,
            elapsed_ms: sharded_store_cold * 1e3,
            cases_per_sec: throughput(sharded_store_cold),
        },
        Entry {
            name: "sharded_store_warm".into(),
            cases: items.len(),
            jobs: shard_count,
            elapsed_ms: sharded_store_warm * 1e3,
            cases_per_sec: throughput(sharded_store_warm),
        },
        Entry {
            name: "sharded_store_warm_seeded".into(),
            cases: seeded.len(),
            jobs: shard_count,
            elapsed_ms: sharded_store_warm_seeded * 1e3,
            cases_per_sec: seeded.len() as f64 / sharded_store_warm_seeded.max(1e-9),
        },
        Entry {
            name: "sim_faulty".into(),
            cases: faulty.len(),
            jobs: 1,
            elapsed_ms: sim_faulty * 1e3,
            cases_per_sec: faulty.len() as f64 / sim_faulty.max(1e-9),
        },
    ];
    let speedup = serial_fresh / parallel_cached.max(1e-9);
    let batched_vs_parallel = parallel_cached / batched_cached.max(1e-9);
    let sharded_vs_parallel = parallel_cached / sharded_cached.max(1e-9);
    let store_vs_cold = sharded_cold / sharded_store_warm.max(1e-9);
    let seeded_dedup = seeded_v1_equivalent_bytes as f64 / (seeded_store_bytes.max(1)) as f64;
    for entry in entries.iter().chain(&jobs_sweep) {
        println!(
            "{:<16} {:>3} cases, {:>2} jobs: {:>10.1} ms  ({:>8.2} cases/s)",
            entry.name, entry.cases, entry.jobs, entry.elapsed_ms, entry.cases_per_sec
        );
    }
    println!("sweep speedup (parallel_cached vs serial_fresh): {speedup:.1}x");
    println!("same-shape batching vs warm parallel engine: {batched_vs_parallel:.2}x");
    println!("sharded steady state vs warm parallel engine: {sharded_vs_parallel:.1}x");
    println!("span tracing tax on the warm engine pass: {obs_overhead:.2}x");
    println!("warm structure store vs storeless cold fleet: {store_vs_cold:.1}x");
    println!(
        "seed-diverse (K=4) store: {seeded_store_bytes} bytes vs {seeded_v1_equivalent_bytes} \
for one-file-per-seed v1 ({seeded_dedup:.2}x smaller)"
    );

    // Cache health on the standard sweep (the acceptance indicator: the
    // hit rate must be strictly positive).
    let standard_engine = SweepEngine::new(parallel_jobs);
    let standard_items = table1_items(&SweepSpec::standard());
    std::hint::black_box(standard_engine.run::<Vec<u8>>(&standard_items, None));
    let standard_cache = cache_section(standard_engine.cache());
    println!(
        "standard sweep cache: {} hits / {} misses ({:.0}% hit rate, {} structures)",
        standard_cache.hits,
        standard_cache.misses,
        standard_cache.hit_rate * 100.0,
        standard_cache.structures,
    );

    let report = Report {
        schema: "bench-harness/v2".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        available_jobs: available_jobs(),
        parallel_jobs,
        hardware: detect_hardware(),
        entries,
        speedup,
        batched_vs_parallel,
        sharded_vs_parallel,
        obs_overhead,
        store_vs_cold,
        seeded_store_bytes,
        seeded_v1_equivalent_bytes,
        seeded_dedup,
        jobs_sweep,
        bench_sweep_cache: cache_section(parallel_engine.cache()),
        standard_sweep_cache: standard_cache,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, json + "\n").expect("writable report path");
    println!("\nwrote {out_path}");

    if report.parallel_jobs > report.hardware.available_jobs {
        eprintln!(
            "WARNING: parallel entries ran {} workers on {} available core(s) — they \
measure scheduling overhead, not thread scaling; re-run on a multi-core box \
for the committed curve",
            report.parallel_jobs, report.hardware.available_jobs
        );
    }
    if report.speedup < 3.0 {
        eprintln!(
            "WARNING: sweep speedup {:.1}x is below the 3x acceptance floor",
            report.speedup
        );
    }
    if report.batched_vs_parallel < 1.0 {
        eprintln!(
            "WARNING: same-shape batching ({:.2}x) is slower than the plain warm \
             parallel engine",
            report.batched_vs_parallel
        );
    }
    if report.standard_sweep_cache.hit_rate <= 0.0 {
        eprintln!("WARNING: standard sweep never hit the structure cache");
    }
    if report.sharded_vs_parallel < 1.0 {
        eprintln!(
            "WARNING: steady-state sharded pass ({:.1}x) is slower than the warm \
             parallel engine",
            report.sharded_vs_parallel
        );
    }
    if report.obs_overhead > 1.5 {
        eprintln!(
            "WARNING: span tracing costs {:.2}x on the warm engine pass",
            report.obs_overhead
        );
    }
    if report.store_vs_cold < 1.0 {
        eprintln!(
            "WARNING: warm structure store ({:.1}x) is slower than the storeless \
             cold fleet",
            report.store_vs_cold
        );
    }
    if report.seeded_store_bytes >= report.seeded_v1_equivalent_bytes {
        eprintln!(
            "WARNING: the seed-diverse v2 store ({} bytes) is not smaller than K \
             independent v1 files ({} bytes)",
            report.seeded_store_bytes, report.seeded_v1_equivalent_bytes
        );
    }
}
