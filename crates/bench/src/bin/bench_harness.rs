//! Sweep-throughput trajectory of the `ring-harness` scenario engine.
//!
//! Times the same distinguisher-heavy sweep three ways and writes the
//! results to `BENCH_harness.json` (committed; its git history is the
//! trajectory, like `BENCH_combinat.json`):
//!
//! 1. **`serial_fresh`** — one case at a time, every case constructing its
//!    combinatorial structures from scratch: the behaviour of the seven
//!    pre-harness single-threaded binaries.
//! 2. **`serial_cached`** — one case at a time through the engine's shared
//!    [`StructureCache`], isolating the caching win.
//! 3. **`parallel_cached`** — the full engine: work-stealing workers (at
//!    least four) sharing the cache, which is what `ringlab` runs.
//!
//! The bench sweep is the distinguisher-scaling study at large `N`
//! (`N = 2¹⁷`) with measurement repetitions, so structure construction
//! dominates — exactly the regime the cache exists for (a fresh
//! `SelectiveFamily` at `N = 2¹⁷` costs ~0.8 s, its measurement ~50 ms).
//! The reported `speedup` is `parallel_cached` vs `serial_fresh`
//! throughput. On a single-core container the win is the cache's; on
//! multi-core hardware thread scaling compounds it. The report also
//! records the structure-cache hit rate of one engine pass over the
//! **standard** table sweep as a cache-health indicator.
//!
//! Run with `cargo run --release -p ring-bench --bin bench_harness`
//! (optionally `-- --quick` for a CI smoke pass, `-- --out <path>` to
//! redirect the report).

use ring_experiments::distinguisher_scaling::ScalingSpec;
use ring_experiments::SweepSpec;
use ring_harness::scenario::{scaling_items, table1_items, WorkItem};
use ring_harness::{available_jobs, StructureCache, SweepEngine};
use ring_protocols::structures::fresh_structures;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone, Debug, Serialize)]
struct Entry {
    name: String,
    cases: usize,
    jobs: usize,
    elapsed_ms: f64,
    cases_per_sec: f64,
}

#[derive(Clone, Debug, Serialize)]
struct CacheSection {
    hits: u64,
    misses: u64,
    hit_rate: f64,
    structures: usize,
}

#[derive(Clone, Debug, Serialize)]
struct Report {
    schema: String,
    mode: String,
    available_jobs: usize,
    parallel_jobs: usize,
    entries: Vec<Entry>,
    /// `parallel_cached` vs `serial_fresh` throughput on the bench sweep.
    speedup: f64,
    /// Cache counters accumulated by the `parallel_cached` bench run.
    bench_sweep_cache: CacheSection,
    /// Cache counters of one engine pass over the standard sweep.
    standard_sweep_cache: CacheSection,
}

/// One warm-up pass (allocator and — where the mode uses one — structure
/// cache reach steady state, as in `bench_combinat`'s `time_median`), then
/// one timed pass.
fn time_run(items: &[WorkItem], mut run: impl FnMut(&[WorkItem])) -> f64 {
    run(items);
    let start = Instant::now();
    run(items);
    start.elapsed().as_secs_f64()
}

fn cache_section(cache: &StructureCache) -> CacheSection {
    let stats = cache.stats();
    CacheSection {
        hits: stats.hits,
        misses: stats.misses,
        hit_rate: stats.hit_rate(),
        structures: cache.len(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_harness.json".to_string());

    // A construction-dominated sweep: the scaling study at large N, with
    // measurement repetitions. Every repetition requests the same
    // (kind, N, n, seed) structures — the pattern every repeated sweep
    // exhibits — so `serial_fresh` reconstructs the dominant structures
    // per case while the engine constructs each once.
    let (scaling, reps) = if quick {
        (
            ScalingSpec {
                universe: 1 << 14,
                sizes: vec![16, 32],
                seed: 2015,
            },
            2usize,
        )
    } else {
        (
            ScalingSpec {
                universe: 1 << 17,
                sizes: vec![32, 64],
                seed: 2015,
            },
            10usize,
        )
    };
    let mut items: Vec<WorkItem> = Vec::new();
    for _ in 0..reps {
        items.extend(scaling_items(&scaling));
    }
    let parallel_jobs = available_jobs().max(4);

    // 1. The pre-harness behaviour: serial, structures from scratch per
    //    request.
    let serial_fresh = time_run(&items, |items| {
        let structures = fresh_structures();
        for item in items {
            std::hint::black_box(item.run(&structures));
        }
    });

    // 2. Serial through the shared cache.
    let serial_engine = SweepEngine::new(1);
    let serial_cached = time_run(&items, |items| {
        std::hint::black_box(serial_engine.run::<Vec<u8>>(items, None));
    });

    // 3. The full engine: parallel workers over the shared cache.
    let parallel_engine = SweepEngine::new(parallel_jobs);
    let parallel_cached = time_run(&items, |items| {
        std::hint::black_box(parallel_engine.run::<Vec<u8>>(items, None));
    });

    let throughput = |elapsed: f64| items.len() as f64 / elapsed.max(1e-9);
    let entries = vec![
        Entry {
            name: "serial_fresh".into(),
            cases: items.len(),
            jobs: 1,
            elapsed_ms: serial_fresh * 1e3,
            cases_per_sec: throughput(serial_fresh),
        },
        Entry {
            name: "serial_cached".into(),
            cases: items.len(),
            jobs: 1,
            elapsed_ms: serial_cached * 1e3,
            cases_per_sec: throughput(serial_cached),
        },
        Entry {
            name: "parallel_cached".into(),
            cases: items.len(),
            jobs: parallel_jobs,
            elapsed_ms: parallel_cached * 1e3,
            cases_per_sec: throughput(parallel_cached),
        },
    ];
    let speedup = serial_fresh / parallel_cached.max(1e-9);
    for entry in &entries {
        println!(
            "{:<16} {:>3} cases, {:>2} jobs: {:>10.1} ms  ({:>8.2} cases/s)",
            entry.name, entry.cases, entry.jobs, entry.elapsed_ms, entry.cases_per_sec
        );
    }
    println!("sweep speedup (parallel_cached vs serial_fresh): {speedup:.1}x");

    // Cache health on the standard sweep (the acceptance indicator: the
    // hit rate must be strictly positive).
    let standard_engine = SweepEngine::new(parallel_jobs);
    let standard_items = table1_items(&SweepSpec::standard());
    std::hint::black_box(standard_engine.run::<Vec<u8>>(&standard_items, None));
    let standard_cache = cache_section(Arc::as_ref(standard_engine.cache()));
    println!(
        "standard sweep cache: {} hits / {} misses ({:.0}% hit rate, {} structures)",
        standard_cache.hits,
        standard_cache.misses,
        standard_cache.hit_rate * 100.0,
        standard_cache.structures,
    );

    let report = Report {
        schema: "bench-harness/v1".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        available_jobs: available_jobs(),
        parallel_jobs,
        entries,
        speedup,
        bench_sweep_cache: cache_section(Arc::as_ref(parallel_engine.cache())),
        standard_sweep_cache: standard_cache,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, json + "\n").expect("writable report path");
    println!("\nwrote {out_path}");

    if report.speedup < 3.0 {
        eprintln!(
            "WARNING: sweep speedup {:.1}x is below the 3x acceptance floor",
            report.speedup
        );
    }
    if report.standard_sweep_cache.hit_rate <= 0.0 {
        eprintln!("WARNING: standard sweep never hit the structure cache");
    }
}
