//! Word-parallel combinatorics speedup trajectory.
//!
//! Times the word-parallel hot paths introduced by the performance PR
//! against their element-wise reference implementations (kept verbatim in
//! `ring_combinat::reference`), and writes the results to
//! `BENCH_combinat.json`. The file is regenerated from scratch on every
//! run and committed; the *trajectory* across PRs is its git history, so a
//! regression shows up as a worsened speedup in the diff.
//!
//! Run with `cargo run --release -p ring-bench --bin bench_combinat`
//! (optionally `-- --quick` for a CI smoke pass, `-- --out <path>` to
//! redirect the report).
//!
//! Besides the construction-level pairs, the report times the chunked
//! `IdSet` kernels themselves (union, intersect, popcount,
//! intersection-count, sampled verification) against their element-wise
//! oracles. In `--quick` mode the run **fails** (nonzero exit) if any
//! kernel's word-parallel path is slower than its reference — the CI perf
//! smoke that keeps the chunked loops honest.

use rand::SeedableRng;
use ring_combinat::{reference, Distinguisher, IdSet, SelectiveFamily};
use ring_protocols::coordination::nontrivial::weak_nontrivial_move_even_distinguisher;
use ring_protocols::{IdAssignment, Network};
use ring_sim::{EngineKind, LocalDirection, Model, RingConfig, RingState, RoundBuffers};
use serde::Serialize;
use std::time::Instant;

/// One timed entry of the report.
#[derive(Clone, Debug, Serialize)]
struct Entry {
    name: String,
    /// Problem size the timing refers to (universe or ring size).
    n: u64,
    /// Median wall-clock nanoseconds per repetition.
    median_ns: u64,
    reps: usize,
}

/// A fast-path/reference pair with its speedup.
#[derive(Clone, Debug, Serialize)]
struct Speedup {
    name: String,
    fast_ns: u64,
    reference_ns: u64,
    speedup: f64,
}

#[derive(Clone, Debug, Serialize)]
struct Report {
    schema: String,
    mode: String,
    entries: Vec<Entry>,
    speedups: Vec<Speedup>,
}

/// Median wall-clock nanoseconds of `reps` runs of `f` (one warm-up run).
fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> u64 {
    std::hint::black_box(f());
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_combinat.json".to_string());

    // --quick shrinks the sizes enough for a CI smoke run while exercising
    // every measured code path.
    let (universe, n, reps) = if quick {
        (10_000u64, 32usize, 3usize)
    } else {
        (100_000u64, 64usize, 5usize)
    };
    // Small ring × many rounds: the regime of the paper's protocols, where
    // per-round allocation is a constant fraction of the round cost.
    let ring_n = if quick { 32 } else { 64 };
    let rounds = if quick { 256 } else { 2048 };

    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    let record_pair = |entries: &mut Vec<Entry>,
                       speedups: &mut Vec<Speedup>,
                       name: &str,
                       size: u64,
                       fast_ns: u64,
                       reference_ns: u64,
                       reps: usize| {
        entries.push(Entry {
            name: format!("{name}/word_parallel"),
            n: size,
            median_ns: fast_ns,
            reps,
        });
        entries.push(Entry {
            name: format!("{name}/reference"),
            n: size,
            median_ns: reference_ns,
            reps,
        });
        speedups.push(Speedup {
            name: name.to_string(),
            fast_ns,
            reference_ns,
            speedup: reference_ns as f64 / fast_ns.max(1) as f64,
        });
    };

    // 1. Distinguisher construction (Theorem 27) at large N.
    let fast = time_median(reps, || Distinguisher::random(universe, n, 7));
    let slow = time_median(reps, || {
        reference::distinguisher_random_reference(universe, n, 7)
    });
    record_pair(
        &mut entries,
        &mut speedups,
        "distinguisher_random",
        universe,
        fast,
        slow,
        reps,
    );
    println!(
        "distinguisher_random      N={universe} n={n}: {:>12} ns vs {:>12} ns  ({:.1}x)",
        fast,
        slow,
        slow as f64 / fast.max(1) as f64
    );

    // 2. Selective-family construction (Definition 35) at large N.
    let fast = time_median(reps, || SelectiveFamily::random(universe, n, 7));
    let slow = time_median(reps, || {
        reference::selective_random_reference(universe, n, 7)
    });
    record_pair(
        &mut entries,
        &mut speedups,
        "selective_random",
        universe,
        fast,
        slow,
        reps,
    );
    println!(
        "selective_random          N={universe} n={n}: {:>12} ns vs {:>12} ns  ({:.1}x)",
        fast,
        slow,
        slow as f64 / fast.max(1) as f64
    );

    // 2b. The chunked IdSet kernels against their element-wise oracles, on
    //     dense random operands at the full benchmark universe. Cheap
    //     kernels (popcount, fused pair count) run an inner repeat so both
    //     sides are timed well above clock granularity; the repeat factor
    //     cancels in the speedup.
    let mut kernel_rng = rand::rngs::StdRng::seed_from_u64(11);
    let ka = reference::random_set_reference(universe, &mut kernel_rng);
    let kb = reference::random_set_reference(universe, &mut kernel_rng);
    const INNER: usize = 16;

    let fast = time_median(reps, || {
        for _ in 0..INNER {
            let mut c = ka.clone();
            c.union_with(&kb);
            std::hint::black_box(&c);
        }
    });
    let slow = time_median(reps, || {
        for _ in 0..INNER {
            std::hint::black_box(reference::union_reference(&ka, &kb));
        }
    });
    record_pair(
        &mut entries,
        &mut speedups,
        "idset_union",
        universe,
        fast,
        slow,
        reps,
    );
    println!(
        "idset_union               N={universe}:       {fast:>12} ns vs {slow:>12} ns  ({:.1}x)",
        slow as f64 / fast.max(1) as f64
    );

    let fast = time_median(reps, || {
        for _ in 0..INNER {
            let mut c = ka.clone();
            c.intersect_with(&kb);
            std::hint::black_box(&c);
        }
    });
    let slow = time_median(reps, || {
        for _ in 0..INNER {
            std::hint::black_box(reference::intersection_reference(&ka, &kb));
        }
    });
    record_pair(
        &mut entries,
        &mut speedups,
        "idset_intersect",
        universe,
        fast,
        slow,
        reps,
    );
    println!(
        "idset_intersect           N={universe}:       {fast:>12} ns vs {slow:>12} ns  ({:.1}x)",
        slow as f64 / fast.max(1) as f64
    );

    let fast = time_median(reps, || {
        for _ in 0..INNER {
            std::hint::black_box(ka.len());
        }
    });
    let slow = time_median(reps, || {
        for _ in 0..INNER {
            std::hint::black_box(reference::len_reference(&ka));
        }
    });
    record_pair(
        &mut entries,
        &mut speedups,
        "idset_len",
        universe,
        fast,
        slow,
        reps,
    );
    println!(
        "idset_len                 N={universe}:       {fast:>12} ns vs {slow:>12} ns  ({:.1}x)",
        slow as f64 / fast.max(1) as f64
    );

    let fast = time_median(reps, || {
        for _ in 0..INNER {
            std::hint::black_box(ka.intersection_count(&kb));
        }
    });
    let slow = time_median(reps, || {
        for _ in 0..INNER {
            std::hint::black_box(reference::intersection_count_reference(&ka, &kb));
        }
    });
    record_pair(
        &mut entries,
        &mut speedups,
        "idset_intersection_count",
        universe,
        fast,
        slow,
        reps,
    );
    println!(
        "idset_intersection_count  N={universe}:       {fast:>12} ns vs {slow:>12} ns  ({:.1}x)",
        slow as f64 / fast.max(1) as f64
    );

    // 2c. Sampled verification: the harness-scale validity check, whose
    //     inner loop is the fused intersection-count pair.
    let verify_d = Distinguisher::random(universe, n, 7);
    let samples = 4usize;
    let fast = time_median(reps, || {
        std::hint::black_box(verify_d.verify_sampled(n, samples, 5))
    });
    let slow = time_median(reps, || {
        std::hint::black_box(reference::verify_sampled_reference(
            &verify_d, n, samples, 5,
        ))
    });
    record_pair(
        &mut entries,
        &mut speedups,
        "verify_sampled",
        universe,
        fast,
        slow,
        reps,
    );
    println!(
        "verify_sampled            N={universe} n={n}: {fast:>12} ns vs {slow:>12} ns  ({:.1}x)",
        slow as f64 / fast.max(1) as f64
    );

    // 3. Bulk IdSet constructors against per-identifier loops.
    let big = 1_000_000u64;
    let fast = time_median(reps, || IdSet::full(big));
    let slow = time_median(reps, || IdSet::from_ids(big, 1..=big));
    record_pair(
        &mut entries,
        &mut speedups,
        "idset_full",
        big,
        fast,
        slow,
        reps,
    );
    println!(
        "idset_full                N={big}:       {:>12} ns vs {:>12} ns  ({:.1}x)",
        fast,
        slow,
        slow as f64 / fast.max(1) as f64
    );

    let fast = time_median(reps, || IdSet::with_bit(big, 3, true));
    let slow = time_median(reps, || {
        IdSet::from_ids(big, (1..=big).filter(|id| (id >> 3) & 1 == 1))
    });
    record_pair(
        &mut entries,
        &mut speedups,
        "idset_with_bit",
        big,
        fast,
        slow,
        reps,
    );
    println!(
        "idset_with_bit            N={big}:       {:>12} ns vs {:>12} ns  ({:.1}x)",
        fast,
        slow,
        slow as f64 / fast.max(1) as f64
    );

    // 4. Batched round execution against the allocating path.
    let config = RingConfig::builder(ring_n)
        .random_positions(9)
        .random_chirality(10)
        .build()
        .expect("valid benchmark ring");
    let dirs: Vec<LocalDirection> = (0..ring_n)
        .map(|i| {
            if i % 3 == 0 {
                LocalDirection::Left
            } else {
                LocalDirection::Right
            }
        })
        .collect();
    let fast = time_median(reps, || {
        let mut ring = RingState::new(&config);
        let mut bufs = RoundBuffers::new();
        for _ in 0..rounds {
            ring.execute_round_into(&dirs, EngineKind::Analytic, &mut bufs)
                .expect("valid round");
        }
        ring.rounds_executed()
    });
    let slow = time_median(reps, || {
        let mut ring = RingState::new(&config);
        for _ in 0..rounds {
            ring.execute_round(&dirs, EngineKind::Analytic)
                .expect("valid round");
        }
        ring.rounds_executed()
    });
    record_pair(
        &mut entries,
        &mut speedups,
        "execute_rounds_batched",
        ring_n as u64,
        fast,
        slow,
        reps,
    );
    println!(
        "execute_rounds_batched    n={ring_n} r={rounds}:  {:>12} ns vs {:>12} ns  ({:.1}x)",
        fast,
        slow,
        slow as f64 / fast.max(1) as f64
    );

    // 5. End-to-end: the distinguisher-driven weak nontrivial move on a
    //    balanced ring, now running as one batched schedule over the
    //    word-parallel strong distinguisher (absolute time only — the whole
    //    stack changed, so there is no isolated reference path).
    let proto_n = if quick { 16 } else { 32 };
    let config = RingConfig::builder(proto_n)
        .random_positions(500)
        .alternating_chirality()
        .build()
        .expect("valid benchmark ring");
    let ids = IdAssignment::random(proto_n, 64 * proto_n as u64, 501);
    let t = time_median(reps, || {
        let mut net = Network::new(&config, ids.clone(), Model::Basic).expect("valid network");
        weak_nontrivial_move_even_distinguisher(&mut net, 3).expect("solvable")
    });
    entries.push(Entry {
        name: "weak_nontrivial_move_batched".to_string(),
        n: proto_n as u64,
        median_ns: t,
        reps,
    });
    println!("weak_nontrivial_batched   n={proto_n}:        {t:>12} ns");

    let report = Report {
        schema: "bench-combinat/v1".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        entries,
        speedups,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&out_path, json + "\n").expect("writable report path");
    println!("\nwrote {out_path}");

    let floor = 5.0;
    for s in &report.speedups {
        if ["distinguisher_random", "selective_random"].contains(&s.name.as_str())
            && s.speedup < floor
        {
            eprintln!(
                "WARNING: {} speedup {:.1}x is below the {floor}x acceptance floor",
                s.name, s.speedup
            );
        }
    }

    // The CI perf smoke: in quick mode, a chunked kernel that fails to
    // beat its element-wise oracle fails the run. The asserted set is the
    // kernel pairs (not the construction or round-loop pairs, whose inner
    // cost is RNG- or simulator-bound), so the gate tests exactly the
    // word-parallel loops this crate exists for.
    if quick {
        let asserted = [
            "idset_union",
            "idset_intersect",
            "idset_len",
            "idset_intersection_count",
            "verify_sampled",
        ];
        let mut failed = false;
        for s in &report.speedups {
            if asserted.contains(&s.name.as_str()) && s.speedup < 1.0 {
                eprintln!(
                    "FAIL: {} word-parallel path ({} ns) is slower than its element-wise \
reference ({} ns)",
                    s.name, s.fast_ns, s.reference_ns
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
