//! Shared helpers for the Criterion benchmarks.
//!
//! Every benchmark file regenerates one evaluation artefact of the paper
//! (a table or a figure); the heavy lifting lives in `ring-experiments`,
//! and these helpers only build the deployments the benches iterate over.

use ring_protocols::IdAssignment;
use ring_sim::RingConfig;

/// A reproducible deployment with mixed chirality (the general setting).
pub fn deployment(n: usize, universe_factor: u64, seed: u64) -> (RingConfig, IdAssignment) {
    let config = RingConfig::builder(n)
        .random_positions(seed + 1)
        .random_chirality(seed + 2)
        .build()
        .expect("benchmark configurations are valid");
    let ids = IdAssignment::random(n, universe_factor * n as u64, seed + 3);
    (config, ids)
}

/// A reproducible deployment with perfectly balanced chirality — the
/// adversarial case for symmetry breaking on even rings.
pub fn balanced_deployment(
    n: usize,
    universe_factor: u64,
    seed: u64,
) -> (RingConfig, IdAssignment) {
    let config = RingConfig::builder(n)
        .random_positions(seed + 1)
        .alternating_chirality()
        .build()
        .expect("benchmark configurations are valid");
    let ids = IdAssignment::random(n, universe_factor * n as u64, seed + 3);
    (config, ids)
}
