//! Ablation benchmark for the substrate: the exact analytic engine versus
//! the event-driven reference engine, per simulated round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ring_sim::prelude::*;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[64usize, 256, 1024] {
        let config = RingConfig::builder(n)
            .random_positions(n as u64)
            .build()
            .unwrap();
        let dirs: Vec<ObjectiveDirection> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    ObjectiveDirection::Anticlockwise
                } else {
                    ObjectiveDirection::Clockwise
                }
            })
            .collect();
        let slots: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::new("analytic", n), &n, |b, _| {
            b.iter(|| AnalyticEngine::new().execute(&config, &slots, &dirs))
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("event", n), &n, |b, _| {
                b.iter(|| EventEngine::new().simulate(&config, &slots, &dirs))
            });
        }
    }
    group.finish();
}

/// The zero-alloc batched round path against the allocating one, at ring
/// sizes up to 10⁵ (scratch reuse via `AnalyticScratch`/`RoundBuffers`).
fn bench_batched_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/batched_rounds");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[64usize, 1024, 100_000] {
        let config = RingConfig::builder(n)
            .random_positions(n as u64)
            .build()
            .unwrap();
        let dirs: Vec<LocalDirection> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    LocalDirection::Left
                } else {
                    LocalDirection::Right
                }
            })
            .collect();
        let rounds = (1 << 14) / n.max(64) + 4;
        group.bench_with_input(BenchmarkId::new("buffered", n), &n, |b, _| {
            b.iter(|| {
                let mut ring = RingState::new(&config);
                let mut bufs = RoundBuffers::new();
                for _ in 0..rounds {
                    ring.execute_round_into(&dirs, EngineKind::Analytic, &mut bufs)
                        .unwrap();
                }
                ring.rounds_executed()
            })
        });
        group.bench_with_input(BenchmarkId::new("allocating", n), &n, |b, _| {
            b.iter(|| {
                let mut ring = RingState::new(&config);
                for _ in 0..rounds {
                    ring.execute_round(&dirs, EngineKind::Analytic).unwrap();
                }
                ring.rounds_executed()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_batched_rounds);
criterion_main!(benches);
