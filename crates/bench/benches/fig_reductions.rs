//! Benchmark regenerating Figures 1 and 2: the reduction edges between the
//! coordination problems (leader election ↔ nontrivial move ↔ direction
//! agreement), in the easy settings (Figure 1) and in the basic model with
//! even n (Figure 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ring_bench::{balanced_deployment, deployment};
use ring_experiments::reductions::EDGES;
use ring_experiments::{reductions::reductions, SweepSpec};
use ring_sim::Model;

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_reductions");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));

    // Figure 1: odd ring in the basic model, even ring in the perceptive
    // model. Figure 2: even ring in the basic model.
    let cases = [
        ("fig1/basic-odd", Model::Basic, 15usize),
        ("fig1/perceptive-even", Model::Perceptive, 16),
        ("fig2/basic-even", Model::Basic, 16),
    ];
    for (label, model, n) in cases {
        let spec = SweepSpec {
            sizes: vec![n],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 17,
            structure_seeds: None,
            faults: None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, _| {
            b.iter(|| {
                let m = reductions(&spec, model);
                assert_eq!(m.len(), EDGES.len());
                m
            })
        });
    }

    // Keep the helper functions exercised so the benchmark matches the
    // harness exactly.
    let _ = (deployment(8, 4, 1), balanced_deployment(8, 4, 1));
    group.finish();
}

criterion_group!(benches, bench_reductions);
criterion_main!(benches);
