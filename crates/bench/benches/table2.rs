//! Benchmark regenerating Table II: coordination and location discovery when
//! the agents share a common sense of direction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ring_protocols::coordination::leader::elect_leader_with_common_direction;
use ring_protocols::coordination::nontrivial::nontrivial_move_with_leader;
use ring_protocols::{IdAssignment, Network};
use ring_sim::{Frame, Model, RingConfig};

fn common_direction_deployment(n: usize, seed: u64) -> (RingConfig, IdAssignment) {
    let config = RingConfig::builder(n)
        .random_positions(seed)
        .aligned_chirality()
        .build()
        .unwrap();
    (config, IdAssignment::random(n, 4 * n as u64, seed + 1))
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[15usize, 16, 32] {
        let (config, ids) = common_direction_deployment(n, 300 + n as u64);
        for model in [Model::Basic, Model::Lazy, Model::Perceptive] {
            let label = format!("{model}/leader+nontrivial-move/n={n}");
            group.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, _| {
                b.iter(|| {
                    let mut net = Network::new(&config, ids.clone(), model).unwrap();
                    let frames = vec![Frame::identity(); n];
                    let election = elect_leader_with_common_direction(&mut net, &frames).unwrap();
                    nontrivial_move_with_leader(&mut net, election.leader_flags()).unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
