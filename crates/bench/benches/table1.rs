//! Benchmark regenerating Table I: the cost of each coordination problem and
//! of location discovery in the general setting (no common sense of
//! direction), for odd and even ring sizes in every model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ring_bench::{balanced_deployment, deployment};
use ring_protocols::pipeline::{measure_problem, Problem};
use ring_sim::Model;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[15usize, 16, 32] {
        let (config, ids) = if n % 2 == 0 {
            balanced_deployment(n, 4, 100 + n as u64)
        } else {
            deployment(n, 4, 100 + n as u64)
        };
        let models: &[Model] = if n % 2 == 1 {
            &[Model::Basic]
        } else {
            &[Model::Basic, Model::Lazy, Model::Perceptive]
        };
        for &model in models {
            for problem in Problem::ALL {
                if problem == Problem::LocationDiscovery && model == Model::Basic && n % 2 == 0 {
                    continue; // unsolvable (Lemma 5)
                }
                let label = format!("{model}/{problem}/n={n}");
                group.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, _| {
                    b.iter(|| measure_problem(&config, &ids, model, problem).expect("solvable"))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
