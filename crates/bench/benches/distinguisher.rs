//! Benchmark for the Section IV machinery: construction of distinguishers
//! and selective families, and the distinguisher-driven weak nontrivial-move
//! protocol on adversarial (balanced) rings — the quantity whose
//! Θ(n·log(N/n)/log n) growth is the paper's key lower bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ring_bench::balanced_deployment;
use ring_combinat::{reference, Distinguisher, SelectiveFamily};
use ring_protocols::coordination::nontrivial::weak_nontrivial_move_even_distinguisher;
use ring_protocols::Network;
use ring_sim::Model;

fn bench_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distinguisher/construction");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("distinguisher", n), &n, |b, &n| {
            b.iter(|| Distinguisher::random(1 << 12, n, 7))
        });
        group.bench_with_input(BenchmarkId::new("selective_family", n), &n, |b, &n| {
            b.iter(|| SelectiveFamily::random(1 << 12, n, 7))
        });
    }
    group.finish();
}

/// The word-parallel constructions at large universes (N ≥ 10⁵), against
/// the element-wise reference implementations they replaced — the speedup
/// the `BENCH_combinat.json` trajectory tracks.
fn bench_constructions_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("distinguisher/construction_large");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let universe = 100_000u64;
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::new("distinguisher", n), &n, |b, &n| {
            b.iter(|| Distinguisher::random(universe, n, 7))
        });
        group.bench_with_input(BenchmarkId::new("selective_family", n), &n, |b, &n| {
            b.iter(|| SelectiveFamily::random(universe, n, 7))
        });
    }
    // The reference paths are too slow to sweep; one size anchors the ratio.
    group.bench_with_input(
        BenchmarkId::new("distinguisher_reference", 64),
        &64,
        |b, &n| b.iter(|| reference::distinguisher_random_reference(universe, n, 7)),
    );
    group.bench_with_input(
        BenchmarkId::new("selective_family_reference", 64),
        &64,
        |b, &n| b.iter(|| reference::selective_random_reference(universe, n, 7)),
    );
    group.finish();
}

fn bench_weak_nontrivial_move(c: &mut Criterion) {
    let mut group = c.benchmark_group("distinguisher/weak_nontrivial_move");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &n in &[8usize, 16, 32] {
        let (config, ids) = balanced_deployment(n, 64, 500 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut net = Network::new(&config, ids.clone(), Model::Basic).unwrap();
                weak_nontrivial_move_even_distinguisher(&mut net, 3).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_constructions,
    bench_constructions_large,
    bench_weak_nontrivial_move
);
criterion_main!(benches);
