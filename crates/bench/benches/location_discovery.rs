//! Benchmark for the paper's headline result (Theorem 42 and Lemma 16):
//! location discovery in n/2 + o(n) rounds in the perceptive model versus
//! n + o(n) in the lazy model / basic model with odd n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ring_bench::deployment;
use ring_protocols::locate::discover_locations;
use ring_protocols::Network;
use ring_sim::Model;

fn bench_location_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("location_discovery");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &(n, model) in &[
        (15usize, Model::Basic),
        (16, Model::Lazy),
        (16, Model::Perceptive),
        (32, Model::Perceptive),
    ] {
        let (config, ids) = deployment(n, 8, 900 + n as u64);
        let label = format!("{model}/n={n}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, _| {
            b.iter(|| {
                let mut net = Network::new(&config, ids.clone(), model).unwrap();
                discover_locations(&mut net).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_location_discovery);
criterion_main!(benches);
