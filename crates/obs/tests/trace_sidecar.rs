//! End-to-end check of the span-trace sidecar: init, emit nested and
//! fielded spans from two threads, shutdown, then parse the JSONL back and
//! verify the event structure (paired begin/end, monotonic timestamps,
//! durations, fields). Runs in its own test binary because trace state is
//! per-process.

use serde::Value;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ring-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sidecar_records_paired_span_events() {
    let dir = temp_dir("trace");
    let path = ring_obs::trace::init(&dir).expect("trace init");
    assert!(path
        .file_name()
        .unwrap()
        .to_str()
        .unwrap()
        .starts_with("trace-"));

    {
        let _outer = ring_obs::span!("merge", shards = 3usize);
        let _inner = ring_obs::span!("case", index = 7u64, kind = "uniform");
    }
    let worker = std::thread::spawn(|| {
        let _span = ring_obs::span!("construct_structure", n = 64u64);
    });
    worker.join().unwrap();
    ring_obs::trace::shutdown();
    assert!(!ring_obs::trace::enabled());

    // After shutdown, spans are no-ops and append nothing.
    let size_after_shutdown = std::fs::metadata(&path).unwrap().len();
    {
        let _late = ring_obs::span!("late");
    }
    assert_eq!(std::fs::metadata(&path).unwrap().len(), size_after_shutdown);

    let text = std::fs::read_to_string(&path).unwrap();
    let events: Vec<Value> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("trace line parses"))
        .collect();
    // 3 spans, one begin + one end each.
    assert_eq!(events.len(), 6);

    let field = |e: &Value, k: &str| e.get(k).and_then(Value::as_u64).unwrap();
    let kind = |e: &Value| e.get("event").and_then(Value::as_str).unwrap().to_string();
    let name = |e: &Value| e.get("span").and_then(Value::as_str).unwrap().to_string();

    // Every begin has a matching end with the same id/tid, later ts, and a
    // dur_ns consistent with the timestamps.
    let mut names = Vec::new();
    for begin in events.iter().filter(|e| kind(e) == "begin") {
        let id = field(begin, "id");
        let end = events
            .iter()
            .find(|e| kind(e) == "end" && field(e, "id") == id)
            .unwrap_or_else(|| panic!("span {id} has no end event"));
        assert_eq!(name(begin), name(end));
        assert_eq!(field(begin, "tid"), field(end, "tid"));
        assert!(field(end, "ts_ns") >= field(begin, "ts_ns"));
        assert!(field(end, "dur_ns") <= field(end, "ts_ns"));
        names.push(name(begin));
    }
    names.sort();
    assert_eq!(names, ["case", "construct_structure", "merge"]);

    // Fields ride on the begin event.
    let case_begin = events
        .iter()
        .find(|e| kind(e) == "begin" && name(e) == "case")
        .unwrap();
    let fields = case_begin.get("fields").expect("case has fields");
    assert_eq!(fields.get("index").and_then(Value::as_u64), Some(7));
    assert_eq!(fields.get("kind").and_then(Value::as_str), Some("uniform"));

    // The two threads got distinct ordinals.
    let construct_begin = events
        .iter()
        .find(|e| kind(e) == "begin" && name(e) == "construct_structure")
        .unwrap();
    assert_ne!(field(case_begin, "tid"), field(construct_begin, "tid"));

    let _ = std::fs::remove_dir_all(&dir);
}
