//! Allocation guard for the instrumentation hot path: with tracing
//! disabled (the default), a warm instrumented loop — counter increment,
//! gauge update, histogram record, and a disabled [`ring_obs::span!`] site
//! — must perform **zero** heap allocations. The counter/gauge/histogram
//! updates are relaxed atomic adds on pre-registered handles; the disabled
//! span macro is a single relaxed load whose field expressions are never
//! evaluated. A counting global allocator pins all of that.

use ring_obs::Registry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The system allocator with an allocation counter bolted on.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One iteration of an instrumented "round": everything a hot loop in the
/// harness does per case when tracing is off. `i` feeds the histogram so
/// multiple buckets are touched, and the span's field expression would
/// allocate if it were ever evaluated.
fn instrumented_round(
    hits: &ring_obs::Counter,
    depth: &ring_obs::Gauge,
    latency: &ring_obs::Histogram,
    i: u64,
) {
    let _span = ring_obs::span!("round", label = format!("round-{i}"));
    hits.inc();
    depth.set(i as i64);
    latency.record(i * 37);
}

#[test]
fn disabled_instrumentation_hot_path_allocates_nothing() {
    assert!(
        !ring_obs::trace::enabled(),
        "tracing must be off for this test"
    );
    let registry = Registry::new();
    // Registration allocates (name strings, Arc) — do it once, outside the
    // measured window, exactly as production code holds its handles.
    let hits = registry.counter("hits");
    let depth = registry.gauge("depth");
    let latency = registry.histogram("latency_ns");

    // Warm-up.
    for i in 0..1_000u64 {
        instrumented_round(&hits, &depth, &latency, i);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        instrumented_round(&hits, &depth, &latency, i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled-instrumentation loop must not allocate: counter/gauge/\
         histogram updates are relaxed atomic adds and the disabled span! \
         arm must not evaluate its fields"
    );
    assert_eq!(hits.get(), 11_000);
    assert_eq!(latency.count(), 11_000);
}
