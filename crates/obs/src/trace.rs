//! Span traces: RAII guards writing structured begin/end events to a
//! per-process JSONL sidecar.
//!
//! The layer is off by default and costs one relaxed atomic load per
//! [`span!`](crate::span!) site while disabled — the macro's disabled arm
//! neither allocates nor evaluates its field expressions (they must
//! therefore be pure). [`init`] opens `<dir>/trace-<pid>.jsonl` and flips
//! tracing on; [`shutdown`] flushes and flips it off. Every event is one
//! JSON line:
//!
//! ```json
//! {"event":"begin","span":"case","id":7,"tid":1,"ts_ns":1203,"fields":{"index":3}}
//! {"event":"end","span":"case","id":7,"tid":1,"ts_ns":90211,"dur_ns":89008}
//! ```
//!
//! Timestamps are nanoseconds since the first trace event of the process
//! (monotonic clock), thread ids are small per-process ordinals, span ids
//! pair each `end` with its `begin`. The sidecar is the only output
//! channel: tracing never writes to stdout, which keeps instrumented runs
//! byte-identical to uninstrumented ones.

use serde::Value;
use std::cell::Cell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ORDINAL: Cell<u64> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|cell| {
        let mut id = cell.get();
        if id == 0 {
            id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
        }
        id
    })
}

/// Whether tracing is currently on. One relaxed load; this is the entire
/// disabled-path cost of a [`span!`](crate::span!) site.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opens the per-process sidecar `<dir>/trace-<pid>.jsonl` (creating
/// `dir`) and enables tracing. Returns the sidecar path.
///
/// # Errors
///
/// Propagates directory-creation and file-creation failures.
pub fn init(dir: &Path) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("trace-{}.jsonl", std::process::id()));
    let file = File::create(&path)?;
    epoch();
    *SINK.lock().expect("trace sink poisoned") = Some(BufWriter::new(file));
    ENABLED.store(true, Ordering::Release);
    Ok(path)
}

/// Disables tracing and flushes and closes the sidecar. Call before
/// process exit — `BufWriter` buffers are not flushed by `exit`.
pub fn shutdown() {
    ENABLED.store(false, Ordering::Release);
    if let Some(mut sink) = SINK.lock().expect("trace sink poisoned").take() {
        let _ = sink.flush();
    }
}

/// A field value attached to a span's `begin` event.
#[derive(Clone, Debug)]
pub enum FieldValue {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Float field.
    F64(f64),
    /// String field.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn to_json(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::Uint(*v),
            FieldValue::I64(v) => Value::Int(i128::from(*v)),
            FieldValue::F64(v) => Value::Float(*v),
            FieldValue::Str(v) => Value::Str(v.clone()),
        }
    }
}

fn write_event(value: &Value) {
    let line = serde_json::to_string(value).expect("trace event serializes");
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(out) = sink.as_mut() {
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
    }
}

/// RAII span guard: emits `begin` on construction (via
/// [`SpanGuard::begin`]) and `end` with the measured duration on drop.
/// Use through the [`span!`](crate::span!) macro so disabled tracing costs
/// one atomic load.
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    id: u64,
    tid: u64,
    started: Instant,
}

impl SpanGuard {
    /// Starts a span, writing its `begin` event immediately.
    pub fn begin(name: &'static str, fields: &[(&'static str, FieldValue)]) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let tid = thread_ordinal();
        let ts_ns = crate::elapsed_ns(epoch());
        let mut event = vec![
            ("event".to_string(), Value::Str("begin".to_string())),
            ("span".to_string(), Value::Str(name.to_string())),
            ("id".to_string(), Value::Uint(id)),
            ("tid".to_string(), Value::Uint(tid)),
            ("ts_ns".to_string(), Value::Uint(ts_ns)),
        ];
        if !fields.is_empty() {
            event.push((
                "fields".to_string(),
                Value::Object(
                    fields
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        write_event(&Value::Object(event));
        SpanGuard {
            active: Some(ActiveSpan {
                name,
                id,
                tid,
                started: Instant::now(),
            }),
        }
    }

    /// A guard that does nothing — the disabled arm of
    /// [`span!`](crate::span!).
    pub fn noop() -> SpanGuard {
        SpanGuard { active: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        if !enabled() {
            return;
        }
        let ts_ns = crate::elapsed_ns(epoch());
        let dur_ns = crate::elapsed_ns(span.started);
        write_event(&Value::Object(vec![
            ("event".to_string(), Value::Str("end".to_string())),
            ("span".to_string(), Value::Str(span.name.to_string())),
            ("id".to_string(), Value::Uint(span.id)),
            ("tid".to_string(), Value::Uint(span.tid)),
            ("ts_ns".to_string(), Value::Uint(ts_ns)),
            ("dur_ns".to_string(), Value::Uint(dur_ns)),
        ]));
    }
}

/// Opens an RAII span: `span!("name")` or
/// `span!("name", key = value, …)`.
///
/// While tracing is disabled the macro expands to a single relaxed atomic
/// load and a no-op guard — field expressions are **not evaluated**, so
/// they must be free of side effects.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::trace::enabled() {
            $crate::trace::SpanGuard::begin($name, &[])
        } else {
            $crate::trace::SpanGuard::noop()
        }
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::SpanGuard::begin(
                $name,
                &[$((stringify!($key), $crate::trace::FieldValue::from($value))),+],
            )
        } else {
            $crate::trace::SpanGuard::noop()
        }
    };
}
