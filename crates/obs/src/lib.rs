//! One instrumentation layer for the whole workspace: counters, gauges,
//! log2 latency histograms, and span traces.
//!
//! The crate is deliberately small and dependency-free (the serde shims are
//! only used at snapshot/serialization time, never on the hot path):
//!
//! - [`Counter`] / [`Gauge`] are single relaxed atomics. An increment on the
//!   hot path is one `fetch_add(1, Relaxed)` — no locks, no allocation.
//! - [`Histogram`] is a fixed array of 64 log2-spaced buckets over
//!   nanoseconds. Recording a sample is three relaxed atomic adds;
//!   percentiles ([`HistogramSnapshot::quantile`]) are extracted from a
//!   snapshot, never from the live histogram.
//! - [`Registry`] is a name → handle map behind a mutex. The mutex is only
//!   taken at registration and snapshot time; callers keep the returned
//!   [`Arc`] handle and update it lock-free afterwards.
//! - [`Snapshot`] (`ring-obs/v1`) is the wire/manifest form: all-integer so
//!   it derives `Eq`, mergeable across processes, absent-tolerant when
//!   parsed back with [`Snapshot::from_json`].
//! - [`trace`] is the span layer: [`span!`] RAII guards write structured
//!   begin/end events to a per-process JSONL sidecar, and compile down to a
//!   single relaxed load (and nothing else — no allocation, no field
//!   evaluation) while tracing is disabled.
//!
//! The hard workspace invariant — instrumentation is output-inert — is
//! upheld here by construction: nothing in this crate ever writes to
//! stdout; telemetry goes to in-memory atomics, stderr, or the trace
//! sidecar file.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod trace;

use serde::{Serialize, Value};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Schema tag carried by every serialized [`Snapshot`].
pub const SNAPSHOT_SCHEMA: &str = "ring-obs/v1";

/// Number of log2 buckets in a [`Histogram`].
///
/// Bucket `0` holds the value `0`; bucket `i` (for `1 <= i < 63`) holds
/// values in `[2^(i-1), 2^i)`; bucket `63` holds everything at or above
/// `2^62` nanoseconds (~4.6 seconds), which is plenty of range for
/// latencies.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter (relaxed atomic `u64`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one. This is the hot-path operation: a single relaxed
    /// `fetch_add`.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (relaxed atomic `i64`).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 histogram over nanosecond samples.
///
/// Recording is lock-free: one relaxed add into the bucket, one into the
/// sample count, one into the running sum. Percentile extraction happens on
/// a [`HistogramSnapshot`], not here.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

/// The bucket index holding value `v`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The exclusive upper bound (in the sample's unit) of bucket `i`.
///
/// The last bucket is open-ended and reports [`u64::MAX`].
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (nanoseconds).
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records an elapsed [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Captures the current state as a named snapshot.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count(),
            sum_ns: self.sum_ns(),
            buckets,
        }
    }
}

/// A registry mapping metric names to live handles.
///
/// `counter`/`gauge`/`histogram` get-or-create under a mutex and hand back
/// an [`Arc`]; hold the handle and the mutex is never touched again on the
/// hot path. [`Registry::snapshot`] freezes everything, sorted by name.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_create<T: Default>(table: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut table = table.lock().expect("obs registry poisoned");
    if let Some((_, handle)) = table.iter().find(|(n, _)| n == name) {
        return Arc::clone(handle);
    }
    let handle = Arc::new(T::default());
    table.push((name.to_string(), Arc::clone(&handle)));
    handle
}

impl Registry {
    /// Creates an empty registry (tests use private registries; production
    /// code shares [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Freezes every metric into a name-sorted [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, i64)> = self
            .gauges
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        gauges.sort();
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(n, h)| h.snapshot(n))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-wide registry. All production instrumentation goes here;
/// tests that assert exact values should use a private [`Registry`]
/// instead, because test binaries run in one shared process.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Frozen state of one histogram: sparse `(bucket_index, count)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Non-empty buckets as `(bucket_index, count)`, index-sorted.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the log2 bucket containing that rank (so within 2x of the true
    /// sample). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(i, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_bound(i as usize);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Adds `other`'s samples into `self` (same metric from another
    /// process or shard).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for &(i, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&i, |&(bi, _)| bi) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (i, n)),
            }
        }
    }
}

/// A frozen, mergeable view of a registry: the `ring-obs/v1` schema.
///
/// All fields are integers so the type derives `Eq` and roundtrips exactly
/// through the manifest and worker protocol. Ratios (hit rates, shares)
/// are computed at render time, never stored.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Histogram states, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// The counter named `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The gauge named `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Sets counter `name` to `value`, inserting it if absent.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => {
                let pos = self
                    .counters
                    .binary_search_by(|(n, _)| n.as_str().cmp(name))
                    .unwrap_err();
                self.counters.insert(pos, (name.to_string(), value));
            }
        }
    }

    /// Adds `value` to counter `name`, inserting it if absent.
    pub fn add_counter(&mut self, name: &str, value: u64) {
        let current = self.counter(name);
        self.set_counter(name, current + value);
    }

    /// Whether the snapshot records nothing at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Accumulates `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise. Used to aggregate per-shard snapshots into fleet
    /// totals.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.counters {
            self.add_counter(name, *value);
        }
        for (name, value) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v += value,
                None => {
                    let pos = self
                        .gauges
                        .binary_search_by(|(n, _)| n.as_str().cmp(name))
                        .unwrap_err();
                    self.gauges.insert(pos, (name.clone(), *value));
                }
            }
        }
        for hist in &other.histograms {
            match self
                .histograms
                .iter_mut()
                .find(|mine| mine.name == hist.name)
            {
                Some(mine) => mine.merge(hist),
                None => {
                    let pos = self
                        .histograms
                        .binary_search_by(|h| h.name.as_str().cmp(&hist.name))
                        .unwrap_err();
                    self.histograms.insert(pos, hist.clone());
                }
            }
        }
    }

    /// What changed since `baseline`: counters and histogram contents
    /// subtract (zero entries are dropped), gauges keep their current
    /// value. This is how a long-lived worker process reports exactly one
    /// job's metrics — snapshot before, snapshot after, delta.
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(baseline.counter(n))))
            .filter(|(_, v)| *v > 0)
            .collect();
        let gauges = self.gauges.clone();
        let mut histograms = Vec::new();
        for hist in &self.histograms {
            let mut delta = hist.clone();
            if let Some(base) = baseline.histogram(&hist.name) {
                delta.count = delta.count.saturating_sub(base.count);
                delta.sum_ns = delta.sum_ns.saturating_sub(base.sum_ns);
                for &(i, n) in &base.buckets {
                    if let Ok(pos) = delta.buckets.binary_search_by_key(&i, |&(bi, _)| bi) {
                        delta.buckets[pos].1 = delta.buckets[pos].1.saturating_sub(n);
                    }
                }
                delta.buckets.retain(|&(_, n)| n > 0);
            }
            if delta.count > 0 {
                histograms.push(delta);
            }
        }
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Parses a serialized snapshot back from its JSON value.
    ///
    /// Absent sections parse as empty; an unknown schema tag is an error so
    /// future incompatible revisions fail loudly.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn from_json(value: &Value) -> Result<Snapshot, String> {
        if let Some(schema) = value.get("schema").and_then(Value::as_str) {
            if schema != SNAPSHOT_SCHEMA {
                return Err(format!("unsupported snapshot schema `{schema}`"));
            }
        }
        let mut snapshot = Snapshot::default();
        if let Some(items) = value.get("counters").and_then(Value::as_array) {
            for item in items {
                let pair = item.as_array().ok_or("counter entry is not a pair")?;
                let name = pair
                    .first()
                    .and_then(Value::as_str)
                    .ok_or("counter name is not a string")?;
                let v = pair
                    .get(1)
                    .and_then(Value::as_u64)
                    .ok_or("counter value is not a u64")?;
                snapshot.counters.push((name.to_string(), v));
            }
        }
        if let Some(items) = value.get("gauges").and_then(Value::as_array) {
            for item in items {
                let pair = item.as_array().ok_or("gauge entry is not a pair")?;
                let name = pair
                    .first()
                    .and_then(Value::as_str)
                    .ok_or("gauge name is not a string")?;
                let v = pair
                    .get(1)
                    .and_then(Value::as_i64)
                    .ok_or("gauge value is not an i64")?;
                snapshot.gauges.push((name.to_string(), v));
            }
        }
        if let Some(items) = value.get("histograms").and_then(Value::as_array) {
            for item in items {
                let name = item
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("histogram name is not a string")?;
                let count = item
                    .get("count")
                    .and_then(Value::as_u64)
                    .ok_or("histogram count is not a u64")?;
                let sum_ns = item
                    .get("sum_ns")
                    .and_then(Value::as_u64)
                    .ok_or("histogram sum_ns is not a u64")?;
                let mut buckets = Vec::new();
                if let Some(pairs) = item.get("buckets").and_then(Value::as_array) {
                    for pair in pairs {
                        let pair = pair.as_array().ok_or("bucket entry is not a pair")?;
                        let i = pair
                            .first()
                            .and_then(Value::as_u64)
                            .ok_or("bucket index is not a u64")?;
                        let n = pair
                            .get(1)
                            .and_then(Value::as_u64)
                            .ok_or("bucket count is not a u64")?;
                        buckets.push((u32::try_from(i).map_err(|_| "bucket index overflow")?, n));
                    }
                }
                snapshot.histograms.push(HistogramSnapshot {
                    name: name.to_string(),
                    count,
                    sum_ns,
                    buckets,
                });
            }
        }
        Ok(snapshot)
    }
}

impl Serialize for HistogramSnapshot {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("count".to_string(), Value::Uint(self.count)),
            ("sum_ns".to_string(), Value::Uint(self.sum_ns)),
            ("buckets".to_string(), self.buckets.to_json()),
        ])
    }
}

impl Serialize for Snapshot {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::Str(SNAPSHOT_SCHEMA.to_string()),
            ),
            ("counters".to_string(), self.counters.to_json()),
            ("gauges".to_string(), self.gauges.to_json()),
            ("histograms".to_string(), self.histograms.to_json()),
        ])
    }
}

/// Renders a snapshot in the Prometheus text exposition format
/// (`text/plain; version=0.0.4`), every metric prefixed `ring_`.
///
/// Histograms expose the standard cumulative `_bucket{le=…}` /
/// `_sum` / `_count` triple with `le` in nanoseconds.
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE ring_{name} counter\n"));
        out.push_str(&format!("ring_{name} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE ring_{name} gauge\n"));
        out.push_str(&format!("ring_{name} {value}\n"));
    }
    for hist in &snapshot.histograms {
        let name = sanitize_metric_name(&hist.name);
        out.push_str(&format!("# TYPE ring_{name} histogram\n"));
        let mut cumulative = 0u64;
        for &(i, n) in &hist.buckets {
            cumulative += n;
            if (i as usize) < HISTOGRAM_BUCKETS - 1 {
                out.push_str(&format!(
                    "ring_{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_upper_bound(i as usize)
                ));
            }
        }
        out.push_str(&format!(
            "ring_{name}_bucket{{le=\"+Inf\"}} {}\n",
            hist.count
        ));
        out.push_str(&format!("ring_{name}_sum {}\n", hist.sum_ns));
        out.push_str(&format!("ring_{name}_count {}\n", hist.count));
    }
    out
}

fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Nanoseconds elapsed since `start`, saturating into `u64`.
pub fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(10), 1024);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        // Every value lands in a bucket whose bound brackets it.
        for v in [1u64, 2, 3, 7, 8, 100, 4096, 1 << 40] {
            let i = bucket_index(v);
            assert!(v < bucket_upper_bound(i), "value {v} bucket {i}");
            if i > 1 {
                assert!(v >= bucket_upper_bound(i - 1), "value {v} bucket {i}");
            }
        }
    }

    #[test]
    fn percentiles_come_from_bucket_upper_bounds() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum_ns, 500_500);
        // Rank 500 is the value 500, in bucket [256, 512).
        assert_eq!(snap.p50(), 512);
        // Rank 900 is the value 900, in bucket [512, 1024).
        assert_eq!(snap.p90(), 1024);
        assert_eq!(snap.p99(), 1024);
        assert_eq!(snap.quantile(1.0), 1024);
        assert_eq!(snap.mean_ns(), 500);
        assert_eq!(HistogramSnapshot::default().p50(), 0);
    }

    #[test]
    fn single_sample_percentiles() {
        let h = Histogram::new();
        h.record(300);
        let snap = h.snapshot("t");
        assert_eq!(snap.p50(), 512);
        assert_eq!(snap.p99(), 512);
    }

    #[test]
    fn registry_get_or_create_shares_handles() {
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("hits").get(), 3);
        registry.gauge("depth").set(-4);
        registry.histogram("lat").record(100);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hits"), 3);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauge("depth"), -4);
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
    }

    #[test]
    fn snapshots_merge_and_delta() {
        let registry = Registry::new();
        registry.counter("a").add(5);
        registry.histogram("h").record(10);
        let before = registry.snapshot();
        registry.counter("a").add(2);
        registry.counter("b").inc();
        registry.histogram("h").record(10);
        registry.histogram("h").record(1 << 30);
        let after = registry.snapshot();

        let delta = after.delta(&before);
        assert_eq!(delta.counter("a"), 2);
        assert_eq!(delta.counter("b"), 1);
        let h = delta.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_ns, 10 + (1u64 << 30));

        let mut total = before.clone();
        total.merge(&delta);
        assert_eq!(total, after);
    }

    #[test]
    fn snapshot_roundtrips_through_shim_serde() {
        let registry = Registry::new();
        registry.counter("cache_hits").add(7);
        registry.gauge("workers_idle").set(2);
        let h = registry.histogram("attempt_ns");
        h.record(0);
        h.record(900);
        h.record(1 << 20);
        let snap = registry.snapshot();
        let text = serde_json::to_string(&snap.to_json()).unwrap();
        let value = serde_json::from_str(&text).unwrap();
        let back = Snapshot::from_json(&value).unwrap();
        assert_eq!(back, snap);
        assert!(text.contains("\"schema\":\"ring-obs/v1\""));
    }

    #[test]
    fn from_json_is_absent_tolerant_and_schema_strict() {
        let empty = serde_json::from_str("{}").unwrap();
        assert!(Snapshot::from_json(&empty).unwrap().is_empty());
        let wrong = serde_json::from_str("{\"schema\":\"ring-obs/v9\"}").unwrap();
        assert!(Snapshot::from_json(&wrong).is_err());
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let registry = Registry::new();
        registry.counter("runs_total").add(3);
        registry.gauge("workers_idle").set(2);
        let h = registry.histogram("lease_wait_ns");
        h.record(100);
        h.record(100);
        h.record(5000);
        let text = prometheus_text(&registry.snapshot());
        assert!(text.contains("# TYPE ring_runs_total counter\nring_runs_total 3\n"));
        assert!(text.contains("# TYPE ring_workers_idle gauge\nring_workers_idle 2\n"));
        assert!(text.contains("# TYPE ring_lease_wait_ns histogram\n"));
        assert!(text.contains("ring_lease_wait_ns_bucket{le=\"128\"} 2\n"));
        assert!(text.contains("ring_lease_wait_ns_bucket{le=\"8192\"} 3\n"));
        assert!(text.contains("ring_lease_wait_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("ring_lease_wait_ns_sum 5200\n"));
        assert!(text.contains("ring_lease_wait_ns_count 3\n"));
        // Every line is either a comment or `name value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.starts_with("ring_"),
                "{line}"
            );
        }
    }
}
