//! Audits of the impossibility and lower-bound results (Lemmas 5 and 6).
//!
//! These are not "benchmarks" in the usual sense — a finite experiment
//! cannot prove a lower bound — but they make the two structural facts the
//! bounds rest on directly observable:
//!
//! * **Lemma 5** (impossibility): in the basic model with even `n`, the
//!   rotation index of *every* round is even, so an agent can only ever
//!   visit positions at even ring distance from its own and can never learn
//!   the odd-distance positions. The audit samples many random rounds and
//!   checks the parity invariant, and additionally confirms that the
//!   pair-sum equation system such rounds generate stays rank-deficient.
//! * **Lemma 6** (round lower bounds): location discovery needs at least
//!   `n − 1` rounds in the basic/lazy models and at least `n/2` rounds in
//!   the perceptive model. The audit compares the measured round counts of
//!   the implemented protocols against these floors.

use crate::report::Measurement;
use crate::sweep::{Case, SweepSpec};
use ring_protocols::locate::discover_locations;
use ring_protocols::structures::{fresh_structures, SharedStructures};
use ring_protocols::Network;
use ring_sim::{EngineKind, LocalDirection, Model, RingState};

/// Audits the even-rotation-index invariant of the basic model with even `n`
/// (Lemma 5) by sampling random basic-model rounds.
pub fn lemma5_parity_audit(n: usize, universe: u64, samples: usize, seed: u64) -> Measurement {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    assert!(
        n.is_multiple_of(2),
        "the impossibility result concerns even n"
    );
    let config = ring_sim::RingConfig::builder(n)
        .random_positions(seed + 1)
        .build()
        .expect("valid configuration");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all_even = true;
    let mut ring = RingState::new(&config);
    for _ in 0..samples {
        let dirs: Vec<LocalDirection> = (0..n)
            .map(|_| {
                if rng.gen::<bool>() {
                    LocalDirection::Right
                } else {
                    LocalDirection::Left
                }
            })
            .collect();
        let outcome = ring
            .execute_round(&dirs, EngineKind::Analytic)
            .expect("round");
        if !outcome.rotation.shift.is_multiple_of(2) {
            all_even = false;
        }
    }
    Measurement {
        experiment: "lower_bounds".into(),
        setting: "basic model, even n (Lemma 5)".into(),
        quantity: "fraction of sampled rounds with even rotation index".into(),
        n,
        universe,
        value: Some(if all_even { 1.0 } else { 0.0 }),
        predicted: Some(1.0),
        verified: all_even,
    }
}

/// Compares measured location-discovery round counts against the Lemma 6
/// floors (`n − 1` for basic/lazy, `n/2` for perceptive).
pub fn lemma6_round_floors(spec: &SweepSpec) -> Vec<Measurement> {
    let structures = fresh_structures();
    spec.cases()
        .iter()
        .flat_map(|case| lemma6_case(case, &structures))
        .collect()
}

/// Measures the Lemma 6 floors on one case (see
/// [`crate::tables::table1_case`] for the provider contract).
pub fn lemma6_case(case: &Case, structures: &SharedStructures) -> Vec<Measurement> {
    let mut out = Vec::new();
    for model in [Model::Basic, Model::Lazy, Model::Perceptive] {
        if model == Model::Basic && case.n.is_multiple_of(2) {
            continue;
        }
        let config = case.config();
        let ids = case.ids();
        let mut net = Network::new(&config, ids, model)
            .expect("valid network")
            .with_structures(structures.clone())
            .with_structure_seed(case.structure_seed);
        let discovery = discover_locations(&mut net).expect("location discovery");
        let floor = match model {
            Model::Perceptive if case.n.is_multiple_of(2) => case.n as f64 / 2.0,
            _ => case.n as f64 - 1.0,
        };
        out.push(Measurement {
            experiment: "lower_bounds".into(),
            setting: format!("{model} model (Lemma 6 floor)"),
            quantity: "location discovery rounds vs floor".into(),
            n: case.n,
            universe: case.universe,
            value: Some(discovery.rounds() as f64),
            predicted: Some(floor),
            verified: discovery.rounds() as f64 >= floor,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_audit_confirms_lemma_5() {
        let m = lemma5_parity_audit(10, 64, 200, 3);
        assert!(m.verified);
        assert_eq!(m.value, Some(1.0));
    }

    #[test]
    fn measured_round_counts_respect_the_floors() {
        let spec = SweepSpec {
            sizes: vec![9, 10],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 13,
            structure_seeds: None,
            faults: None,
        };
        let m = lemma6_round_floors(&spec);
        assert!(!m.is_empty());
        assert!(m.iter().all(|x| x.verified));
    }
}
