//! Measurement records and human-readable report formatting.

use serde::{Deserialize, Serialize};

/// One measured data point of an experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// The experiment the point belongs to (e.g. `"table1"`).
    pub experiment: String,
    /// The setting (e.g. `"basic model, even n"`).
    pub setting: String,
    /// The problem or quantity measured (e.g. `"leader election"`).
    pub quantity: String,
    /// Ring size.
    pub n: usize,
    /// Identifier universe size.
    pub universe: u64,
    /// The measured value (rounds, family size, …); `None` when the task is
    /// unsolvable in this setting.
    pub value: Option<f64>,
    /// The paper's asymptotic prediction evaluated at these parameters
    /// (constants set to 1), for shape comparison.
    pub predicted: Option<f64>,
    /// Whether the result was verified against ground truth.
    pub verified: bool,
}

impl Measurement {
    /// The ratio of measured value to prediction, if both are present —
    /// constant ratios across a sweep indicate the right asymptotic shape.
    pub fn ratio(&self) -> Option<f64> {
        match (self.value, self.predicted) {
            (Some(v), Some(p)) if p > 0.0 => Some(v / p),
            _ => None,
        }
    }

    /// Reconstructs a measurement from its JSON value (the inverse of the
    /// `Serialize` derive). Used by the distributed layer to render tables
    /// from merged shard records.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &serde::Value) -> Result<Self, String> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("measurement is missing `{key}`"))
        };
        let string = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("measurement `{key}` is not a string"))
        };
        let optional_f64 = |key: &str| -> Result<Option<f64>, String> {
            let v = field(key)?;
            if v.is_null() {
                Ok(None)
            } else {
                v.as_f64()
                    .map(Some)
                    .ok_or_else(|| format!("measurement `{key}` is not a number"))
            }
        };
        Ok(Measurement {
            experiment: string("experiment")?,
            setting: string("setting")?,
            quantity: string("quantity")?,
            n: field("n")?
                .as_u64()
                .ok_or("measurement `n` is not an integer")? as usize,
            universe: field("universe")?
                .as_u64()
                .ok_or("measurement `universe` is not an integer")?,
            value: optional_f64("value")?,
            predicted: optional_f64("predicted")?,
            verified: field("verified")?
                .as_bool()
                .ok_or("measurement `verified` is not a boolean")?,
        })
    }
}

/// Formats measurements as a GitHub-flavoured markdown table, one row per
/// measurement, in the given order.
pub fn format_markdown_table(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("| setting | quantity | n | N | measured | predicted (shape) | measured/predicted | verified |\n");
    out.push_str("|---|---|---:|---:|---:|---:|---:|---|\n");
    for m in measurements {
        let value = m
            .value
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "unsolvable".to_string());
        let predicted = m
            .predicted
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "—".to_string());
        let ratio = m
            .ratio()
            .map(|r| format!("{r:.2}"))
            .unwrap_or_else(|| "—".to_string());
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            m.setting,
            m.quantity,
            m.n,
            m.universe,
            value,
            predicted,
            ratio,
            if m.verified { "yes" } else { "NO" },
        ));
    }
    out
}

/// Averages the `value` of measurements sharing (setting, quantity, n,
/// universe), producing one row per group — useful to compress repetitions.
pub fn aggregate(measurements: &[Measurement]) -> Vec<Measurement> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(String, String, usize, u64), Vec<&Measurement>> = BTreeMap::new();
    for m in measurements {
        groups
            .entry((m.setting.clone(), m.quantity.clone(), m.n, m.universe))
            .or_default()
            .push(m);
    }
    groups
        .into_values()
        .map(|group| {
            let values: Vec<f64> = group.iter().filter_map(|m| m.value).collect();
            let mean = if values.is_empty() {
                None
            } else {
                Some(values.iter().sum::<f64>() / values.len() as f64)
            };
            Measurement {
                value: mean,
                verified: group.iter().all(|m| m.verified),
                ..group[0].clone()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(setting: &str, n: usize, value: Option<f64>) -> Measurement {
        Measurement {
            experiment: "test".into(),
            setting: setting.into(),
            quantity: "rounds".into(),
            n,
            universe: 64,
            value,
            predicted: Some(10.0),
            verified: true,
        }
    }

    #[test]
    fn markdown_table_contains_all_rows() {
        let rows = vec![sample("a", 8, Some(20.0)), sample("b", 9, None)];
        let table = format_markdown_table(&rows);
        assert!(table.contains("| a | rounds | 8 | 64 | 20 | 10.0 | 2.00 | yes |"));
        assert!(table.contains("unsolvable"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn aggregation_averages_repetitions() {
        let rows = vec![
            sample("a", 8, Some(10.0)),
            sample("a", 8, Some(20.0)),
            sample("b", 8, Some(5.0)),
        ];
        let agg = aggregate(&rows);
        assert_eq!(agg.len(), 2);
        let a = agg.iter().find(|m| m.setting == "a").unwrap();
        assert_eq!(a.value, Some(15.0));
    }

    #[test]
    fn ratio_requires_both_values() {
        assert_eq!(sample("a", 8, None).ratio(), None);
        assert_eq!(sample("a", 8, Some(20.0)).ratio(), Some(2.0));
    }

    #[test]
    fn from_json_round_trips_serialization() {
        for m in [sample("a", 8, Some(20.0)), sample("b", 9, None)] {
            let text = serde_json::to_string(&m).unwrap();
            let parsed = Measurement::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(parsed, m);
        }
        assert!(Measurement::from_json(&serde_json::from_str("{}").unwrap()).is_err());
    }
}
