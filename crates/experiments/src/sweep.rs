//! Sweep specifications: which configurations an experiment runs over.

use ring_combinat::shared::splitmix64;
use ring_protocols::IdAssignment;
use ring_sim::RingConfig;
use serde::{Deserialize, Serialize};

/// One concrete configuration of an experiment sweep.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Case {
    /// Ring size.
    pub n: usize,
    /// Identifier universe size.
    pub universe: u64,
    /// Seed from which positions, chirality and identifiers are derived.
    pub seed: u64,
    /// The public seed the case's distinguisher machinery hands its
    /// structure provider: the fixed protocol default under
    /// [`SweepSpec`]'s fixed schedule, or one of `K` schedule seeds under
    /// the per-case schedule (seed-diverse sweeps).
    pub structure_seed: u64,
}

impl Case {
    /// Materialises the hidden configuration of this case.
    pub fn config(&self) -> RingConfig {
        RingConfig::builder(self.n)
            .random_positions(self.seed.wrapping_mul(3) + 1)
            .random_chirality(self.seed.wrapping_mul(5) + 2)
            .build()
            .expect("sweep cases are always valid")
    }

    /// A worst-case variant of the configuration with a perfectly balanced
    /// chirality assignment (the adversarial case for even `n`).
    pub fn config_balanced(&self) -> RingConfig {
        RingConfig::builder(self.n)
            .random_positions(self.seed.wrapping_mul(3) + 1)
            .alternating_chirality()
            .build()
            .expect("sweep cases are always valid")
    }

    /// The identifier assignment of this case.
    pub fn ids(&self) -> IdAssignment {
        IdAssignment::random(self.n, self.universe, self.seed.wrapping_mul(7) + 3)
    }
}

/// The fault-injection axes of a sweep (see `ring_protocols::fault`): a
/// list of message-drop rates to sweep, plus the crash/churn/adversarial
/// knobs applied at every rate. All integers, so the axes thread
/// losslessly through fingerprints, worker argv and run manifests.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultAxes {
    /// Message-drop rates to sweep, in per mille (`0..=1000`).
    pub drops: Vec<u64>,
    /// Number of crash-stop stations per case.
    pub crashes: u64,
    /// Number of churning stations per case.
    pub churn: u64,
    /// Whether the adversarial activation schedule is in force.
    pub adversarial: bool,
}

impl FaultAxes {
    /// The default degradation sweep: clean baseline plus four escalating
    /// drop rates, no crashes, no churn, fair scheduling.
    pub fn standard() -> Self {
        FaultAxes {
            drops: vec![0, 50, 100, 200, 400],
            crashes: 0,
            churn: 0,
            adversarial: false,
        }
    }
}

/// A sweep: ring sizes × identifier-universe scalings × repetitions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Ring sizes to test.
    pub sizes: Vec<usize>,
    /// Universe sizes expressed as multiples of `n` (e.g. 4 means `N = 4n`).
    pub universe_factors: Vec<u64>,
    /// Number of random repetitions per (size, universe) pair.
    pub repetitions: u64,
    /// Base seed.
    pub seed: u64,
    /// The structure-seed schedule: `None` (fixed) gives every case the
    /// protocol-default `STRUCTURE_SEED`; `Some(K)` (per-case) rotates the
    /// cases through `K` distinct schedule seeds derived from the base
    /// seed (at most `STRONG_WINDOW` of them — beyond that, windows would
    /// repeat), so repetitions additionally sample the randomness of the
    /// combinatorial structures themselves. Against a content-addressed
    /// structure store the `K` seeds share one strong blob per universe
    /// (seeds are windows into one universal sequence), so the store stays
    /// near-constant in `K`.
    pub structure_seeds: Option<u64>,
    /// Fault-injection axes: `None` (the default everywhere but the
    /// `faults` experiment) runs clean synchronous rings and — like an
    /// absent seed schedule — folds nothing into the fingerprint, keeping
    /// clean-sweep fingerprints stable across this field's introduction.
    pub faults: Option<FaultAxes>,
}

impl SweepSpec {
    /// The default sweep used by the table experiments: a few odd and even
    /// ring sizes, sparse and dense identifier universes, three repetitions.
    pub fn standard() -> Self {
        SweepSpec {
            sizes: vec![15, 16, 31, 32, 63, 64],
            universe_factors: vec![4, 64],
            repetitions: 3,
            seed: 2015,
            structure_seeds: None,
            faults: None,
        }
    }

    /// A reduced sweep for quick smoke tests and benchmarks.
    pub fn quick() -> Self {
        SweepSpec {
            sizes: vec![15, 16, 32],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 7,
            structure_seeds: None,
            faults: None,
        }
    }

    /// A deterministic 64-bit fingerprint of the sweep parameters, used by
    /// the distributed layer to pin a run manifest to the spec that produced
    /// it: `resume` refuses to mix shards from different specs. Chains one
    /// splitmix64 round per coordinate (with length separators, so
    /// `sizes=[1,2]` and `sizes=[1], factors=[2,…]` cannot alias).
    pub fn fingerprint(&self) -> u64 {
        let mut h = splitmix64(0x05ee_d0fa_5eed ^ self.seed);
        h = splitmix64(h ^ self.sizes.len() as u64);
        for &n in &self.sizes {
            h = splitmix64(h ^ n as u64);
        }
        h = splitmix64(h ^ self.universe_factors.len() as u64);
        for &factor in &self.universe_factors {
            h = splitmix64(h ^ factor);
        }
        h = splitmix64(h ^ self.repetitions);
        // The seed schedule changes which structures every even-n case
        // executes, so it must change the fingerprint; the fixed schedule
        // folds nothing, keeping fixed-mode fingerprints stable across this
        // field's introduction.
        if let Some(k) = self.structure_seeds {
            h = splitmix64(h ^ 0x5eed_5c4e_d01e ^ k);
        }
        // The fault axes change what every case executes, so they must
        // change the fingerprint; clean sweeps fold nothing, mirroring the
        // seed-schedule rule above.
        if let Some(f) = &self.faults {
            h = splitmix64(h ^ 0xfa17_ca5e_d01e ^ f.drops.len() as u64);
            for &drop in &f.drops {
                h = splitmix64(h ^ drop);
            }
            h = splitmix64(h ^ f.crashes);
            h = splitmix64(h ^ f.churn);
            h = splitmix64(h ^ f.adversarial as u64);
        }
        h
    }

    /// Enumerates the concrete cases of the sweep.
    pub fn cases(&self) -> Vec<Case> {
        let mut out = Vec::new();
        for &n in &self.sizes {
            for &factor in &self.universe_factors {
                for rep in 0..self.repetitions {
                    let structure_seed = match self.structure_seeds {
                        None => ring_protocols::coordination::nontrivial::STRUCTURE_SEED,
                        Some(k) => schedule_seed(self.seed, out.len() as u64 % k.max(1)),
                    };
                    out.push(Case {
                        n,
                        universe: factor * n as u64,
                        seed: case_seed(self.seed, n, factor, rep),
                        structure_seed,
                    });
                }
            }
        }
        out
    }
}

/// The `slot`-th schedule seed of a seed-diverse sweep (slots cycle through
/// `0..K`): a splitmix64 chain over the base seed, so every participant of
/// a sharded run derives the same `K` seeds independently.
///
/// The chain is additionally steered so that slot `s` lands on strong
/// window offset `s % STRONG_WINDOW` — hashing alone would let two of `K`
/// schedule seeds collide on a window (birthday over 64 slots) and
/// silently collapse the promised structure diversity. With steering,
/// any `K ≤ STRONG_WINDOW` schedule seeds are guaranteed pairwise-distinct
/// windows, i.e. genuinely different strong sets at every round index.
pub fn schedule_seed(base: u64, slot: u64) -> u64 {
    let target = (slot % ring_combinat::STRONG_WINDOW) as usize;
    let mut seed = splitmix64(splitmix64(base ^ 0xd5ee_d5ee_d5ee_d5ee) ^ slot);
    while ring_combinat::strong_offset(seed) != target {
        seed = splitmix64(seed);
    }
    seed
}

/// Derives a case seed by chaining splitmix64 over `(seed, n, factor,
/// rep)`. The previous scheme packed the coordinates into shifted bit
/// fields (`seed + rep + (n << 20) + (factor << 40)`), which collides as
/// soon as a coordinate overflows its field — e.g. universe factors
/// differing by exactly `2^24` land on the same seed because their
/// 40-bit-shifted contributions wrap to the same value. Chaining a full
/// mixing round per coordinate makes every coordinate affect all 64 bits.
fn case_seed(seed: u64, n: usize, factor: u64, rep: u64) -> u64 {
    let mut s = splitmix64(seed ^ 0xd1b54a32d192ed03);
    s = splitmix64(s ^ n as u64);
    s = splitmix64(s ^ factor);
    s = splitmix64(s ^ rep);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_sweep_enumerates_all_cases() {
        let spec = SweepSpec::standard();
        let cases = spec.cases();
        assert_eq!(
            cases.len(),
            spec.sizes.len() * spec.universe_factors.len() * spec.repetitions as usize
        );
        for case in &cases {
            assert!(case.universe >= case.n as u64);
            let config = case.config();
            assert_eq!(config.len(), case.n);
            assert_eq!(case.ids().len(), case.n);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = SweepSpec::quick().cases();
        let b = SweepSpec::quick().cases();
        assert_eq!(a, b);
        assert_eq!(a[0].config(), b[0].config());
    }

    /// Regression test for the shifted-field seed derivation: universe
    /// factors differing by `2^24` used to wrap their 40-bit-shifted
    /// contribution to the same value and collide, as did any coordinates
    /// overflowing their packed fields. Every case of an adversarial spec
    /// must get its own seed.
    #[test]
    fn distinct_cases_get_distinct_seeds() {
        use std::collections::HashSet;
        let adversarial = SweepSpec {
            sizes: vec![15, 16, 1 << 21],
            universe_factors: vec![1, 1 + (1 << 24), 1 + (1 << 25)],
            repetitions: 2,
            seed: 0,
            structure_seeds: None,
            faults: None,
        };
        let cases = adversarial.cases();
        let seeds: HashSet<u64> = cases.iter().map(|c| c.seed).collect();
        assert_eq!(
            seeds.len(),
            cases.len(),
            "case seeds collide: {:?}",
            cases
                .iter()
                .map(|c| (c.n, c.universe, c.seed))
                .collect::<Vec<_>>()
        );
        // The old scheme's canonical collision: factors 2^24 apart.
        assert_ne!(cases[0].seed, cases[2].seed);

        // Different base seeds shift every case seed.
        let reseeded = SweepSpec {
            seed: 1,
            ..adversarial.clone()
        };
        assert!(reseeded
            .cases()
            .iter()
            .zip(&cases)
            .all(|(a, b)| a.seed != b.seed));
    }

    #[test]
    fn seed_schedules_rotate_structure_seeds_and_move_the_fingerprint() {
        use ring_protocols::coordination::nontrivial::STRUCTURE_SEED;
        use std::collections::BTreeSet;
        let fixed = SweepSpec::quick();
        assert!(fixed
            .cases()
            .iter()
            .all(|c| c.structure_seed == STRUCTURE_SEED));

        let diverse = SweepSpec {
            structure_seeds: Some(2),
            ..SweepSpec::quick()
        };
        let cases = diverse.cases();
        // Everything except the structure seed matches the fixed sweep.
        for (a, b) in cases.iter().zip(fixed.cases()) {
            assert_eq!((a.n, a.universe, a.seed), (b.n, b.universe, b.seed));
        }
        // Exactly K distinct schedule seeds, cycling in case order.
        let seeds: BTreeSet<u64> = cases.iter().map(|c| c.structure_seed).collect();
        assert_eq!(seeds.len(), 2);
        assert_eq!(cases[0].structure_seed, cases[2].structure_seed);
        assert_ne!(cases[0].structure_seed, cases[1].structure_seed);
        assert_eq!(cases[0].structure_seed, schedule_seed(diverse.seed, 0));
        // Schedule seeds are steered onto pairwise-distinct strong windows
        // (for any base seed and any K up to the window count), so seed
        // diversity can never silently collapse to fewer effective seeds.
        for base in [0u64, 7, 2015, u64::MAX] {
            let offsets: BTreeSet<usize> = (0..ring_combinat::STRONG_WINDOW)
                .map(|slot| ring_combinat::strong_offset(schedule_seed(base, slot)))
                .collect();
            assert_eq!(offsets.len(), ring_combinat::STRONG_WINDOW as usize);
        }

        // The schedule is part of the identity distributed runs pin.
        assert_eq!(fixed.fingerprint(), SweepSpec::quick().fingerprint());
        assert_ne!(fixed.fingerprint(), diverse.fingerprint());
        assert_ne!(
            diverse.fingerprint(),
            SweepSpec {
                structure_seeds: Some(3),
                ..SweepSpec::quick()
            }
            .fingerprint()
        );
    }
}
