//! Regeneration of Tables I and II of the paper: measured round counts of
//! the four problems in every setting, against the paper's asymptotic
//! predictions.

use crate::report::Measurement;
use crate::sweep::{Case, SweepSpec};
use ring_combinat::bounds;
use ring_protocols::coordination::leader::elect_leader_with_common_direction;
use ring_protocols::coordination::nontrivial::nontrivial_move_with_leader;
use ring_protocols::locate::basic_odd::discover_locations_basic_odd_with_leader;
use ring_protocols::locate::lazy::discover_locations_lazy_with_leader;
use ring_protocols::locate::verify_location_discovery;
use ring_protocols::pipeline::{measure_problem_seeded, Problem};
use ring_protocols::structures::{fresh_structures, SharedStructures};
use ring_protocols::{Network, ProtocolError};
use ring_sim::{Frame, Model, Parity};

/// The settings (rows) of Table I.
fn settings_for(n: usize) -> Vec<(Model, &'static str)> {
    if n % 2 == 1 {
        vec![(Model::Basic, "odd n")]
    } else {
        vec![
            (Model::Basic, "basic model, even n"),
            (Model::Lazy, "lazy model, even n"),
            (Model::Perceptive, "perceptive model, even n"),
        ]
    }
}

/// The paper's Table I prediction (constants 1) for one cell.
fn table1_prediction(setting: &str, problem: Problem, n: usize, universe: u64) -> Option<f64> {
    let log_n_univ = (universe as f64).log2().max(1.0);
    let odd = |problem: Problem| match problem {
        Problem::LeaderElection => Some(log_n_univ),
        Problem::NontrivialMove => Some(((universe as f64 / n as f64).max(2.0)).log2().max(1.0)),
        Problem::DirectionAgreement => Some(1.0),
        Problem::LocationDiscovery => Some(n as f64 + log_n_univ),
    };
    let superlinear = bounds::nontrivial_move_round_bound(universe, n);
    match setting {
        "odd n" => odd(problem),
        "basic model, even n" => match problem {
            Problem::LocationDiscovery => None,
            _ => Some(superlinear),
        },
        "lazy model, even n" => match problem {
            Problem::LocationDiscovery => Some(n as f64 + superlinear),
            _ => Some(superlinear),
        },
        "perceptive model, even n" => match problem {
            Problem::LocationDiscovery => {
                Some(bounds::perceptive_location_discovery_bound(universe, n))
            }
            _ => Some(bounds::perceptive_nontrivial_move_bound(universe, n)),
        },
        _ => None,
    }
}

/// Runs the Table I experiment over a sweep (serially, constructing every
/// combinatorial structure from scratch — the `ringlab` CLI runs the same
/// cases through the parallel engine and a shared structure cache).
pub fn table1(spec: &SweepSpec) -> Vec<Measurement> {
    let structures = fresh_structures();
    spec.cases()
        .iter()
        .flat_map(|case| table1_case(case, &structures))
        .collect()
}

/// Measures one Table I case: every problem in every setting applicable to
/// the case's parity, against the paper's predictions. Structures come from
/// the given provider, so sweep harnesses can share one cache across cases
/// and worker threads.
pub fn table1_case(case: &Case, structures: &SharedStructures) -> Vec<Measurement> {
    // The adversarial configuration for even n is the balanced chirality
    // split; odd n uses the generic random one.
    let config = if case.n.is_multiple_of(2) {
        case.config_balanced()
    } else {
        case.config()
    };
    let ids = case.ids();
    let mut out = Vec::new();
    for (model, setting) in settings_for(case.n) {
        for problem in Problem::ALL {
            let cost = measure_problem_seeded(
                &config,
                &ids,
                model,
                problem,
                structures,
                case.structure_seed,
            )
            .expect("table 1 experiment failed");
            out.push(Measurement {
                experiment: "table1".into(),
                setting: setting.into(),
                quantity: problem.to_string(),
                n: case.n,
                universe: case.universe,
                value: cost.rounds.map(|r| r as f64),
                predicted: table1_prediction(setting, problem, case.n, case.universe),
                verified: cost.verified,
            });
        }
    }
    out
}

/// The paper's Table II prediction (constants 1) for one cell.
fn table2_prediction(setting: &str, problem: Problem, n: usize, universe: u64) -> Option<f64> {
    let log_n_univ = (universe as f64).log2().max(1.0);
    match (setting, problem) {
        ("odd n", Problem::LeaderElection) => Some(log_n_univ),
        ("odd n", Problem::NontrivialMove) => {
            Some(((universe as f64 / n as f64).max(2.0)).log2().max(1.0))
        }
        ("odd n", Problem::LocationDiscovery) => Some(n as f64 + log_n_univ),
        ("basic model, even n", Problem::LocationDiscovery) => None,
        ("basic model, even n", _) => Some(log_n_univ * log_n_univ),
        ("lazy model, even n", Problem::LocationDiscovery) => Some(n as f64 + log_n_univ),
        ("lazy model, even n", _) => Some(log_n_univ),
        ("perceptive model, even n", Problem::LocationDiscovery) => {
            Some(n as f64 / 2.0 + (n as f64).sqrt() * log_n_univ)
        }
        ("perceptive model, even n", _) => Some(log_n_univ),
        _ => None,
    }
}

/// Runs the Table II experiment (agents share a common sense of direction)
/// over a sweep. Direction agreement is trivial in this setting, so only
/// leader election, nontrivial move and location discovery are measured —
/// exactly the columns the paper lists.
pub fn table2(spec: &SweepSpec) -> Vec<Measurement> {
    let structures = fresh_structures();
    spec.cases()
        .iter()
        .flat_map(|case| table2_case(case, &structures))
        .collect()
}

/// Measures one Table II case (see [`table1_case`] for the provider
/// contract).
pub fn table2_case(case: &Case, structures: &SharedStructures) -> Vec<Measurement> {
    let mut out = Vec::new();
    for (model, setting) in settings_for(case.n) {
        for problem in [
            Problem::LeaderElection,
            Problem::NontrivialMove,
            Problem::LocationDiscovery,
        ] {
            let (value, verified) = match measure_common_direction(case, model, problem, structures)
            {
                Ok(v) => v,
                Err(e) => panic!("table 2 experiment failed: {e}"),
            };
            out.push(Measurement {
                experiment: "table2".into(),
                setting: setting.into(),
                quantity: problem.to_string(),
                n: case.n,
                universe: case.universe,
                value,
                predicted: table2_prediction(setting, problem, case.n, case.universe),
                verified,
            });
        }
    }
    out
}

/// Measures one Table II cell: all agents share the objective clockwise
/// direction as their "right" (common sense of direction), so protocols are
/// run with identity frames.
fn measure_common_direction(
    case: &Case,
    model: Model,
    problem: Problem,
    structures: &SharedStructures,
) -> Result<(Option<f64>, bool), ProtocolError> {
    // Common sense of direction: every agent's chirality is aligned, and the
    // shared frame is public knowledge.
    let config = ring_sim::RingConfig::builder(case.n)
        .random_positions(case.seed.wrapping_mul(3) + 1)
        .aligned_chirality()
        .build()
        .expect("valid configuration");
    let ids = case.ids();
    let mut net = Network::new(&config, ids, model)?
        .with_structures(structures.clone())
        .with_structure_seed(case.structure_seed);
    let frames = vec![Frame::identity(); case.n];

    match problem {
        Problem::LeaderElection => {
            let election = elect_leader_with_common_direction(&mut net, &frames)?;
            Ok((
                Some(election.rounds() as f64),
                election.leaders().count() == 1,
            ))
        }
        Problem::NontrivialMove => {
            let election = elect_leader_with_common_direction(&mut net, &frames)?;
            let before = net.rounds_used();
            let nm = nontrivial_move_with_leader(&mut net, election.leader_flags())?;
            let rounds = election.rounds() + (net.rounds_used() - before);
            let verified =
                ring_protocols::coordination::nontrivial::verify_nontrivial(&mut net, &nm);
            Ok((Some(rounds as f64), verified))
        }
        Problem::LocationDiscovery => match (model, Parity::of(case.n)) {
            (Model::Basic, Parity::Even) => Ok((None, true)),
            (Model::Perceptive, Parity::Even) => {
                let discovery =
                    ring_protocols::perceptive::distances::discover_locations_perceptive(&mut net)?;
                Ok((
                    Some(discovery.rounds() as f64),
                    verify_location_discovery(&net, &discovery),
                ))
            }
            (_, parity) => {
                let election = elect_leader_with_common_direction(&mut net, &frames)?;
                let discovery = match (model, parity) {
                    (Model::Lazy, _) => discover_locations_lazy_with_leader(&mut net, &election)?,
                    _ => discover_locations_basic_odd_with_leader(&mut net, &election)?,
                };
                Ok((
                    Some(discovery.rounds() as f64),
                    verify_location_discovery(&net, &discovery),
                ))
            }
        },
        Problem::DirectionAgreement => Ok((Some(0.0), true)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quick_sweep_produces_verified_measurements() {
        let spec = SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 3,
            structure_seeds: None,
            faults: None,
        };
        let measurements = table1(&spec);
        // Odd case: 4 problems; even case: 3 models × 4 problems.
        assert_eq!(measurements.len(), 4 + 12);
        assert!(measurements.iter().all(|m| m.verified));
        // The basic-even location-discovery cell is the only unsolvable one.
        let unsolvable: Vec<_> = measurements.iter().filter(|m| m.value.is_none()).collect();
        assert_eq!(unsolvable.len(), 1);
        assert_eq!(unsolvable[0].setting, "basic model, even n");
    }

    #[test]
    fn table2_quick_sweep_produces_verified_measurements() {
        let spec = SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 5,
            structure_seeds: None,
            faults: None,
        };
        let measurements = table2(&spec);
        assert_eq!(measurements.len(), 3 + 9);
        assert!(measurements.iter().all(|m| m.verified));
    }
}
