//! The fault-degradation experiment: how far the paper's coordination
//! protocols degrade under message drop, crash-stop stations, churn and
//! adversarial scheduling.
//!
//! Each measured point runs one protocol on one sweep case under one
//! deterministic [`FaultPlan`](ring_protocols::fault::FaultPlan) (derived
//! from the case seed, so sharded sweeps replay bit-identical faults) on
//! the event-driven reference executor, with a hard round cap. Under
//! faults, failure is a *measurement result*, not a verification error:
//! every emitted [`Measurement`] carries `verified: true`, and a run that
//! failed or timed out reports `value: None` in its rounds row. Per
//! protocol the experiment emits
//!
//! * a `"<problem>: rounds"` row — rounds to completion, `None` when the
//!   run failed or timed out, and
//! * a `"<problem>: timeout"` row — `1` when the round cap fired, else `0`,
//!
//! from which the harness renders failure rates, timeout rates and
//! rounds-to-completion percentiles per fault rate × n × protocol.

use crate::report::Measurement;
use crate::sweep::Case;
use ring_protocols::fault::FaultParams;
use ring_protocols::pipeline::{measure_problem_faulty, FaultyOutcome, Problem};
use ring_protocols::structures::SharedStructures;
use ring_sim::Model;

/// Hard cap on executor rounds per faulty protocol run. The paper's
/// protocols are internally budgeted, so the cap only fires on runs that
/// degrade into genuinely pathological schedules; it bounds the wall clock
/// of every sweep case regardless of fault rate.
pub const FAULT_ROUND_LIMIT: u64 = 20_000;

/// The protocols the degradation sweep measures, in report order.
/// Location discovery is excluded: it is unsolvable in the basic model for
/// even `n` already on clean rings, so it has no meaningful degradation
/// axis here.
pub const FAULT_PROBLEMS: [Problem; 3] = [
    Problem::LeaderElection,
    Problem::NontrivialMove,
    Problem::DirectionAgreement,
];

/// The human-readable setting label of a fault configuration (the `setting`
/// column every degradation row is grouped by).
pub fn fault_setting(params: &FaultParams) -> String {
    let mut extras = String::new();
    if params.crashes > 0 {
        extras.push_str(&format!(", crash {}", params.crashes));
    }
    if params.churn > 0 {
        extras.push_str(&format!(", churn {}", params.churn));
    }
    if params.adversarial {
        extras.push_str(", adversarial");
    }
    format!("drop {}/1000{}", params.drop_per_mille, extras)
}

/// Measures one (case, fault-parameter) point: every protocol of
/// [`FAULT_PROBLEMS`] in the basic model under the deterministic fault
/// plan derived from the case seed. Two measurements per protocol (rounds
/// and timeout flag); see the module docs for their semantics.
pub fn faults_case(
    case: &Case,
    params: FaultParams,
    structures: &SharedStructures,
) -> Vec<Measurement> {
    let config = case.config();
    let ids = case.ids();
    let setting = fault_setting(&params);
    let mut out = Vec::new();
    for problem in FAULT_PROBLEMS {
        let cost = measure_problem_faulty(
            &config,
            &ids,
            Model::Basic,
            problem,
            structures,
            case.structure_seed,
            params,
            case.seed,
            FAULT_ROUND_LIMIT,
        );
        out.push(Measurement {
            experiment: "faults".into(),
            setting: setting.clone(),
            quantity: format!("{problem}: rounds"),
            n: case.n,
            universe: case.universe,
            value: cost.rounds.map(|r| r as f64),
            predicted: None,
            verified: true,
        });
        out.push(Measurement {
            experiment: "faults".into(),
            setting: setting.clone(),
            quantity: format!("{problem}: timeout"),
            n: case.n,
            universe: case.universe,
            value: Some(u64::from(cost.outcome == FaultyOutcome::TimedOut) as f64),
            predicted: None,
            verified: true,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepSpec;
    use ring_protocols::structures::fresh_structures;

    #[test]
    fn clean_baseline_completes_every_protocol() {
        let spec = SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 3,
            structure_seeds: None,
            faults: None,
        };
        let structures = fresh_structures();
        for case in spec.cases() {
            let rows = faults_case(&case, FaultParams::default(), &structures);
            assert_eq!(rows.len(), 2 * FAULT_PROBLEMS.len());
            for row in rows.iter().filter(|m| m.quantity.ends_with("rounds")) {
                assert!(row.value.is_some(), "{}: {}", row.setting, row.quantity);
            }
            for row in rows.iter().filter(|m| m.quantity.ends_with("timeout")) {
                assert_eq!(row.value, Some(0.0));
            }
            assert!(rows.iter().all(|m| m.verified));
        }
    }

    #[test]
    fn heavy_drop_degrades_at_least_one_protocol() {
        let spec = SweepSpec {
            sizes: vec![8],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 3,
            structure_seeds: None,
            faults: None,
        };
        let case = &spec.cases()[0];
        let rows = faults_case(
            case,
            FaultParams {
                drop_per_mille: 1000,
                ..FaultParams::default()
            },
            &fresh_structures(),
        );
        assert!(rows
            .iter()
            .filter(|m| m.quantity.ends_with("rounds"))
            .any(|m| m.value.is_none()));
    }

    #[test]
    fn measurements_are_deterministic() {
        let spec = SweepSpec {
            sizes: vec![9],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 5,
            structure_seeds: None,
            faults: None,
        };
        let case = &spec.cases()[0];
        let params = FaultParams {
            drop_per_mille: 200,
            crashes: 1,
            churn: 1,
            adversarial: true,
        };
        let a = faults_case(case, params, &fresh_structures());
        let b = faults_case(case, params, &fresh_structures());
        assert_eq!(a, b);
    }

    #[test]
    fn setting_labels_encode_every_knob() {
        assert_eq!(fault_setting(&FaultParams::default()), "drop 0/1000");
        assert_eq!(
            fault_setting(&FaultParams {
                drop_per_mille: 100,
                crashes: 2,
                churn: 1,
                adversarial: true,
            }),
            "drop 100/1000, crash 2, churn 1, adversarial"
        );
    }
}
