//! # ring-experiments
//!
//! Experiment harness that regenerates the evaluation artefacts of
//! "Deterministic Symmetry Breaking in Ring Networks": the complexity
//! tables (Tables I and II), the reduction figures (Figures 1 and 2), the
//! distinguisher-size scaling of Section IV and the impossibility /
//! lower-bound audits of Section II.
//!
//! Each experiment is a pure function from a [`SweepSpec`] (or one of its
//! [`Case`]s) to a set of [`Measurement`]s, so the same code backs the
//! `ringlab` command-line interface of the `ring-harness` crate and the
//! Criterion benchmarks in the `ring-bench` crate. Every experiment comes
//! in two granularities:
//!
//! * a whole-sweep function (e.g. [`tables::table1`]) that runs serially
//!   and constructs every combinatorial structure from scratch, and
//! * a per-case function (e.g. [`tables::table1_case`]) taking a
//!   [`SharedStructures`](ring_protocols::structures::SharedStructures)
//!   provider, which is what the `ring-harness` parallel engine fans out
//!   over worker threads with a shared structure cache.
//!
//! Run experiments with the unified CLI (all former per-experiment
//! binaries are thin wrappers over it):
//!
//! ```text
//! cargo run --release -p ring-harness --bin ringlab -- table1
//! cargo run --release -p ring-harness --bin ringlab -- all --quick --jobs 2
//! cargo run --release -p ring-harness --bin ringlab -- \
//!     sweep --sizes 32,64 --universe-factors 4,64 --reps 5 --jobs 8
//! ```
//!
//! Results stream as JSON-lines while the sweep runs and are printed as
//! markdown tables at the end.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod distinguisher_scaling;
pub mod faults;
pub mod lower_bounds;
pub mod reductions;
pub mod report;
pub mod sweep;
pub mod tables;

pub use report::{format_markdown_table, Measurement};
pub use sweep::{Case, FaultAxes, SweepSpec};
