//! # ring-experiments
//!
//! Experiment harness that regenerates the evaluation artefacts of
//! "Deterministic Symmetry Breaking in Ring Networks": the complexity
//! tables (Tables I and II), the reduction figures (Figures 1 and 2), the
//! distinguisher-size scaling of Section IV and the impossibility /
//! lower-bound audits of Section II.
//!
//! Each experiment is a pure function from a [`SweepSpec`] to a set of
//! [`Measurement`]s, so the same code backs the command-line binaries
//! (`table1`, `table2`, `fig1_reductions`, `fig2_reductions`,
//! `distinguisher_scaling`, `lower_bounds`, `repro_all`) and the Criterion
//! benchmarks in the `ring-bench` crate. Results are printed as markdown
//! tables and can be serialised to JSON for archival in `EXPERIMENTS.md`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod distinguisher_scaling;
pub mod lower_bounds;
pub mod reductions;
pub mod report;
pub mod sweep;
pub mod tables;

pub use report::{format_markdown_table, Measurement};
pub use sweep::{Case, SweepSpec};
