//! Audits the impossibility result (Lemma 5) and the location-discovery
//! round floors (Lemma 6).

use ring_experiments::lower_bounds::{lemma5_parity_audit, lemma6_round_floors};
use ring_experiments::report::format_markdown_table;
use ring_experiments::SweepSpec;

fn main() {
    let mut measurements = vec![
        lemma5_parity_audit(16, 256, 2000, 1),
        lemma5_parity_audit(64, 4096, 2000, 2),
    ];
    let spec = if std::env::args().any(|a| a == "--quick") {
        SweepSpec::quick()
    } else {
        SweepSpec::standard()
    };
    measurements.extend(lemma6_round_floors(&spec));
    println!("# Lower-bound audits (Lemmas 5 and 6)\n");
    println!("{}", format_markdown_table(&measurements));
    if let Ok(json) = serde_json::to_string_pretty(&measurements) {
        let _ = std::fs::write("results/lower_bounds.json", json);
    }
}
