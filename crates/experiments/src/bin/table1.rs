//! Regenerates Table I of the paper (general setting: no common sense of
//! direction): measured rounds of leader election, nontrivial move,
//! direction agreement and location discovery in every setting.

use ring_experiments::report::{aggregate, format_markdown_table};
use ring_experiments::tables::table1;
use ring_experiments::SweepSpec;

fn main() {
    let spec = if std::env::args().any(|a| a == "--quick") {
        SweepSpec::quick()
    } else {
        SweepSpec::standard()
    };
    let measurements = table1(&spec);
    println!("# Table I — deterministic solutions in the general setting\n");
    println!("{}", format_markdown_table(&aggregate(&measurements)));
    if let Ok(json) = serde_json::to_string_pretty(&measurements) {
        let _ = std::fs::write("results/table1.json", json);
    }
}
