//! Regenerates Table II of the paper (agents share a common sense of
//! direction).

use ring_experiments::report::{aggregate, format_markdown_table};
use ring_experiments::tables::table2;
use ring_experiments::SweepSpec;

fn main() {
    let spec = if std::env::args().any(|a| a == "--quick") {
        SweepSpec::quick()
    } else {
        SweepSpec::standard()
    };
    let measurements = table2(&spec);
    println!("# Table II — deterministic solutions with a common sense of direction\n");
    println!("{}", format_markdown_table(&aggregate(&measurements)));
    if let Ok(json) = serde_json::to_string_pretty(&measurements) {
        let _ = std::fs::write("results/table2.json", json);
    }
}
