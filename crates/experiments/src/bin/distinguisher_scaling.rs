//! Measures the scaling of distinguishers, selective families and the
//! distinguisher-driven weak nontrivial-move protocol (Section IV,
//! Corollaries 26–29).

use ring_experiments::distinguisher_scaling::{family_sizes, weak_nontrivial_move_rounds, ScalingSpec};
use ring_experiments::report::format_markdown_table;

fn main() {
    let spec = ScalingSpec::standard();
    let mut measurements = family_sizes(&spec);
    measurements.extend(weak_nontrivial_move_rounds(&spec));
    println!("# Distinguisher and selective-family scaling (Section IV)\n");
    println!("{}", format_markdown_table(&measurements));
    if let Ok(json) = serde_json::to_string_pretty(&measurements) {
        let _ = std::fs::write("results/distinguisher_scaling.json", json);
    }
}
