//! Regenerates Figure 2: reduction overheads in the basic model with even n,
//! including the non-constructive (randomized) direction-agreement →
//! nontrivial-move edge of Lemma 15.

use ring_experiments::reductions::{randomized_da_to_nm, reductions};
use ring_experiments::report::{aggregate, format_markdown_table};
use ring_experiments::SweepSpec;
use ring_sim::Model;

fn main() {
    let base = if std::env::args().any(|a| a == "--quick") {
        SweepSpec::quick()
    } else {
        SweepSpec::standard()
    };
    let spec = SweepSpec {
        sizes: base.sizes.iter().copied().filter(|n| n % 2 == 0).collect(),
        ..base
    };
    let mut measurements = reductions(&spec, Model::Basic);
    measurements.extend(randomized_da_to_nm(&spec, Model::Basic));
    println!("# Figure 2 — reductions among coordination problems (basic model, even n)\n");
    println!("{}", format_markdown_table(&aggregate(&measurements)));
    if let Ok(json) = serde_json::to_string_pretty(&measurements) {
        let _ = std::fs::write("results/fig2_reductions.json", json);
    }
}
