//! Runs every experiment of the reproduction in one go and prints the
//! markdown tables that EXPERIMENTS.md records.

use ring_experiments::distinguisher_scaling::{family_sizes, weak_nontrivial_move_rounds, ScalingSpec};
use ring_experiments::lower_bounds::{lemma5_parity_audit, lemma6_round_floors};
use ring_experiments::reductions::{randomized_da_to_nm, reductions};
use ring_experiments::report::{aggregate, format_markdown_table};
use ring_experiments::tables::{table1, table2};
use ring_experiments::SweepSpec;
use ring_sim::Model;

fn main() {
    let spec = if std::env::args().any(|a| a == "--quick") {
        SweepSpec::quick()
    } else {
        SweepSpec::standard()
    };

    println!("# Table I\n");
    println!("{}", format_markdown_table(&aggregate(&table1(&spec))));

    println!("\n# Table II\n");
    println!("{}", format_markdown_table(&aggregate(&table2(&spec))));

    println!("\n# Figure 1 (lazy / perceptive / odd n reductions)\n");
    let mut fig1 = Vec::new();
    for model in [Model::Lazy, Model::Perceptive] {
        fig1.extend(reductions(&spec, model));
    }
    println!("{}", format_markdown_table(&aggregate(&fig1)));

    println!("\n# Figure 2 (basic model, even n reductions)\n");
    let even_spec = SweepSpec {
        sizes: spec.sizes.iter().copied().filter(|n| n % 2 == 0).collect(),
        ..spec.clone()
    };
    let mut fig2 = reductions(&even_spec, Model::Basic);
    fig2.extend(randomized_da_to_nm(&even_spec, Model::Basic));
    println!("{}", format_markdown_table(&aggregate(&fig2)));

    println!("\n# Distinguisher / selective family scaling\n");
    let scaling = ScalingSpec::standard();
    let mut ds = family_sizes(&scaling);
    ds.extend(weak_nontrivial_move_rounds(&scaling));
    println!("{}", format_markdown_table(&ds));

    println!("\n# Lower-bound audits\n");
    let mut lb = vec![lemma5_parity_audit(16, 256, 2000, 1)];
    lb.extend(lemma6_round_floors(&spec));
    println!("{}", format_markdown_table(&lb));
}
