//! Regenerates Figure 1: reduction overheads among the coordination
//! problems when n is odd or the model is lazy / perceptive.

use ring_experiments::reductions::reductions;
use ring_experiments::report::{aggregate, format_markdown_table};
use ring_experiments::SweepSpec;
use ring_sim::Model;

fn main() {
    let spec = if std::env::args().any(|a| a == "--quick") {
        SweepSpec::quick()
    } else {
        SweepSpec::standard()
    };
    let mut measurements = Vec::new();
    for model in [Model::Lazy, Model::Perceptive] {
        measurements.extend(reductions(&spec, model));
    }
    // Odd sizes in the basic model also belong to Figure 1.
    let odd_spec = SweepSpec {
        sizes: spec.sizes.iter().copied().filter(|n| n % 2 == 1).collect(),
        ..spec
    };
    measurements.extend(reductions(&odd_spec, Model::Basic));
    let fig1: Vec<_> = measurements
        .into_iter()
        .filter(|m| m.experiment == "fig1")
        .collect();
    println!("# Figure 1 — reductions among coordination problems (odd n / lazy / perceptive)\n");
    println!("{}", format_markdown_table(&aggregate(&fig1)));
    if let Ok(json) = serde_json::to_string_pretty(&fig1) {
        let _ = std::fs::write("results/fig1_reductions.json", json);
    }
}
