//! Regeneration of Figures 1 and 2: the incremental cost of each reduction
//! edge between the coordination problems.
//!
//! Figure 1 covers the settings where `n` is odd or the model is lazy /
//! perceptive; Figure 2 covers the basic model with even `n`, where the
//! "direction agreement → leader election" edge costs `O(log² N)`
//! constructively (emptiness testing) and `O(log N)` with the randomized
//! construction of Lemma 15.

use crate::report::Measurement;
use crate::sweep::{Case, SweepSpec};
use ring_protocols::coordination::diragr::agree_direction_with_move;
use ring_protocols::coordination::leader::{
    elect_leader_with_common_direction, elect_leader_with_move,
};
use ring_protocols::coordination::nontrivial::{
    nontrivial_move_common_randomized, nontrivial_move_with_leader, solve_nontrivial_move,
};
use ring_protocols::structures::{fresh_structures, SharedStructures};
use ring_protocols::{Network, ProtocolError};
use ring_sim::Model;

/// The reduction edges measured for the figures.
pub const EDGES: [&str; 6] = [
    "leader election -> nontrivial move",
    "leader election -> direction agreement",
    "nontrivial move -> direction agreement",
    "nontrivial move -> leader election",
    "direction agreement -> leader election",
    "direction agreement -> nontrivial move",
];

/// The paper's predicted overhead (constants 1) of one reduction edge.
fn predicted(edge: &str, universe: u64, basic_even: bool) -> Option<f64> {
    let log_n = (universe as f64).log2().max(1.0);
    match edge {
        "leader election -> nontrivial move" => Some(1.0),
        "leader election -> direction agreement" => Some(1.0),
        "nontrivial move -> direction agreement" => Some(1.0),
        "nontrivial move -> leader election" => Some(log_n),
        "direction agreement -> leader election" => {
            Some(if basic_even { log_n * log_n } else { log_n })
        }
        "direction agreement -> nontrivial move" => {
            Some(if basic_even { log_n * log_n } else { log_n })
        }
        _ => None,
    }
}

/// Measures the incremental rounds of one reduction edge on one
/// configuration: the prerequisite problem is solved first (not counted) and
/// only the rounds of the reduction itself are reported.
fn measure_edge(net: &mut Network<'_>, edge: &str) -> Result<(u64, bool), ProtocolError> {
    match edge {
        "leader election -> nontrivial move" => {
            let nm0 = solve_nontrivial_move(net)?;
            let election = elect_leader_with_move(net, &nm0)?;
            let before = net.rounds_used();
            let nm = nontrivial_move_with_leader(net, election.leader_flags())?;
            let rounds = net.rounds_used() - before;
            let ok = ring_protocols::coordination::nontrivial::verify_nontrivial(net, &nm);
            Ok((rounds, ok))
        }
        "leader election -> direction agreement" => {
            let nm0 = solve_nontrivial_move(net)?;
            let election = elect_leader_with_move(net, &nm0)?;
            let before = net.rounds_used();
            let nm = nontrivial_move_with_leader(net, election.leader_flags())?;
            let agreement = agree_direction_with_move(net, nm.directions())?;
            let rounds = net.rounds_used() - before;
            let ok =
                ring_protocols::coordination::diragr::frames_are_coherent(net, agreement.frames());
            Ok((rounds, ok))
        }
        "nontrivial move -> direction agreement" => {
            let nm = solve_nontrivial_move(net)?;
            let before = net.rounds_used();
            let agreement = agree_direction_with_move(net, nm.directions())?;
            let rounds = net.rounds_used() - before;
            let ok =
                ring_protocols::coordination::diragr::frames_are_coherent(net, agreement.frames());
            Ok((rounds, ok))
        }
        "nontrivial move -> leader election" => {
            let nm = solve_nontrivial_move(net)?;
            let before = net.rounds_used();
            let election = elect_leader_with_move(net, &nm)?;
            let rounds = net.rounds_used() - before;
            Ok((rounds, election.leaders().count() == 1))
        }
        "direction agreement -> leader election" => {
            let nm = solve_nontrivial_move(net)?;
            let agreement = agree_direction_with_move(net, nm.directions())?;
            let before = net.rounds_used();
            let election = elect_leader_with_common_direction(net, agreement.frames())?;
            let rounds = net.rounds_used() - before;
            Ok((rounds, election.leaders().count() == 1))
        }
        "direction agreement -> nontrivial move" => {
            // Constructive route: elect a leader by binary search, then use
            // the leader-deviation trick (Lemma 10).
            let nm = solve_nontrivial_move(net)?;
            let agreement = agree_direction_with_move(net, nm.directions())?;
            let before = net.rounds_used();
            let election = elect_leader_with_common_direction(net, agreement.frames())?;
            let nm2 = nontrivial_move_with_leader(net, election.leader_flags())?;
            let rounds = net.rounds_used() - before;
            let ok = ring_protocols::coordination::nontrivial::verify_nontrivial(net, &nm2);
            Ok((rounds, ok))
        }
        _ => Err(ProtocolError::Internal {
            protocol: "reductions",
            reason: format!("unknown edge {edge}"),
        }),
    }
}

/// Runs the reduction-edge experiment for one model over a sweep. Figure 1
/// corresponds to odd sizes (any model) and to the lazy/perceptive models;
/// Figure 2 corresponds to the basic model on even sizes.
pub fn reductions(spec: &SweepSpec, model: Model) -> Vec<Measurement> {
    let structures = fresh_structures();
    spec.cases()
        .iter()
        .flat_map(|case| reductions_case(case, model, &structures))
        .collect()
}

/// Which figure a reduction measurement belongs to: Figure 2 covers the
/// basic model with even `n` (where the edges cost `O(log² N)`), Figure 1
/// everything else. Single source of truth for the experiment tag — the
/// harness scenario layer labels its per-case records with the same rule.
pub fn figure_for(model: Model, n: usize) -> &'static str {
    if model == Model::Basic && n.is_multiple_of(2) {
        "fig2"
    } else {
        "fig1"
    }
}

/// Measures every reduction edge on one case (see
/// [`crate::tables::table1_case`] for the provider contract).
pub fn reductions_case(
    case: &Case,
    model: Model,
    structures: &SharedStructures,
) -> Vec<Measurement> {
    let config = case.config();
    let ids = case.ids();
    let basic_even = model == Model::Basic && case.n.is_multiple_of(2);
    let figure = figure_for(model, case.n);
    let mut out = Vec::new();
    for edge in EDGES {
        let mut net = Network::new(&config, ids.clone(), model)
            .expect("valid configuration")
            .with_structures(structures.clone())
            .with_structure_seed(case.structure_seed);
        let (rounds, verified) = measure_edge(&mut net, edge).expect("reduction failed");
        out.push(Measurement {
            experiment: figure.into(),
            setting: format!(
                "{model} model, {}",
                if case.n.is_multiple_of(2) {
                    "even n"
                } else {
                    "odd n"
                }
            ),
            quantity: edge.into(),
            n: case.n,
            universe: case.universe,
            value: Some(rounds as f64),
            predicted: predicted(edge, case.universe, basic_even),
            verified,
        });
    }
    out
}

/// The Lemma 15 variant of the "direction agreement → nontrivial move" edge
/// (randomized, `O(log N)` with high probability), reported separately for
/// the non-constructive part of Figure 2.
pub fn randomized_da_to_nm(spec: &SweepSpec, model: Model) -> Vec<Measurement> {
    let structures = fresh_structures();
    spec.cases()
        .iter()
        .map(|case| randomized_da_to_nm_case(case, model, &structures))
        .collect()
}

/// Measures the Lemma 15 edge on one case (see
/// [`crate::tables::table1_case`] for the provider contract).
pub fn randomized_da_to_nm_case(
    case: &Case,
    model: Model,
    structures: &SharedStructures,
) -> Measurement {
    let config = case.config();
    let ids = case.ids();
    let mut net = Network::new(&config, ids, model)
        .expect("valid configuration")
        .with_structures(structures.clone())
        .with_structure_seed(case.structure_seed);
    let nm = solve_nontrivial_move(&mut net).expect("nontrivial move");
    let agreement =
        agree_direction_with_move(&mut net, nm.directions()).expect("direction agreement");
    let before = net.rounds_used();
    let nm2 = nontrivial_move_common_randomized(&mut net, agreement.frames(), case.seed)
        .expect("randomized nontrivial move");
    let rounds = net.rounds_used() - before;
    let verified = ring_protocols::coordination::nontrivial::verify_nontrivial(&mut net, &nm2);
    Measurement {
        experiment: "fig2".into(),
        setting: format!("{model} model (randomized, Lemma 15)"),
        quantity: "direction agreement -> nontrivial move".into(),
        n: case.n,
        universe: case.universe,
        value: Some(rounds as f64),
        predicted: Some((case.universe as f64).log2().max(1.0)),
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            sizes: vec![9, 8],
            universe_factors: vec![4],
            repetitions: 1,
            seed: 11,
            structure_seeds: None,
            faults: None,
        }
    }

    #[test]
    fn all_edges_are_measured_and_verified() {
        let measurements = reductions(&tiny_spec(), Model::Basic);
        assert_eq!(measurements.len(), 2 * EDGES.len());
        assert!(measurements.iter().all(|m| m.verified));
        // O(1) edges stay tiny.
        for m in &measurements {
            if m.quantity == "nontrivial move -> direction agreement" {
                assert!(m.value.unwrap() <= 4.0);
            }
        }
    }

    #[test]
    fn randomized_variant_is_verified() {
        let measurements = randomized_da_to_nm(&tiny_spec(), Model::Basic);
        assert_eq!(measurements.len(), 2);
        assert!(measurements.iter().all(|m| m.verified));
    }
}
