//! Scaling of distinguishers, selective families and the distinguisher-based
//! nontrivial-move protocol (Section IV, Corollaries 26–29).
//!
//! The paper's central quantitative claim for the basic model with even `n`
//! is that the nontrivial-move problem (equivalently, the smallest
//! `(N, n)`-distinguisher) costs `Θ(n·log(N/n)/log n)` rounds. This module
//! measures three proxies of that claim:
//!
//! 1. the size of the probabilistically constructed distinguishers,
//! 2. the size of the constructed selective families (`Θ(n·log(N/n))`),
//! 3. the number of rounds the weak nontrivial-move protocol actually
//!    executes on adversarial (perfectly balanced) configurations.

use crate::report::Measurement;
use ring_combinat::bounds;
use ring_protocols::coordination::nontrivial::weak_nontrivial_move_even_distinguisher;
use ring_protocols::structures::{fresh_structures, SharedStructures};
use ring_protocols::{IdAssignment, Network};
use ring_sim::{Model, RingConfig};

/// Parameters of the scaling experiment.
#[derive(Clone, Debug)]
pub struct ScalingSpec {
    /// Identifier universe size.
    pub universe: u64,
    /// Set sizes (`n` of the distinguisher, ring size of the protocol runs).
    pub sizes: Vec<usize>,
    /// Seed for the random constructions.
    pub seed: u64,
}

impl ScalingSpec {
    /// The default spec: `N = 2^14`, `n ∈ {8, 16, 32, 64, 128}`.
    pub fn standard() -> Self {
        ScalingSpec {
            universe: 1 << 14,
            sizes: vec![8, 16, 32, 64, 128],
            seed: 41,
        }
    }

    /// A deterministic 64-bit fingerprint of the scaling parameters (see
    /// [`crate::SweepSpec::fingerprint`] for the role it plays in the
    /// distributed layer).
    pub fn fingerprint(&self) -> u64 {
        use ring_combinat::shared::splitmix64;
        let mut h = splitmix64(0x5ca1_e5ca1e ^ self.seed);
        h = splitmix64(h ^ self.universe);
        h = splitmix64(h ^ self.sizes.len() as u64);
        for &n in &self.sizes {
            h = splitmix64(h ^ n as u64);
        }
        h
    }
}

/// Measures constructed family sizes against the paper's bounds.
pub fn family_sizes(spec: &ScalingSpec) -> Vec<Measurement> {
    let structures = fresh_structures();
    spec.sizes
        .iter()
        .flat_map(|&n| family_sizes_case(spec, n, &structures))
        .collect()
}

/// Measures the constructed family sizes for one set size (see
/// [`crate::tables::table1_case`] for the provider contract).
pub fn family_sizes_case(
    spec: &ScalingSpec,
    n: usize,
    structures: &SharedStructures,
) -> Vec<Measurement> {
    let mut out = Vec::new();
    let distinguisher = structures.distinguisher(spec.universe, n, spec.seed);
    out.push(Measurement {
        experiment: "distinguisher_scaling".into(),
        setting: "probabilistic construction (Thm 27)".into(),
        quantity: "distinguisher size".into(),
        n,
        universe: spec.universe,
        value: Some(distinguisher.len() as f64),
        predicted: Some(bounds::distinguisher_size_lower_bound(spec.universe, n)),
        verified: distinguisher.verify_sampled(n, 200, spec.seed ^ 1) == 0,
    });
    let family = structures.selective_family(spec.universe, n, spec.seed);
    out.push(Measurement {
        experiment: "distinguisher_scaling".into(),
        setting: "probabilistic construction (Def 35)".into(),
        quantity: "selective family size".into(),
        n,
        universe: spec.universe,
        value: Some(family.len() as f64),
        predicted: Some(bounds::selective_family_size_bound(spec.universe, n)),
        verified: family.verify_sampled(n, 200, spec.seed ^ 2) == 0,
    });
    out
}

/// Measures the rounds the weak nontrivial-move protocol needs on perfectly
/// balanced configurations (the adversarial case that forces the
/// distinguisher machinery to do real work).
pub fn weak_nontrivial_move_rounds(spec: &ScalingSpec) -> Vec<Measurement> {
    let structures = fresh_structures();
    spec.sizes
        .iter()
        .filter_map(|&n| weak_nontrivial_move_case(spec, n, &structures))
        .collect()
}

/// Measures the weak nontrivial-move rounds for one ring size, or `None`
/// when the size is outside the adversarial regime (see
/// [`crate::tables::table1_case`] for the provider contract).
pub fn weak_nontrivial_move_case(
    spec: &ScalingSpec,
    n: usize,
    structures: &SharedStructures,
) -> Option<Measurement> {
    if !n.is_multiple_of(2) || n < 6 {
        return None;
    }
    let config = RingConfig::builder(n)
        .random_positions(spec.seed + n as u64)
        .alternating_chirality()
        .build()
        .expect("valid configuration");
    let ids = IdAssignment::random(n, spec.universe, spec.seed + 1 + n as u64);
    let mut net = Network::new(&config, ids, Model::Basic)
        .expect("valid network")
        .with_structures(structures.clone());
    let nm =
        weak_nontrivial_move_even_distinguisher(&mut net, spec.seed).expect("weak nontrivial move");
    Some(Measurement {
        experiment: "distinguisher_scaling".into(),
        setting: "basic model, even n, balanced chirality".into(),
        quantity: "weak nontrivial move rounds".into(),
        n,
        universe: spec.universe,
        value: Some(nm.rounds() as f64),
        predicted: Some(bounds::nontrivial_move_round_bound(spec.universe, n)),
        verified: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_sizes_scale_with_the_bound() {
        let spec = ScalingSpec {
            universe: 1 << 10,
            sizes: vec![8, 32],
            seed: 5,
        };
        let m = family_sizes(&spec);
        assert_eq!(m.len(), 4);
        assert!(m.iter().all(|x| x.verified));
        // Larger n ⇒ larger families (within this range the bound grows).
        let d8 = m[0].value.unwrap();
        let d32 = m[2].value.unwrap();
        assert!(d32 > d8);
    }

    #[test]
    fn weak_nontrivial_move_measurements_exist_for_even_sizes() {
        let spec = ScalingSpec {
            universe: 1 << 10,
            sizes: vec![8, 9, 16],
            seed: 6,
        };
        let m = weak_nontrivial_move_rounds(&spec);
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|x| x.value.unwrap() >= 1.0));
    }
}
