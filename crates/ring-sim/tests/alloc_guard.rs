//! Allocation guard for the hot round loop: after a warm-up has sized the
//! reusable [`RoundBuffers`] arena, executing further rounds through the
//! event engine (the reference executor the faulty sweeps lean on) must
//! perform **zero** heap allocations. A counting global allocator measures
//! an exact replay of the warm-up rounds against a fresh `RingState`, so
//! any per-round allocation sneaking back into the engines fails the test
//! deterministically.

use ring_sim::{EngineKind, ObjectiveDirection, RingConfig, RingState, RoundBuffers};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The system allocator with an allocation counter bolted on.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth of an existing buffer is an allocation for this test's
        // purposes: the arena is supposed to have reached steady state.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A deterministic per-round direction pattern that exercises both
/// movement directions and collisions (without allocating: the slice is
/// mutated in place).
fn fill_directions(directions: &mut [ObjectiveDirection], round: u64) {
    for (agent, slot) in directions.iter_mut().enumerate() {
        // Mix round and agent so the collision structure changes from
        // round to round.
        let bit = (round.wrapping_mul(0x9e37_79b9) >> (agent % 13)) & 1;
        *slot = if bit == 0 {
            ObjectiveDirection::Clockwise
        } else {
            ObjectiveDirection::Anticlockwise
        };
    }
}

/// Replays `rounds` identical rounds through a fresh state into the given
/// arena, returning the final rotation index as a use of the results.
fn replay(
    config: &RingConfig,
    bufs: &mut RoundBuffers,
    directions: &mut [ObjectiveDirection],
    rounds: u64,
) -> usize {
    let mut state = RingState::new(config);
    let mut last = 0usize;
    for round in 0..rounds {
        fill_directions(directions, round);
        last = state
            .execute_round_objective_into(directions, EngineKind::Event, bufs)
            .expect("round executes")
            .shift;
    }
    last
}

#[test]
fn event_engine_rounds_allocate_nothing_after_warmup() {
    const ROUNDS: u64 = 64;
    for n in [8usize, 13] {
        let config = RingConfig::builder(n)
            .random_positions(2015)
            .alternating_chirality()
            .build()
            .expect("valid config");
        let mut bufs = RoundBuffers::new();
        let mut directions = vec![ObjectiveDirection::Clockwise; n];

        // Warm-up: size every buffer in the arena, including the event
        // engine's collision scratch.
        let warm = replay(&config, &mut bufs, &mut directions, ROUNDS);

        // Measured replay of the *identical* rounds against a fresh state:
        // the arena is at steady state, so the loop must not allocate.
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let replayed = replay(&config, &mut bufs, &mut directions, ROUNDS);
        let after = ALLOCATIONS.load(Ordering::Relaxed);

        assert_eq!(warm, replayed, "replay must be deterministic");
        // `RingState::new` itself owns per-state slot vectors; everything
        // else — 64 rounds of event-engine execution — must reuse the
        // arena. Allow exactly the state construction's allocations by
        // measuring them separately.
        let state_before = ALLOCATIONS.load(Ordering::Relaxed);
        let state = RingState::new(&config);
        let state_after = ALLOCATIONS.load(Ordering::Relaxed);
        drop(state);
        let state_cost = state_after - state_before;

        let total = after - before;
        assert!(
            total <= state_cost,
            "n = {n}: {total} allocations across {ROUNDS} warm rounds \
             (state construction accounts for {state_cost}); the round loop \
             must be allocation-free after warm-up"
        );
    }
}
