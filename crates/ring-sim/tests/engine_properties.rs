//! Property tests validating the analytic engine against the event-driven
//! reference engine and against the rotation-index lemma (Lemma 1 of the
//! paper), for arbitrary configurations and direction assignments.

use proptest::prelude::*;
use ring_sim::prelude::*;

/// Strategy: a ring size, a position seed and an objective direction vector
/// (optionally including idle agents).
fn round_inputs(allow_idle: bool) -> impl Strategy<Value = (usize, u64, Vec<ObjectiveDirection>)> {
    (5usize..24, any::<u64>()).prop_flat_map(move |(n, seed)| {
        let dir = if allow_idle {
            prop_oneof![
                Just(ObjectiveDirection::Clockwise),
                Just(ObjectiveDirection::Anticlockwise),
                Just(ObjectiveDirection::Idle),
            ]
            .boxed()
        } else {
            prop_oneof![
                Just(ObjectiveDirection::Clockwise),
                Just(ObjectiveDirection::Anticlockwise),
            ]
            .boxed()
        };
        (Just(n), Just(seed), proptest::collection::vec(dir, n))
    })
}

fn close(a: f64, b: f64) -> bool {
    let d = (a - b).abs();
    d < 1e-6 || (1.0 - d).abs() < 1e-6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lemma 1: in every round each agent ends at the initial position of
    /// the agent `(n_C - n_A) mod n` places further clockwise, also with
    /// idle agents present.
    #[test]
    fn rotation_index_lemma_holds((n, seed, dirs) in round_inputs(true)) {
        let config = RingConfig::builder(n).random_positions(seed).build().unwrap();
        let mut ring = RingState::new(&config);
        let expected = rotation_index(&dirs);
        let outcome = ring.execute_round_objective(&dirs, EngineKind::Analytic).unwrap();
        prop_assert_eq!(outcome.rotation, expected);
        for agent in 0..n {
            prop_assert_eq!(ring.slot_of_agent(agent), (agent + expected.shift) % n);
        }
    }

    /// The analytic engine and the event-driven engine agree on the
    /// clockwise displacement of every agent (any round, idles allowed).
    #[test]
    fn engines_agree_on_displacement((n, seed, dirs) in round_inputs(true)) {
        let config = RingConfig::builder(n).random_positions(seed).build().unwrap();
        let ring = RingState::new(&config);
        let analytic = AnalyticEngine::new().execute(ring.config(), ring.slots(), &dirs);
        let traj = EventEngine::new().simulate(ring.config(), ring.slots(), &dirs);
        for agent in 0..n {
            let expected = analytic.cw_displacement[agent].as_fraction();
            let got = traj.cw_displacement[agent];
            prop_assert!(close(expected, got),
                "agent {}: analytic {} vs event {}", agent, expected, got);
        }
    }

    /// The analytic engine and the event-driven engine agree on every
    /// agent's first-collision distance in all-moving rounds
    /// (Proposition 4).
    #[test]
    fn engines_agree_on_first_collisions((n, seed, dirs) in round_inputs(false)) {
        let config = RingConfig::builder(n).random_positions(seed).build().unwrap();
        let ring = RingState::new(&config);
        let analytic = AnalyticEngine::new().execute(ring.config(), ring.slots(), &dirs);
        let traj = EventEngine::new().simulate(ring.config(), ring.slots(), &dirs);
        for agent in 0..n {
            match (analytic.first_collision[agent], traj.first_collision[agent]) {
                (None, None) => {}
                (Some(a), Some(b)) => prop_assert!(
                    (a.as_fraction() - b).abs() < 1e-6,
                    "agent {}: analytic {} vs event {}", agent, a.as_fraction(), b
                ),
                (a, b) => prop_assert!(false, "agent {}: {:?} vs {:?}", agent, a, b),
            }
        }
    }

    /// A `SINGLEROUND` followed by the corresponding `REVERSEDROUND` puts
    /// every agent back where it started (the basic tool used throughout
    /// the paper's perceptive-model algorithms).
    #[test]
    fn reversed_round_undoes_single_round((n, seed, dirs) in round_inputs(true)) {
        let config = RingConfig::builder(n)
            .random_positions(seed)
            .random_chirality(seed ^ 0xabcdef)
            .build()
            .unwrap();
        let mut ring = RingState::new(&config);
        let reversed: Vec<ObjectiveDirection> = dirs.iter().map(|d| d.opposite()).collect();
        ring.execute_round_objective(&dirs, EngineKind::Analytic).unwrap();
        ring.execute_round_objective(&reversed, EngineKind::Analytic).unwrap();
        prop_assert!(ring.at_initial_positions());
    }

    /// `dist()` is zero for every agent exactly when the rotation index is
    /// zero (the 1-round zero-rotation probe used by the protocols).
    #[test]
    fn dist_zero_iff_rotation_zero((n, seed, dirs) in round_inputs(true)) {
        let config = RingConfig::builder(n)
            .random_positions(seed)
            .random_chirality(seed.rotate_left(7))
            .build()
            .unwrap();
        let mut ring = RingState::new(&config);
        let outcome = ring.execute_round_objective(&dirs, EngineKind::Analytic).unwrap();
        for obs in &outcome.observations {
            prop_assert_eq!(obs.dist.is_zero(), outcome.rotation.is_zero());
        }
    }
}
