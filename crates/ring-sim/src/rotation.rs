//! The rotation-index lemma (Lemma 1 of the paper) and related helpers.
//!
//! In a round where `n_C` agents start moving clockwise and `n_A` agents
//! start moving anticlockwise (the rest idle), every agent ends the round at
//! the initial position of the agent `r = (n_C − n_A) mod n` places further
//! clockwise. The quantity `r` is the *rotation index* of the round. The
//! lemma is stated in the paper for the basic model; it extends verbatim to
//! rounds with idle agents because motion is transferred on contact with an
//! idle agent, so "motion tokens" still travel a full circle during the
//! round while the multiset of occupied positions never changes. The
//! event-driven engine cross-validates this in the property tests.

use crate::direction::ObjectiveDirection;
use serde::{Deserialize, Serialize};

/// The rotation index of a round: how many places clockwise every agent is
/// shifted along the (fixed) cyclic sequence of initial positions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RotationIndex {
    /// The shift, reduced to `0..n`.
    pub shift: usize,
    /// The ring size the shift is reduced modulo.
    pub n: usize,
}

impl RotationIndex {
    /// Whether the round moves nobody (rotation index 0).
    pub fn is_zero(self) -> bool {
        self.shift == 0
    }

    /// Whether the round is a *trivial move* in the sense of the paper:
    /// rotation index 0, or `n/2` when `n` is even.
    pub fn is_trivial(self) -> bool {
        self.shift == 0 || (self.n.is_multiple_of(2) && self.shift == self.n / 2)
    }

    /// Whether the round is a *nontrivial move* (rotation index not in
    /// `{0, n/2}`).
    pub fn is_nontrivial(self) -> bool {
        !self.is_trivial()
    }

    /// Whether the round is a *weak nontrivial move* (rotation index ≠ 0;
    /// an index of `n/2` is allowed).
    pub fn is_weak_nontrivial(self) -> bool {
        self.shift != 0
    }

    /// The shift as a signed value in `(-n/2, n/2]`, useful for reasoning
    /// about "direction" of rotation.
    pub fn signed(self) -> isize {
        let s = self.shift as isize;
        let n = self.n as isize;
        if s * 2 > n {
            s - n
        } else {
            s
        }
    }
}

/// Computes the rotation index of a round from the objective directions of
/// all agents (Lemma 1).
pub fn rotation_index(directions: &[ObjectiveDirection]) -> RotationIndex {
    let n = directions.len();
    let n_c = directions
        .iter()
        .filter(|d| matches!(d, ObjectiveDirection::Clockwise))
        .count();
    let n_a = directions
        .iter()
        .filter(|d| matches!(d, ObjectiveDirection::Anticlockwise))
        .count();
    let shift = (n_c + n - n_a) % n;
    RotationIndex { shift, n }
}

/// Rotation index of the round in which exactly the members of a set of
/// size `k` (out of `n` agents) move clockwise and everybody else moves
/// anticlockwise — `RI(B) = 2|B| mod n` in the paper's notation
/// (Section II).
pub fn rotation_index_of_set(k: usize, n: usize) -> RotationIndex {
    assert!(k <= n, "set larger than the ring");
    RotationIndex {
        shift: (2 * k) % n,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ObjectiveDirection::{Anticlockwise as A, Clockwise as C, Idle as I};

    #[test]
    fn all_clockwise_has_zero_rotation() {
        let r = rotation_index(&[C; 6]);
        assert_eq!(r.shift, 0);
        assert!(r.is_zero());
        assert!(r.is_trivial());
    }

    #[test]
    fn single_deviator_shifts_by_two() {
        let dirs = [C, C, C, A, C, C];
        let r = rotation_index(&dirs);
        assert_eq!(r.shift, (6 - 2));
        assert!(r.is_nontrivial());
    }

    #[test]
    fn idle_agents_do_not_contribute() {
        let dirs = [C, I, I, I, I];
        let r = rotation_index(&dirs);
        assert_eq!(r.shift, 1);
        assert!(r.is_weak_nontrivial());
    }

    #[test]
    fn half_half_is_trivial_for_even_n() {
        let dirs = [C, C, C, A, A, A];
        let r = rotation_index(&dirs);
        assert_eq!(r.shift, 0);
        assert!(r.is_trivial());

        // n/2 rotation: three quarters clockwise.
        let dirs = [C, C, C, C, C, C, A, A];
        let r = rotation_index(&dirs);
        assert_eq!(r.shift, 4);
        assert!(r.is_trivial());
        assert!(r.is_weak_nontrivial());
        assert!(!r.is_nontrivial());
    }

    #[test]
    fn odd_n_mixed_round_is_always_nontrivial() {
        // Paper, Section III.E: with odd n, any round with both directions
        // present is nontrivial.
        let n = 7;
        for k in 1..n {
            let mut dirs = vec![C; n];
            for d in dirs.iter_mut().take(k) {
                *d = A;
            }
            let r = rotation_index(&dirs);
            assert!(r.is_nontrivial(), "k={k}");
        }
    }

    #[test]
    fn set_rotation_index_matches_formula() {
        for n in [6usize, 8, 10] {
            for k in 0..=n {
                let ri = rotation_index_of_set(k, n);
                assert_eq!(ri.shift, (2 * k) % n);
                // Lemma 3(a): RI(B)=0 iff |B| in {0, n/2, n}.
                let zero = ri.is_zero();
                assert_eq!(zero, k == 0 || k == n / 2 || k == n);
            }
        }
    }

    #[test]
    fn signed_shift() {
        let r = RotationIndex { shift: 7, n: 8 };
        assert_eq!(r.signed(), -1);
        let r = RotationIndex { shift: 4, n: 8 };
        assert_eq!(r.signed(), 4);
        let r = RotationIndex { shift: 1, n: 8 };
        assert_eq!(r.signed(), 1);
    }
}
