//! Error types for the ring substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while building configurations or executing rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RingError {
    /// The requested number of agents is too small for the model
    /// (the paper assumes `n > 4`).
    TooFewAgents {
        /// Number of agents requested.
        n: usize,
        /// Minimum supported number of agents.
        min: usize,
    },
    /// Two agents were placed at the same position.
    DuplicatePosition {
        /// The offending position (ticks).
        ticks: u64,
    },
    /// A position was not an even number of ticks, which would break the
    /// exact-midpoint invariant used for collision arithmetic.
    OddPosition {
        /// The offending position (ticks).
        ticks: u64,
    },
    /// The number of supplied directions does not match the number of agents.
    DirectionCountMismatch {
        /// Number of directions supplied.
        got: usize,
        /// Number of agents in the ring.
        expected: usize,
    },
    /// An idle direction was used in a model that forbids idling.
    IdleNotAllowed {
        /// Index of the offending agent.
        agent: usize,
    },
    /// The number of supplied items (positions, chirality flags, IDs…)
    /// does not match the number of agents.
    LengthMismatch {
        /// What was being supplied.
        what: &'static str,
        /// Number of items supplied.
        got: usize,
        /// Number of agents in the ring.
        expected: usize,
    },
    /// Could not generate distinct random positions with the requested
    /// minimum gap.
    PositionGeneration {
        /// Number of agents requested.
        n: usize,
    },
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::TooFewAgents { n, min } => {
                write!(f, "too few agents: {n} (the model requires at least {min})")
            }
            RingError::DuplicatePosition { ticks } => {
                write!(f, "duplicate agent position at tick {ticks}")
            }
            RingError::OddPosition { ticks } => {
                write!(f, "agent position {ticks} is not an even number of ticks")
            }
            RingError::DirectionCountMismatch { got, expected } => {
                write!(f, "expected {expected} directions, got {got}")
            }
            RingError::IdleNotAllowed { agent } => {
                write!(f, "agent {agent} chose to idle in a model without idling")
            }
            RingError::LengthMismatch {
                what,
                got,
                expected,
            } => write!(f, "expected {expected} {what}, got {got}"),
            RingError::PositionGeneration { n } => {
                write!(f, "could not generate {n} distinct positions")
            }
        }
    }
}

impl Error for RingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            RingError::TooFewAgents { n: 2, min: 5 },
            RingError::DuplicatePosition { ticks: 10 },
            RingError::OddPosition { ticks: 11 },
            RingError::DirectionCountMismatch {
                got: 1,
                expected: 2,
            },
            RingError::IdleNotAllowed { agent: 3 },
            RingError::LengthMismatch {
                what: "ids",
                got: 1,
                expected: 2,
            },
            RingError::PositionGeneration { n: 1000 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
