//! Mutable ring state and round execution.
//!
//! [`RingState`] owns the evolving ground truth of a deployment: which slot
//! (initial position) each agent currently occupies. Protocols interact with
//! it exclusively through [`RingState::execute_round`], supplying each
//! agent's chosen [`LocalDirection`] and receiving each agent's
//! [`Observation`] — already translated into the agent's own frame, exactly
//! as the model prescribes.

use crate::analytic::{AnalyticEngine, AnalyticScratch};
use crate::config::RingConfig;
use crate::direction::{Chirality, LocalDirection, ObjectiveDirection};
use crate::error::RingError;
use crate::events::{EventEngine, EventScratch};
use crate::geometry::{ArcLength, Point};
use crate::observe::Observation;
use crate::rotation::RotationIndex;

/// Which physics engine executes the round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Exact, O(n)-per-round engine based on the rotation-index lemma.
    Analytic,
    /// Event-driven `f64` reference engine that simulates every collision.
    Event,
}

/// The outcome of a single executed round.
#[derive(Clone, Debug)]
pub struct RoundOutcome {
    /// Rotation index of the round (ground truth; not visible to agents).
    pub rotation: RotationIndex,
    /// Observation of each agent, expressed in that agent's own frame.
    /// Collision information is populated whenever the engine can compute
    /// it; callers that model non-perceptive agents should strip it with
    /// [`Observation::without_coll`].
    pub observations: Vec<Observation>,
    /// Objective direction each agent actually moved in (ground truth).
    pub objective_directions: Vec<ObjectiveDirection>,
}

/// Reusable per-round scratch arena for [`RingState::execute_round_into`].
///
/// A multi-round driver creates one `RoundBuffers`, passes it to every
/// round, and reads the round's outputs from it between rounds; after the
/// vectors have grown to the ring size once, round execution performs no
/// heap allocation at all. Event-engine rounds route through a reusable
/// [`EventScratch`] held here, so the faulty-path reference executor is
/// covered by the same guarantee (modulo growth of its collision log).
#[derive(Clone, Debug, Default)]
pub struct RoundBuffers {
    /// Observation of each agent for the last executed round, in that
    /// agent's own frame.
    pub observations: Vec<Observation>,
    objective: Vec<ObjectiveDirection>,
    scratch: AnalyticScratch,
    events: EventScratch,
}

impl RoundBuffers {
    /// Creates an empty arena (vectors grow to the ring size on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Objective direction each agent moved in during the last round
    /// (ground truth).
    pub fn objective_directions(&self) -> &[ObjectiveDirection] {
        &self.objective
    }
}

/// The evolving state of a ring deployment.
#[derive(Clone, Debug)]
pub struct RingState<'a> {
    config: &'a RingConfig,
    slot_of_agent: Vec<usize>,
    rounds_executed: u64,
}

impl<'a> RingState<'a> {
    /// Creates a fresh state in which agent `i` occupies slot `i`.
    pub fn new(config: &'a RingConfig) -> Self {
        RingState {
            slot_of_agent: (0..config.len()).collect(),
            config,
            rounds_executed: 0,
        }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &RingConfig {
        self.config
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.config.len()
    }

    /// Whether the ring is empty (never true for valid configurations).
    pub fn is_empty(&self) -> bool {
        self.config.is_empty()
    }

    /// Number of rounds executed so far.
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// Slot currently occupied by `agent`.
    ///
    /// # Panics
    ///
    /// Panics if `agent >= n`.
    pub fn slot_of_agent(&self, agent: usize) -> usize {
        self.slot_of_agent[agent]
    }

    /// The full agent → slot assignment.
    pub fn slots(&self) -> &[usize] {
        &self.slot_of_agent
    }

    /// The current position of `agent`.
    ///
    /// # Panics
    ///
    /// Panics if `agent >= n`.
    pub fn position_of_agent(&self, agent: usize) -> Point {
        self.config.position(self.slot_of_agent[agent])
    }

    /// Whether every agent is back at its initial slot.
    pub fn at_initial_positions(&self) -> bool {
        self.slot_of_agent.iter().enumerate().all(|(a, &s)| a == s)
    }

    /// Executes one round given each agent's chosen direction in its **own**
    /// frame, and returns per-agent observations in their own frames.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of directions does not match the
    /// number of agents.
    pub fn execute_round(
        &mut self,
        local_directions: &[LocalDirection],
        engine: EngineKind,
    ) -> Result<RoundOutcome, RingError> {
        let mut bufs = RoundBuffers::new();
        let rotation = self.execute_round_into(local_directions, engine, &mut bufs)?;
        Ok(RoundOutcome {
            rotation,
            observations: bufs.observations,
            objective_directions: bufs.objective,
        })
    }

    /// Executes one round given objective directions (mostly useful for
    /// tests and for the experiment harness, which plays the adversary).
    ///
    /// # Errors
    ///
    /// Returns an error if the number of directions does not match the
    /// number of agents.
    pub fn execute_round_objective(
        &mut self,
        objective: &[ObjectiveDirection],
        engine: EngineKind,
    ) -> Result<RoundOutcome, RingError> {
        let mut bufs = RoundBuffers::new();
        let rotation = self.execute_round_objective_into(objective, engine, &mut bufs)?;
        Ok(RoundOutcome {
            rotation,
            observations: bufs.observations,
            objective_directions: bufs.objective,
        })
    }

    /// Executes one round into a caller-owned [`RoundBuffers`] arena — the
    /// zero-alloc variant of [`RingState::execute_round`]. Observations land
    /// in `bufs.observations`, the resolved objective directions in
    /// [`RoundBuffers::objective_directions`], and the rotation index is
    /// returned.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of directions does not match the
    /// number of agents.
    pub fn execute_round_into(
        &mut self,
        local_directions: &[LocalDirection],
        engine: EngineKind,
        bufs: &mut RoundBuffers,
    ) -> Result<RotationIndex, RingError> {
        let n = self.len();
        if local_directions.len() != n {
            return Err(RingError::DirectionCountMismatch {
                got: local_directions.len(),
                expected: n,
            });
        }
        bufs.objective.clear();
        // Direction resolution zips two contiguous slices (directions ×
        // chiralities) with no per-agent bounds checks, so the optimiser can
        // vectorise the translation.
        bufs.objective.extend(
            local_directions
                .iter()
                .zip(self.config.chiralities())
                .map(|(dir, &chir)| dir.to_objective(chir)),
        );
        self.run_prepared_round(engine, bufs)
    }

    /// Executes one round given objective directions, into a caller-owned
    /// arena (zero-alloc variant of [`RingState::execute_round_objective`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the number of directions does not match the
    /// number of agents.
    pub fn execute_round_objective_into(
        &mut self,
        objective: &[ObjectiveDirection],
        engine: EngineKind,
        bufs: &mut RoundBuffers,
    ) -> Result<RotationIndex, RingError> {
        let n = self.len();
        if objective.len() != n {
            return Err(RingError::DirectionCountMismatch {
                got: objective.len(),
                expected: n,
            });
        }
        bufs.objective.clear();
        bufs.objective.extend_from_slice(objective);
        self.run_prepared_round(engine, bufs)
    }

    /// Core of every round: executes `bufs.objective`, updating the slots
    /// in place (a pointer swap with the scratch arena) and writing the
    /// per-agent observations into `bufs.observations`.
    fn run_prepared_round(
        &mut self,
        engine: EngineKind,
        bufs: &mut RoundBuffers,
    ) -> Result<RotationIndex, RingError> {
        let rotation = AnalyticEngine::new().execute_into(
            self.config,
            &self.slot_of_agent,
            &bufs.objective,
            &mut bufs.scratch,
        );
        if engine == EngineKind::Event {
            // The event engine is the reference: use it for collisions, but
            // keep the (exact) analytic displacement and slots, which the
            // property tests show it agrees with. The reusable scratch keeps
            // the faulty-path reference executor allocation-free per round.
            EventEngine::new().simulate_into(
                self.config,
                &self.slot_of_agent,
                &bufs.objective,
                &mut bufs.events,
            );
            bufs.scratch.first_collision.clear();
            bufs.scratch.first_collision.extend(
                bufs.events
                    .first_collision
                    .iter()
                    .map(|c| c.map(ArcLength::from_fraction)),
            );
        }

        // Observation writes stream three contiguous slices (chirality,
        // displacement, collision) into the output vector — one linear pass
        // with no per-agent indexing, which the optimiser can vectorise.
        bufs.observations.clear();
        bufs.observations.extend(
            self.config
                .chiralities()
                .iter()
                .zip(&bufs.scratch.cw_displacement)
                .zip(&bufs.scratch.first_collision)
                .map(|((&chir, &cw), &coll)| {
                    let dist = match chir {
                        Chirality::Aligned => cw,
                        Chirality::Reversed => {
                            if cw.is_zero() {
                                cw
                            } else {
                                cw.complement()
                            }
                        }
                    };
                    Observation { dist, coll }
                }),
        );

        std::mem::swap(&mut self.slot_of_agent, &mut bufs.scratch.new_slot_of_agent);
        self.rounds_executed += 1;
        Ok(rotation)
    }

    /// Executes a round in which every agent moves opposite to the supplied
    /// local directions (the paper's `REVERSEDROUND`), which undoes the
    /// positional effect of the immediately preceding `SINGLEROUND` with the
    /// same directions.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of directions does not match the
    /// number of agents.
    pub fn execute_reversed_round(
        &mut self,
        local_directions: &[LocalDirection],
        engine: EngineKind,
    ) -> Result<RoundOutcome, RingError> {
        let reversed: Vec<LocalDirection> = local_directions.iter().map(|d| d.opposite()).collect();
        self.execute_round(&reversed, engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direction::Chirality;

    #[test]
    fn reversed_round_restores_positions() {
        let config = RingConfig::builder(7)
            .random_positions(2)
            .random_chirality(3)
            .build()
            .unwrap();
        let mut ring = RingState::new(&config);
        let dirs = vec![
            LocalDirection::Right,
            LocalDirection::Left,
            LocalDirection::Right,
            LocalDirection::Right,
            LocalDirection::Left,
            LocalDirection::Right,
            LocalDirection::Left,
        ];
        assert!(ring.at_initial_positions());
        ring.execute_round(&dirs, EngineKind::Analytic).unwrap();
        ring.execute_reversed_round(&dirs, EngineKind::Analytic)
            .unwrap();
        assert!(ring.at_initial_positions());
        assert_eq!(ring.rounds_executed(), 2);
    }

    #[test]
    fn direction_count_is_validated() {
        let config = RingConfig::evenly_spaced(6).unwrap();
        let mut ring = RingState::new(&config);
        let err = ring
            .execute_round(&[LocalDirection::Right; 3], EngineKind::Analytic)
            .unwrap_err();
        assert_eq!(
            err,
            RingError::DirectionCountMismatch {
                got: 3,
                expected: 6
            }
        );
    }

    #[test]
    fn reversed_chirality_observes_mirrored_distances() {
        // Two configurations differing only in one agent's chirality: the
        // observation of that agent is mirrored while others are unchanged.
        let n = 6;
        let aligned = RingConfig::builder(n).random_positions(9).build().unwrap();
        let mut chir = vec![Chirality::Aligned; n];
        chir[2] = Chirality::Reversed;
        let mixed = RingConfig::builder(n)
            .random_positions(9)
            .explicit_chirality(chir)
            .build()
            .unwrap();

        // Use objective directions so that the physical round is identical.
        let dirs = vec![
            ObjectiveDirection::Clockwise,
            ObjectiveDirection::Clockwise,
            ObjectiveDirection::Anticlockwise,
            ObjectiveDirection::Clockwise,
            ObjectiveDirection::Anticlockwise,
            ObjectiveDirection::Clockwise,
        ];
        let mut ring_a = RingState::new(&aligned);
        let mut ring_b = RingState::new(&mixed);
        let out_a = ring_a
            .execute_round_objective(&dirs, EngineKind::Analytic)
            .unwrap();
        let out_b = ring_b
            .execute_round_objective(&dirs, EngineKind::Analytic)
            .unwrap();

        assert_eq!(out_a.rotation, out_b.rotation);
        for agent in 0..n {
            if agent == 2 {
                if out_a.observations[agent].dist.is_zero() {
                    assert_eq!(
                        out_b.observations[agent].dist,
                        out_a.observations[agent].dist
                    );
                } else {
                    assert_eq!(
                        out_b.observations[agent].dist,
                        out_a.observations[agent].dist.complement()
                    );
                }
            } else {
                assert_eq!(
                    out_a.observations[agent].dist,
                    out_b.observations[agent].dist
                );
            }
            // Collision distances are path lengths: identical regardless of
            // chirality.
            assert_eq!(
                out_a.observations[agent].coll,
                out_b.observations[agent].coll
            );
        }
    }

    #[test]
    fn buffered_rounds_match_allocating_rounds() {
        let config = RingConfig::builder(9)
            .random_positions(11)
            .random_chirality(12)
            .build()
            .unwrap();
        for engine in [EngineKind::Analytic, EngineKind::Event] {
            let mut plain = RingState::new(&config);
            let mut buffered = RingState::new(&config);
            let mut bufs = RoundBuffers::new();
            for round in 0..6u64 {
                let dirs: Vec<LocalDirection> = (0..9)
                    .map(|i| {
                        if (i as u64 + round).is_multiple_of(3) {
                            LocalDirection::Left
                        } else {
                            LocalDirection::Right
                        }
                    })
                    .collect();
                let outcome = plain.execute_round(&dirs, engine).unwrap();
                let rotation = buffered
                    .execute_round_into(&dirs, engine, &mut bufs)
                    .unwrap();
                assert_eq!(rotation, outcome.rotation);
                assert_eq!(bufs.observations, outcome.observations);
                assert_eq!(bufs.objective_directions(), outcome.objective_directions);
                assert_eq!(plain.slots(), buffered.slots());
            }
            assert_eq!(plain.rounds_executed(), buffered.rounds_executed());
        }
    }

    #[test]
    fn event_engine_round_keeps_exact_slots() {
        let config = RingConfig::builder(6).random_positions(4).build().unwrap();
        let mut analytic_ring = RingState::new(&config);
        let mut event_ring = RingState::new(&config);
        let dirs = vec![
            LocalDirection::Right,
            LocalDirection::Left,
            LocalDirection::Right,
            LocalDirection::Left,
            LocalDirection::Right,
            LocalDirection::Right,
        ];
        analytic_ring
            .execute_round(&dirs, EngineKind::Analytic)
            .unwrap();
        event_ring.execute_round(&dirs, EngineKind::Event).unwrap();
        assert_eq!(analytic_ring.slots(), event_ring.slots());
    }
}
