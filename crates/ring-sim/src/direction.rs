//! Directions of movement, in objective and agent-local terms.
//!
//! The circle has an *objective* clockwise direction (increasing tick
//! values), but the agents do not share it: each agent has a private
//! [`Chirality`] deciding whether its own "right" coincides with the
//! objective clockwise direction or with the objective anticlockwise
//! direction. Protocol code only ever speaks in [`LocalDirection`]s; the
//! substrate translates to [`ObjectiveDirection`]s using the hidden
//! chirality assignment.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A direction of movement in the objective (global) frame of the circle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ObjectiveDirection {
    /// Movement in the direction of increasing tick values.
    Clockwise,
    /// Movement in the direction of decreasing tick values.
    Anticlockwise,
    /// No movement at the start of the round (lazy model only).
    Idle,
}

/// A direction of movement expressed in an agent's own frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LocalDirection {
    /// The agent's own clockwise direction ("right").
    Right,
    /// The agent's own anticlockwise direction ("left").
    Left,
    /// Stay idle at the start of the round (lazy model only).
    Idle,
}

/// Whether an agent's private sense of direction agrees with the objective
/// clockwise direction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Chirality {
    /// The agent's "right" is the objective clockwise direction.
    Aligned,
    /// The agent's "right" is the objective anticlockwise direction.
    Reversed,
}

impl ObjectiveDirection {
    /// The opposite objective direction (idle stays idle).
    pub fn opposite(self) -> Self {
        match self {
            ObjectiveDirection::Clockwise => ObjectiveDirection::Anticlockwise,
            ObjectiveDirection::Anticlockwise => ObjectiveDirection::Clockwise,
            ObjectiveDirection::Idle => ObjectiveDirection::Idle,
        }
    }

    /// Whether the direction denotes actual movement.
    pub fn is_moving(self) -> bool {
        !matches!(self, ObjectiveDirection::Idle)
    }

    /// Signed unit velocity: `+1` clockwise, `-1` anticlockwise, `0` idle.
    pub fn velocity(self) -> i8 {
        match self {
            ObjectiveDirection::Clockwise => 1,
            ObjectiveDirection::Anticlockwise => -1,
            ObjectiveDirection::Idle => 0,
        }
    }
}

impl LocalDirection {
    /// The opposite local direction (idle stays idle).
    pub fn opposite(self) -> Self {
        match self {
            LocalDirection::Right => LocalDirection::Left,
            LocalDirection::Left => LocalDirection::Right,
            LocalDirection::Idle => LocalDirection::Idle,
        }
    }

    /// Whether the direction denotes actual movement.
    pub fn is_moving(self) -> bool {
        !matches!(self, LocalDirection::Idle)
    }

    /// Translates this local direction to the objective frame, given the
    /// agent's chirality.
    pub fn to_objective(self, chirality: Chirality) -> ObjectiveDirection {
        match (self, chirality) {
            (LocalDirection::Idle, _) => ObjectiveDirection::Idle,
            (LocalDirection::Right, Chirality::Aligned) => ObjectiveDirection::Clockwise,
            (LocalDirection::Right, Chirality::Reversed) => ObjectiveDirection::Anticlockwise,
            (LocalDirection::Left, Chirality::Aligned) => ObjectiveDirection::Anticlockwise,
            (LocalDirection::Left, Chirality::Reversed) => ObjectiveDirection::Clockwise,
        }
    }

    /// Encodes a boolean as a direction, the convention used by the 1-bit
    /// neighbour exchange of the perceptive model (`true` ↦ right).
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            LocalDirection::Right
        } else {
            LocalDirection::Left
        }
    }
}

impl Chirality {
    /// The opposite chirality.
    pub fn flipped(self) -> Self {
        match self {
            Chirality::Aligned => Chirality::Reversed,
            Chirality::Reversed => Chirality::Aligned,
        }
    }

    /// Whether the agent's "right" is the objective clockwise direction.
    pub fn is_aligned(self) -> bool {
        matches!(self, Chirality::Aligned)
    }
}

impl fmt::Display for ObjectiveDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectiveDirection::Clockwise => "clockwise",
            ObjectiveDirection::Anticlockwise => "anticlockwise",
            ObjectiveDirection::Idle => "idle",
        };
        f.write_str(s)
    }
}

impl fmt::Display for LocalDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LocalDirection::Right => "right",
            LocalDirection::Left => "left",
            LocalDirection::Idle => "idle",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Chirality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Chirality::Aligned => "aligned",
            Chirality::Reversed => "reversed",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_to_objective_translation() {
        assert_eq!(
            LocalDirection::Right.to_objective(Chirality::Aligned),
            ObjectiveDirection::Clockwise
        );
        assert_eq!(
            LocalDirection::Right.to_objective(Chirality::Reversed),
            ObjectiveDirection::Anticlockwise
        );
        assert_eq!(
            LocalDirection::Left.to_objective(Chirality::Aligned),
            ObjectiveDirection::Anticlockwise
        );
        assert_eq!(
            LocalDirection::Left.to_objective(Chirality::Reversed),
            ObjectiveDirection::Clockwise
        );
        assert_eq!(
            LocalDirection::Idle.to_objective(Chirality::Reversed),
            ObjectiveDirection::Idle
        );
    }

    #[test]
    fn opposites_are_involutive() {
        for d in [
            LocalDirection::Right,
            LocalDirection::Left,
            LocalDirection::Idle,
        ] {
            assert_eq!(d.opposite().opposite(), d);
        }
        for d in [
            ObjectiveDirection::Clockwise,
            ObjectiveDirection::Anticlockwise,
            ObjectiveDirection::Idle,
        ] {
            assert_eq!(d.opposite().opposite(), d);
        }
        assert_eq!(Chirality::Aligned.flipped().flipped(), Chirality::Aligned);
    }

    #[test]
    fn velocity_signs() {
        assert_eq!(ObjectiveDirection::Clockwise.velocity(), 1);
        assert_eq!(ObjectiveDirection::Anticlockwise.velocity(), -1);
        assert_eq!(ObjectiveDirection::Idle.velocity(), 0);
    }

    #[test]
    fn bit_encoding() {
        assert_eq!(LocalDirection::from_bit(true), LocalDirection::Right);
        assert_eq!(LocalDirection::from_bit(false), LocalDirection::Left);
    }
}
